"""The three-party linkage protocol of Section 3 (and the §7 outlook).

Two (or more) data custodians — Alice and Bob in the paper — agree on a
set of common attributes and enlist an independent party, Charlie, to
identify similar records.  The compact c-vectors make a privacy-leaning
variant natural (the paper's §7 points at [17, 19]): custodians *encode
locally* under a shared :class:`EncodingAgreement` and submit only record
identifiers plus bit vectors; Charlie never sees a raw string.

This module also hosts the shared *dataset* protocol — the structural
types every linker's ``link()`` accepts (:class:`SupportsValueRows`,
``DatasetLike``, :func:`value_rows`).  They used to live in
``repro.core.linker``, which still re-exports them for back-compat.

Beyond that, the module is an architectural wrapper over :mod:`repro.core`:

* :class:`EncodingAgreement` — the public parameters both custodians need
  (seed, q-gram scheme, Theorem 1 inputs, per-attribute average q-gram
  counts).  Two custodians holding the same agreement derive bit-identical
  encoders.
* :class:`DataCustodian` — owns a dataset; encodes it into an
  :class:`EncodedDataset` (ids + packed c-vector matrix, nothing else).
* :class:`LinkageUnit` — Charlie; blocks and matches encoded datasets with
  record-level HB or rule-aware blocking and returns matched id pairs.

Note: like the Bloom-filter PPRL literature the paper builds on, this is
*pseudonymisation*, not cryptographic privacy — c-vectors still leak
q-gram information to a motivated adversary.  See the paper's §7 for the
secure-matching protocols this structure plugs into.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, Union

import numpy as np


# -- dataset structural types ---------------------------------------------------
#
# Defined *before* the repro.core imports below: repro.core.linker imports
# these names from this module, so they must exist even when this module is
# re-entered mid-initialisation through the repro.core package.


class SupportsValueRows(Protocol):
    """Structural type for dataset inputs: anything with ``value_rows()``."""

    def value_rows(self) -> list[tuple[str, ...]]: ...


#: What every linker accepts: a :class:`repro.data.schema.Dataset`-like
#: object or a plain sequence of attribute-value rows.
DatasetLike = Union[SupportsValueRows, Sequence[Sequence[str]]]


def value_rows(dataset: DatasetLike) -> list[tuple[str, ...]]:
    """Normalise a Dataset or a plain sequence into value-row tuples."""
    if hasattr(dataset, "value_rows"):
        return dataset.value_rows()
    return [tuple(row) for row in dataset]


from repro.core.config import DEFAULT_DELTA, DEFAULT_K  # noqa: E402
from repro.core.cvector import CVectorEncoder, UniversalHash  # noqa: E402
from repro.core.encoder import RecordEncoder  # noqa: E402
from repro.core.qgram import QGramScheme  # noqa: E402
from repro.core.sizing import (  # noqa: E402
    DEFAULT_CONFIDENCE_R,
    DEFAULT_RHO,
    optimal_cvector_size,
)
from repro.data.schema import Dataset  # noqa: E402
from repro.hamming.bitmatrix import BitMatrix  # noqa: E402
from repro.hamming.lsh import HammingLSH  # noqa: E402
from repro.rules.ast import Rule  # noqa: E402
from repro.rules.blocking import RuleAwareBlocker  # noqa: E402
from repro.text.alphabet import TEXT_ALPHABET  # noqa: E402


@dataclass(frozen=True)
class EncodingAgreement:
    """Public parameters shared by all custodians.

    ``qgram_counts`` are the agreed per-attribute average q-gram counts
    ``b^(f_i)`` (aggregate statistics only — no record values).  The
    ``seed`` fixes the attribute hash functions so every custodian embeds
    into the *same* compact space.
    """

    attribute_names: tuple[str, ...]
    qgram_counts: tuple[float, ...]
    seed: int
    rho: float = DEFAULT_RHO
    r: float = DEFAULT_CONFIDENCE_R
    scheme: QGramScheme = field(
        default_factory=lambda: QGramScheme(alphabet=TEXT_ALPHABET)
    )

    def __post_init__(self) -> None:
        if len(self.attribute_names) != len(self.qgram_counts):
            raise ValueError(
                f"{len(self.attribute_names)} attribute names for "
                f"{len(self.qgram_counts)} q-gram counts"
            )
        if not self.attribute_names:
            raise ValueError("agreement needs at least one attribute")

    @property
    def widths(self) -> tuple[int, ...]:
        """Per-attribute c-vector sizes from Theorem 1."""
        return tuple(
            optimal_cvector_size(b, self.rho, self.r) for b in self.qgram_counts
        )

    @property
    def total_bits(self) -> int:
        return sum(self.widths)

    def build_encoder(self) -> RecordEncoder:
        """Derive the (deterministic) shared record encoder."""
        seeds = np.random.SeedSequence(self.seed).spawn(len(self.attribute_names))
        encoders = []
        for width, attr_seed in zip(self.widths, seeds):
            rng = np.random.default_rng(attr_seed)
            encoders.append(
                CVectorEncoder(
                    width, scheme=self.scheme, hash_fn=UniversalHash.random(width, rng)
                )
            )
        return RecordEncoder(encoders, names=list(self.attribute_names))

    @classmethod
    def negotiate(
        cls,
        datasets: Sequence[Dataset],
        seed: int,
        rho: float = DEFAULT_RHO,
        r: float = DEFAULT_CONFIDENCE_R,
    ) -> "EncodingAgreement":
        """Agree on parameters from the custodians' aggregate statistics.

        Each custodian contributes only its per-attribute average q-gram
        count; the agreement averages them (weighted by dataset size).
        """
        if not datasets:
            raise ValueError("need at least one dataset to negotiate")
        names = datasets[0].schema.names
        scheme = datasets[0].schema[0].scheme
        for dataset in datasets[1:]:
            if dataset.schema.names != names:
                raise ValueError(
                    f"custodian schemas disagree: {dataset.schema.names} vs {names}"
                )
        totals = np.zeros(len(names))
        count = 0
        for dataset in datasets:
            for record in dataset:
                for i, value in enumerate(record.values):
                    totals[i] += scheme.count(value)
            count += len(dataset)
        return cls(
            attribute_names=tuple(names),
            qgram_counts=tuple(float(t / count) for t in totals),
            seed=seed,
            rho=rho,
            r=r,
            scheme=scheme,
        )


@dataclass(frozen=True)
class EncodedDataset:
    """What a custodian submits to Charlie: ids and c-vectors only."""

    custodian: str
    record_ids: tuple[str, ...]
    matrix: BitMatrix

    def __post_init__(self) -> None:
        if len(self.record_ids) != self.matrix.n_rows:
            raise ValueError(
                f"{len(self.record_ids)} ids for {self.matrix.n_rows} vectors"
            )

    def __len__(self) -> int:
        return len(self.record_ids)


class DataCustodian:
    """A data owner: encodes its records locally under the agreement."""

    def __init__(self, name: str, dataset: Dataset):
        if not name:
            raise ValueError("custodian needs a name")
        self.name = name
        self.dataset = dataset

    def average_qgram_counts(self, scheme: QGramScheme) -> list[float]:
        """Aggregate statistics shared during negotiation."""
        totals = [0.0] * self.dataset.schema.n_attributes
        for record in self.dataset:
            for i, value in enumerate(record.values):
                totals[i] += scheme.count(value)
        return [t / len(self.dataset) for t in totals]

    def encode(self, agreement: EncodingAgreement) -> EncodedDataset:
        """Embed the records; only ids and bit vectors leave the custodian."""
        if self.dataset.schema.names != agreement.attribute_names:
            raise ValueError(
                f"dataset attributes {self.dataset.schema.names} do not match "
                f"agreement {agreement.attribute_names}"
            )
        encoder = agreement.build_encoder()
        matrix = encoder.encode_dataset(self.dataset.value_rows())
        return EncodedDataset(
            custodian=self.name,
            record_ids=tuple(r.record_id for r in self.dataset),
            matrix=matrix,
        )


class LinkageUnit:
    """Charlie: blocks and matches encoded datasets, never raw strings."""

    def __init__(
        self,
        agreement: EncodingAgreement,
        threshold: int | None = None,
        rule: Rule | None = None,
        k: int | Mapping[str, int] = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        seed: int | None = None,
    ):
        if (threshold is None) == (rule is None):
            raise ValueError("specify exactly one of threshold or rule")
        self.agreement = agreement
        self.threshold = threshold
        self.rule = rule
        self.k = k
        self.delta = delta
        self.seed = seed
        # Charlie rebuilds the layout (widths are public) but never needs
        # the raw attribute values.
        self._encoder = agreement.build_encoder()

    def link(
        self, encoded_a: EncodedDataset, encoded_b: EncodedDataset
    ) -> list[tuple[str, str]]:
        """Matched (id_a, id_b) pairs between two encoded datasets."""
        if encoded_a.matrix.n_bits != self.agreement.total_bits:
            raise ValueError("encoded dataset A does not match the agreement's layout")
        if encoded_b.matrix.n_bits != self.agreement.total_bits:
            raise ValueError("encoded dataset B does not match the agreement's layout")
        if self.rule is not None:
            if not isinstance(self.k, Mapping):
                raise ValueError("rule-based linkage needs a per-attribute K mapping")
            blocker = RuleAwareBlocker(
                self.rule, self._encoder, k=self.k, delta=self.delta, seed=self.seed
            )
            blocker.index(encoded_a.matrix)
            rows_a, rows_b, __ = blocker.match(encoded_b.matrix)
        else:
            if not isinstance(self.k, int):
                raise ValueError("threshold-based linkage takes a single integer K")
            lsh = HammingLSH(
                n_bits=self.agreement.total_bits,
                k=self.k,
                threshold=self.threshold,
                delta=self.delta,
                seed=self.seed,
            )
            lsh.index(encoded_a.matrix)
            rows_a, rows_b, __ = lsh.match(encoded_a.matrix, encoded_b.matrix)
        return [
            (encoded_a.record_ids[int(a)], encoded_b.record_ids[int(b)])
            for a, b in zip(rows_a, rows_b)
        ]

    def link_all(
        self, encoded: Sequence[EncodedDataset]
    ) -> dict[tuple[str, str], list[tuple[str, str]]]:
        """Pairwise linkage across an arbitrary number of custodians."""
        if len(encoded) < 2:
            raise ValueError("need at least two encoded datasets")
        out: dict[tuple[str, str], list[tuple[str, str]]] = {}
        for i in range(len(encoded)):
            for j in range(i + 1, len(encoded)):
                out[(encoded[i].custodian, encoded[j].custodian)] = self.link(
                    encoded[i], encoded[j]
                )
        return out
