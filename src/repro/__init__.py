"""repro — Efficient Record Linkage Using a Compact Hamming Space.

A faithful, self-contained reproduction of Karapiperis, Vatsalan, Verykios
and Christen (EDBT 2016): strings are embedded into a *compact* binary
Hamming space (c-vectors sized by Theorem 1), blocked and matched with the
Hamming LSH mechanism HB, optionally adapted to an AND/OR/NOT
classification rule (attribute-level blocking, Section 5.4).

Quickstart
----------
>>> from repro import CompactHammingLinker, NCVRGenerator, build_linkage_problem, scheme_pl
>>> problem = build_linkage_problem(NCVRGenerator(), 500, scheme_pl(), seed=1)
>>> linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=1)
>>> result = linker.link(problem.dataset_a, problem.dataset_b)
>>> found = result.matches & problem.true_matches
>>> len(found) / len(problem.true_matches) > 0.9
True
"""

from repro.core import (
    CVectorEncoder,
    CalibrationConfig,
    CompactHammingLinker,
    LinkageResult,
    QGramScheme,
    RecordEncoder,
    StreamingLinker,
    optimal_cvector_size,
    qgram_index,
    qgram_vector,
)
from repro.data import (
    DBLPGenerator,
    Dataset,
    LinkageProblem,
    NCVRGenerator,
    Operation,
    Record,
    Schema,
    build_linkage_problem,
    scheme_ph,
    scheme_pl,
)
from repro.evaluation import LinkageQuality, evaluate_linkage
from repro.hamming import BitMatrix, BitVector, HammingLSH
from repro.rules import Comparison, Rule, RuleAwareBlocker, parse_rule

__version__ = "1.0.0"

__all__ = [
    "BitMatrix",
    "BitVector",
    "CVectorEncoder",
    "CalibrationConfig",
    "CompactHammingLinker",
    "Comparison",
    "DBLPGenerator",
    "Dataset",
    "HammingLSH",
    "LinkageProblem",
    "LinkageQuality",
    "LinkageResult",
    "NCVRGenerator",
    "Operation",
    "QGramScheme",
    "Record",
    "RecordEncoder",
    "Rule",
    "RuleAwareBlocker",
    "Schema",
    "StreamingLinker",
    "build_linkage_problem",
    "evaluate_linkage",
    "optimal_cvector_size",
    "parse_rule",
    "qgram_index",
    "qgram_vector",
    "scheme_ph",
    "scheme_pl",
]
