"""The mutable state a :class:`LinkagePipeline` threads through its stages.

Each stage reads the fields earlier stages produced and writes its own:
embed stages fill ``embedded_a`` / ``embedded_b``, block stages
``blocker``, candidate stages either ``candidate_chunks`` (a streamed,
memory-bounded chunk list) or the materialised ``cand_a`` / ``cand_b``
arrays plus ``n_candidates``, and verify/classify stages the final
``out_a`` / ``out_b`` / distance fields the runner assembles into a
:class:`repro.pipeline.result.LinkageResult`.

``extras`` is the escape hatch for method-specific intermediates (HARRA's
bigram sets, MinHash band keys, ...) that no shared field models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.perf import ParallelConfig


@dataclass
class PipelineContext:
    """Shared state of one pipeline run.

    ``dataset_a`` / ``dataset_b`` are the raw inputs (kept for calibrate
    stages that sample them); ``rows_a`` / ``rows_b`` are their
    normalised value rows, computed once by the runner.  ``parallel`` is
    the run's fan-out configuration — routed once, at the runner, so no
    stage needs its own ``n_jobs`` plumbing.
    """

    dataset_a: Any
    dataset_b: Any
    rows_a: list[tuple[str, ...]]
    rows_b: list[tuple[str, ...]]
    parallel: ParallelConfig
    #: Encoder the embed stage used (RecordEncoder, BloomRecordEncoder, ...).
    encoder: Any = None
    #: Embedded datasets (BitMatrix, float ndarray, packed uint64 words, ...).
    embedded_a: Any = None
    embedded_b: Any = None
    #: Blocking structure built by the block stage (HammingLSH, ...).
    blocker: Any = None
    #: Streamed candidate chunks [(rows_a, rows_b), ...] — memory-bounded.
    candidate_chunks: list[tuple[np.ndarray, np.ndarray]] | None = None
    #: Materialised candidate pair arrays (alternative to chunks).
    cand_a: np.ndarray | None = None
    cand_b: np.ndarray | None = None
    n_candidates: int = 0
    #: Classified matches and their distances.
    out_a: np.ndarray | None = None
    out_b: np.ndarray | None = None
    record_distances: np.ndarray | None = None
    attribute_distances: dict[str, np.ndarray] = field(default_factory=dict)
    #: Diagnostics merged into the result (intern stats, pair counts, ...).
    counters: dict[str, float] = field(default_factory=dict)
    #: Method-specific intermediates with no shared field.
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def comparison_space(self) -> int:
        """|A| x |B| — the full quadratic pair space."""
        return len(self.rows_a) * len(self.rows_b)
