"""Shared concrete stages used by more than one linker.

This module (like the whole ``repro.pipeline`` package) keeps its
module-level imports to numpy, the stdlib and the leaf ``repro.perf``
package, so ``repro.core`` and ``repro.baselines`` may import it freely;
the one stage that needs :class:`repro.core.encoder.RecordEncoder`
imports it at run time.

The verification workers (:func:`_init_verify_worker` /
:func:`_verify_chunk`) moved here from ``repro.core.linker`` — they stay
module-level so the process backend can pickle them by qualified name.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import TYPE_CHECKING, Any, Protocol

import numpy as np

from repro.perf import parallel_map
from repro.pipeline.context import PipelineContext
from repro.pipeline.stage import (
    BlockStage,
    CalibrateStage,
    CandidateStage,
    ClassifyStage,
    EmbedStage,
    VerifyStage,
)

if TYPE_CHECKING:
    from repro.hamming.sketch import VerifyConfig

#: Per-worker verification state: the packed words of both matrices are
#: shipped once per worker (executor initializer), not once per chunk.
_VERIFY_STATE: dict[str, np.ndarray] = {}


def _init_verify_worker(words_a: np.ndarray, words_b: np.ndarray) -> None:
    """Executor initializer: pin both packed matrices in the worker."""
    _VERIFY_STATE["a"] = words_a
    _VERIFY_STATE["b"] = words_b


def _verify_chunk(
    task: tuple[np.ndarray, np.ndarray, int, "VerifyConfig | None"],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, float]]:
    """Worker: Hamming-verify one candidate chunk against the threshold.

    With an enabled :class:`~repro.hamming.sketch.VerifyConfig` the chunk
    runs through the tiered sketch prefilter (byte-identical output, see
    that module); otherwise the plain full-width packed sweep.  The
    per-chunk prefilter counters travel back with the kept pairs so the
    stage can merge them without shared worker state.
    """
    rows_a, rows_b, threshold, config = task
    if config is not None and config.enabled:
        # Runtime import: repro.pipeline stays import-leaf (module docstring).
        from repro.hamming.sketch import verify_pairs

        counters: dict[str, float] = {}
        kept_a, kept_b, dist = verify_pairs(
            _VERIFY_STATE["a"], rows_a, _VERIFY_STATE["b"], rows_b,
            threshold, config, counters,
        )
        return kept_a, kept_b, dist, counters
    xor = _VERIFY_STATE["a"][rows_a] ^ _VERIFY_STATE["b"][rows_b]
    dist = np.bitwise_count(xor).sum(axis=1).astype(np.int64)
    keep = dist <= threshold
    return rows_a[keep], rows_b[keep], dist[keep], {}


def _packed_words(embedded: Any) -> np.ndarray:
    """Packed uint64 words of an embedding (BitMatrix or raw array)."""
    words = getattr(embedded, "words", None)
    if words is not None:
        return np.asarray(words)
    return np.asarray(embedded)


_EMPTY_ROWS = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def _candidate_arrays(ctx: PipelineContext) -> tuple[np.ndarray, np.ndarray]:
    """The materialised candidate arrays (empty when a stage set none)."""
    if ctx.cand_a is None or ctx.cand_b is None:
        return _EMPTY_ROWS
    return ctx.cand_a, ctx.cand_b


class SupportsCalibration(Protocol):
    """A linker owning a lazily calibrated encoder (cBV-HB style)."""

    encoder: Any

    def calibrate(self, *datasets: Any) -> Any: ...


class EncoderCalibrateStage(CalibrateStage):
    """Run the owner's ``calibrate()`` unless an encoder is already set.

    Mirrors ``CompactHammingLinker``'s lazy calibration: a pre-calibrated
    (or externally supplied) encoder short-circuits the stage, so shared
    calibration across ``link_multiple`` keeps working.
    """

    def __init__(self, owner: SupportsCalibration):
        self.owner = owner

    def run(self, ctx: PipelineContext) -> None:
        if self.owner.encoder is None:
            self.owner.calibrate(ctx.dataset_a, ctx.dataset_b)
        ctx.encoder = self.owner.encoder


class LoadSnapshotStage(CalibrateStage):
    """Attach a persisted index snapshot instead of calibrating + indexing A.

    Loads the bundle (zero-copy by default) and publishes its encoder,
    packed A-side matrix and fully indexed blocker, so the rest of the
    pipeline — candidate generation, verification — runs unchanged
    against data that was never re-hashed or re-sorted.  Replaces the
    calibrate stage (the snapshot *is* the calibration) and charges its
    wall-clock to the ``"index"`` timing key, where index construction
    is accounted.

    A sharded bundle (``repro.core.shards``) is accepted transparently:
    its shards — including any write-ahead ingest overlay — are merged
    into one logical snapshot in global-id order, byte-identical to a
    single-bundle index over the same records, and the shard count /
    replayed-record count land in the run counters.
    """

    timing = "index"

    def __init__(self, path: Any, mmap_mode: str | None = "r"):
        self.path = path
        self.mmap_mode = mmap_mode

    def run(self, ctx: PipelineContext) -> None:
        # Runtime import: repro.pipeline stays import-leaf so repro.core
        # can depend on it (see the module docstring).
        from repro.core.persist import load_index_snapshot
        from repro.core.shards import ShardedIndex, is_sharded_bundle

        if is_sharded_bundle(self.path):
            with ShardedIndex.open(self.path, mmap_mode=self.mmap_mode) as index:
                snapshot = index.merged()
                ctx.counters["snapshot_shards"] = float(index.n_shards)
                ctx.counters["wal_replayed_records"] = index.counters[
                    "wal_replayed_records"
                ]
        else:
            snapshot = load_index_snapshot(self.path, mmap_mode=self.mmap_mode)
        ctx.encoder = snapshot.encoder
        ctx.embedded_a = snapshot.matrix
        ctx.blocker = snapshot.lsh
        ctx.extras["snapshot"] = snapshot


class QueryEmbedStage(EmbedStage):
    """Embed only dataset B — A's embedding came from a loaded snapshot.

    The serving-side counterpart of :class:`CVectorEmbedStage`: the same
    interned ``encode_dataset`` hot path and intern counters, applied to
    the query stream alone.
    """

    def run(self, ctx: PipelineContext) -> None:
        stats: dict[str, float] = {}
        ctx.embedded_b = ctx.encoder.encode_dataset(
            ctx.rows_b, parallel=ctx.parallel, stats=stats
        )
        values = stats.get("intern_values", 0.0)
        unique = stats.get("intern_unique", 0.0)
        ctx.counters["intern_values"] = values
        ctx.counters["intern_unique"] = unique
        ctx.counters["intern_hit_rate"] = 1.0 - unique / values if values else 0.0


class CVectorEmbedStage(EmbedStage):
    """Interned c-vector embedding of both datasets, with intern counters.

    Uses the hot-path engine of ``RecordEncoder.encode_dataset``: unique
    values are encoded once and gathered, shards fan out over
    ``ctx.parallel``, and the intern statistics land in the run counters
    (``intern_values`` / ``intern_unique`` / ``intern_hit_rate``).
    """

    def run(self, ctx: PipelineContext) -> None:
        stats_a: dict[str, float] = {}
        stats_b: dict[str, float] = {}
        ctx.embedded_a = ctx.encoder.encode_dataset(
            ctx.rows_a, parallel=ctx.parallel, stats=stats_a
        )
        ctx.embedded_b = ctx.encoder.encode_dataset(
            ctx.rows_b, parallel=ctx.parallel, stats=stats_b
        )
        values = stats_a.get("intern_values", 0.0) + stats_b.get("intern_values", 0.0)
        unique = stats_a.get("intern_unique", 0.0) + stats_b.get("intern_unique", 0.0)
        ctx.counters["intern_values"] = values
        ctx.counters["intern_unique"] = unique
        ctx.counters["intern_hit_rate"] = 1.0 - unique / values if values else 0.0


class SampledCalibrationEmbedStage(EmbedStage):
    """Calibrate a ``RecordEncoder`` on a sample of A and embed both sides.

    The classic-baseline embedding (canopy, sorted neighborhood, the
    exhaustive reference): fit c-vector encoders on up to ``sample_size``
    rows of dataset A, then encode both datasets.
    """

    def __init__(
        self, scheme: Any = None, seed: int | None = None, sample_size: int = 1000
    ):
        self.scheme = scheme
        self.seed = seed
        self.sample_size = sample_size

    def run(self, ctx: PipelineContext) -> None:
        # Runtime import: repro.pipeline stays import-leaf so repro.core
        # can depend on it (see the module docstring).
        from repro.core.encoder import RecordEncoder

        sample = ctx.rows_a[: min(len(ctx.rows_a), self.sample_size)]
        encoder = RecordEncoder.calibrated(sample, scheme=self.scheme, seed=self.seed)
        ctx.encoder = encoder
        ctx.embedded_a = encoder.encode_dataset(ctx.rows_a)
        ctx.embedded_b = encoder.encode_dataset(ctx.rows_b)


class BlockerIndexStage(BlockStage):
    """Build a blocking structure via ``factory(ctx)`` and index dataset A.

    Works for any blocker exposing ``index(embedded_a)`` — ``HammingLSH``,
    ``RuleAwareBlocker``, ``EuclideanLSH``; swapping the blocking backend
    of a pipeline is swapping this one stage.
    """

    def __init__(self, factory: Callable[[PipelineContext], Any]):
        self.factory = factory

    def run(self, ctx: PipelineContext) -> None:
        ctx.blocker = self.factory(ctx)
        ctx.blocker.index(ctx.embedded_a)


class ChunkedCandidateStage(CandidateStage):
    """Stream memory-bounded candidate chunks from the blocker.

    Materialises the blocker's ``candidate_chunks`` generator (each chunk
    respects the blocker's ``max_chunk_pairs`` budget), which also flushes
    the generation counters (pairs generated / unique / duplicates, chunk
    stats) into the run counters.
    """

    def run(self, ctx: PipelineContext) -> None:
        chunks = list(ctx.blocker.candidate_chunks(ctx.embedded_b, counters=ctx.counters))
        ctx.candidate_chunks = chunks
        ctx.n_candidates = sum(int(chunk_a.size) for chunk_a, __ in chunks)


class MaterializedCandidateStage(CandidateStage):
    """De-duplicated candidate pair arrays via ``blocker.candidate_pairs``."""

    def run(self, ctx: PipelineContext) -> None:
        cand_a, cand_b = ctx.blocker.candidate_pairs(ctx.embedded_b)
        ctx.cand_a, ctx.cand_b = cand_a, cand_b
        ctx.n_candidates = int(cand_a.size)


class ThresholdVerifyStage(VerifyStage):
    """Hamming-verify candidates against a record-level threshold.

    Consumes ``ctx.candidate_chunks`` when a chunked candidate stage ran,
    otherwise shards the materialised ``cand_a`` / ``cand_b`` arrays by
    ``ctx.parallel.shard_ranges``.  Verification fans out through
    ``repro.perf.parallel_map`` (the packed matrices ship once per worker
    via the executor initializer); chunk partitioning and result order are
    deterministic, so output is identical for every ``n_jobs`` setting.

    ``sort_pairs=True`` restores the historical cBV-HB order (sorted by
    encoded pair id ``a * n_B + b``); the classic baselines keep their
    natural candidate order.

    ``verify`` enables the sketch prefilter
    (:mod:`repro.hamming.sketch`): each chunk early-rejects candidates
    whose partial word-subset distance already exceeds the threshold and
    cache-blocks the exact sweep for the survivors.  Output stays
    byte-identical; the per-tier rejection counters
    (``pairs_rejected_t<i>``, ``pairs_exact``, ``prefilter_reject_rate``)
    are merged into the run counters.
    """

    def __init__(
        self,
        threshold: int,
        sort_pairs: bool = False,
        verify: "VerifyConfig | None" = None,
    ):
        self.threshold = threshold
        self.sort_pairs = sort_pairs
        self.verify = verify

    def run(self, ctx: PipelineContext) -> None:
        chunks = ctx.candidate_chunks
        if chunks is None:
            cand_a, cand_b = _candidate_arrays(ctx)
            chunks = [
                (cand_a[lo:hi], cand_b[lo:hi])
                for lo, hi in ctx.parallel.shard_ranges(int(cand_a.size))
            ]
        n_pairs = sum(int(chunk_a.size) for chunk_a, __ in chunks)
        ctx.counters["pairs_verified"] = float(n_pairs)
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            ctx.out_a, ctx.out_b, ctx.record_distances = empty, empty, empty
            return
        tasks = [
            (chunk_a, chunk_b, self.threshold, self.verify)
            for chunk_a, chunk_b in chunks
        ]
        parts = parallel_map(
            _verify_chunk,
            tasks,
            ctx.parallel,
            initializer=_init_verify_worker,
            initargs=(_packed_words(ctx.embedded_a), _packed_words(ctx.embedded_b)),
        )
        out_a = np.concatenate([p[0] for p in parts])
        out_b = np.concatenate([p[1] for p in parts])
        dist = np.concatenate([p[2] for p in parts])
        if self.verify is not None and self.verify.enabled:
            # Runtime import: repro.pipeline stays import-leaf.
            from repro.hamming.sketch import reject_rate

            for part in parts:
                for key, value in part[3].items():
                    ctx.counters[key] = ctx.counters.get(key, 0.0) + value
            ctx.counters["prefilter_reject_rate"] = reject_rate(ctx.counters)
        if self.sort_pairs:
            order = np.argsort(out_a * len(ctx.rows_b) + out_b, kind="stable")
            out_a, out_b, dist = out_a[order], out_b[order], dist[order]
        ctx.out_a, ctx.out_b, ctx.record_distances = out_a, out_b, dist


class RuleClassifyStage(ClassifyStage):
    """Evaluate a rule AST over per-attribute distances of the candidates.

    The cBV-HB rule-aware matching step (Section 5.4): masked per-attribute
    Hamming distances from the encoder, then the rule's boolean verdict.
    """

    def __init__(self, rule: Any):
        self.rule = rule

    def run(self, ctx: PipelineContext) -> None:
        cand_a, cand_b = _candidate_arrays(ctx)
        distances: dict[str, np.ndarray] = (
            ctx.encoder.attribute_distances(ctx.embedded_a, cand_a, ctx.embedded_b, cand_b)
            if cand_a.size
            else {}
        )
        accepted = (
            np.asarray(self.rule.evaluate(distances))
            if cand_a.size
            else np.empty(0, dtype=bool)
        )
        ctx.out_a, ctx.out_b = cand_a[accepted], cand_b[accepted]
        ctx.attribute_distances = {name: d[accepted] for name, d in distances.items()}


class AttributeThresholdClassifyStage(ClassifyStage):
    """Accept candidates whose per-attribute distances all clear thresholds.

    The BfH / SM-EB matching step: ``distances(ctx)`` computes every
    attribute's distance array over the candidates; attributes present in
    ``thresholds`` constrain acceptance, the rest are reported only.
    """

    def __init__(
        self,
        thresholds: Mapping[str, float],
        distances: Callable[[PipelineContext], dict[str, np.ndarray]],
    ):
        self.thresholds = dict(thresholds)
        self.distances = distances

    def run(self, ctx: PipelineContext) -> None:
        cand_a, cand_b = _candidate_arrays(ctx)
        if not cand_a.size:
            ctx.out_a, ctx.out_b = cand_a, cand_b
            ctx.attribute_distances = {}
            return
        distances = self.distances(ctx)
        accepted = np.ones(cand_a.size, dtype=bool)
        for attribute, threshold in self.thresholds.items():
            accepted &= distances[attribute] <= threshold
        ctx.out_a, ctx.out_b = cand_a[accepted], cand_b[accepted]
        ctx.attribute_distances = {name: d[accepted] for name, d in distances.items()}
