"""Exhaustive (no-blocking) reference linker.

Verifies *every* cross-dataset pair against the record-level compact
Hamming threshold — the PC upper bound any blocking method is measured
against, and the simplest possible pipeline: no block stage at all, just
embed -> all-pairs candidates -> verify.  The candidate stage slices the
quadratic pair space into budget-bounded chunks, so memory stays flat
and verification fans out over ``parallel`` like every other linker.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

import numpy as np

from repro.perf import ParallelConfig
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stage import CandidateStage
from repro.pipeline.stages import SampledCalibrationEmbedStage, ThresholdVerifyStage

if TYPE_CHECKING:
    from repro.hamming.sketch import VerifyConfig

#: Default pair budget per candidate chunk (matches the HammingLSH scale).
DEFAULT_MAX_CHUNK_PAIRS = 1 << 20


class AllPairsCandidateStage(CandidateStage):
    """Every (a, b) pair, as encoded-id ranges cut into bounded chunks."""

    def __init__(self, max_chunk_pairs: int = DEFAULT_MAX_CHUNK_PAIRS):
        if max_chunk_pairs < 1:
            raise ValueError(f"max_chunk_pairs must be >= 1, got {max_chunk_pairs}")
        self.max_chunk_pairs = max_chunk_pairs

    def run(self, ctx: PipelineContext) -> None:
        n_b = len(ctx.rows_b)
        total = len(ctx.rows_a) * n_b
        chunks: list[tuple[np.ndarray, np.ndarray]] = []
        for lo in range(0, total, self.max_chunk_pairs):
            encoded = np.arange(lo, min(lo + self.max_chunk_pairs, total), dtype=np.int64)
            chunks.append((encoded // n_b, encoded % n_b))
        ctx.candidate_chunks = chunks
        ctx.n_candidates = total


class ExhaustiveLinker:
    """All-pairs compact-Hamming linkage (the blocking-free upper bound).

    Parameters
    ----------
    threshold:
        Record-level compact-Hamming threshold for the matching step.
    max_chunk_pairs:
        Pair budget per verification chunk (bounds peak memory).
    """

    def __init__(
        self,
        threshold: int,
        scheme: Any = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        max_chunk_pairs: int = DEFAULT_MAX_CHUNK_PAIRS,
        sample_size: int = 1000,
        verify: "VerifyConfig | None" = None,
    ):
        self.threshold = threshold
        self.scheme = scheme
        self.seed = seed
        self.parallel = parallel or ParallelConfig()
        self.max_chunk_pairs = max_chunk_pairs
        self.sample_size = sample_size
        self.verify = verify

    def link(self, dataset_a: Any, dataset_b: Any) -> LinkageResult:
        # Runtime import: keep this module import-leaf (see package docstring).
        from repro.core.qgram import QGramScheme
        from repro.text.alphabet import TEXT_ALPHABET

        scheme = self.scheme or QGramScheme(alphabet=TEXT_ALPHABET)
        pipeline = LinkagePipeline(
            [
                SampledCalibrationEmbedStage(
                    scheme=scheme, seed=self.seed, sample_size=self.sample_size
                ),
                AllPairsCandidateStage(self.max_chunk_pairs),
                ThresholdVerifyStage(self.threshold, sort_pairs=True, verify=self.verify),
            ],
            parallel=self.parallel,
        )
        return pipeline.run(dataset_a, dataset_b)
