"""The single linker registry: every method, one name, one factory.

``repro --help`` lists linkers from here, docs reference it, and tests
iterate it — adding a linker to the repo means adding one
:class:`LinkerSpec`.  Imports resolve lazily at first lookup so this
module stays import-leaf (the registry names live above the layers they
describe).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class LinkerSpec:
    """One registered linkage method."""

    name: str
    summary: str
    factory: Callable[..., Any]


_SPECS: dict[str, LinkerSpec] | None = None


def _load_specs() -> dict[str, LinkerSpec]:
    from repro.baselines.bfh import BfHLinker
    from repro.baselines.canopy import CanopyLinker
    from repro.baselines.harra import HarraLinker
    from repro.baselines.minhash import MinHashLinker
    from repro.baselines.smeb import SMEBLinker
    from repro.baselines.sorted_neighborhood import SortedNeighborhoodLinker
    from repro.core.linker import CompactHammingLinker, StreamingLinker
    from repro.pipeline.exhaustive import ExhaustiveLinker

    specs = [
        LinkerSpec(
            "cbv-record",
            "cBV-HB, record-level Hamming threshold (Section 4.2)",
            CompactHammingLinker.record_level,
        ),
        LinkerSpec(
            "cbv-rule",
            "cBV-HB, rule-aware attribute-level blocking (Section 5.4)",
            CompactHammingLinker.rule_aware,
        ),
        LinkerSpec(
            "streaming",
            "incremental insert/query cBV-HB (real-time setting, Section 1)",
            StreamingLinker,
        ),
        LinkerSpec(
            "exhaustive",
            "all-pairs compact-Hamming verification (no blocking; PC upper bound)",
            ExhaustiveLinker,
        ),
        LinkerSpec(
            "bfh",
            "Bloom-filter embeddings + Hamming LSH blocking [17]",
            BfHLinker,
        ),
        LinkerSpec(
            "canopy",
            "canopy clustering on bigram Jaccard + Hamming verification [6]",
            CanopyLinker,
        ),
        LinkerSpec(
            "harra",
            "HARRA h-CC: MinHash LSH with iterative early pruning [18]",
            HarraLinker,
        ),
        LinkerSpec(
            "minhash",
            "non-iterative MinHash LSH blocking + Jaccard verification",
            MinHashLinker,
        ),
        LinkerSpec(
            "smeb",
            "SM-EB: StringMap embeddings + Euclidean p-stable LSH (Section 6.1)",
            SMEBLinker,
        ),
        LinkerSpec(
            "sorted-neighborhood",
            "multi-pass sorted-neighborhood windows + Hamming verification [12]",
            SortedNeighborhoodLinker,
        ),
    ]
    return {spec.name: spec for spec in specs}


def available_linkers() -> tuple[LinkerSpec, ...]:
    """Every registered linker, in registration order."""
    global _SPECS
    if _SPECS is None:
        _SPECS = _load_specs()
    return tuple(_SPECS.values())


def linker_names() -> tuple[str, ...]:
    """The registered linker names."""
    return tuple(spec.name for spec in available_linkers())


def get_linker(name: str) -> LinkerSpec:
    """Look up one linker spec by name (KeyError lists what exists)."""
    available_linkers()
    assert _SPECS is not None
    spec = _SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown linker {name!r}; available: {', '.join(sorted(_SPECS))}")
    return spec


def create_linker(name: str, **kwargs: Any) -> Any:
    """Instantiate a registered linker with its factory."""
    return get_linker(name).factory(**kwargs)
