"""The linkage result record — the lingua franca of every linker.

:class:`LinkageResult` used to live in ``repro.core.linker``; it moved
here with the stage-pipeline refactor because it is the output contract
of :class:`repro.pipeline.runner.LinkagePipeline`, not of one particular
method.  ``repro.core.linker`` re-exports it, so existing imports keep
working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np


@dataclass
class LinkageResult:
    """Output of one linkage run, with enough detail for every metric."""

    rows_a: np.ndarray
    rows_b: np.ndarray
    n_candidates: int
    comparison_space: int
    timings: dict[str, float] = field(default_factory=dict)
    attribute_distances: dict[str, np.ndarray] = field(default_factory=dict)
    record_distances: np.ndarray | None = None
    #: Hot-path diagnostics alongside the phase timings: interning hit
    #: rate of the embedding stage, candidate pairs generated / unique /
    #: duplicate / verified, chunk count and peak chunk size.
    counters: dict[str, float] = field(default_factory=dict)

    @cached_property
    def matches(self) -> set[tuple[int, int]]:
        """The classified matching pairs as (row in A, row in B) tuples.

        Cached: the set is materialised from the row arrays once and
        reused — the evaluation harness reads it repeatedly per trial.
        The row arrays must not be mutated after the first access.
        """
        return set(zip(self.rows_a.tolist(), self.rows_b.tolist()))

    @property
    def n_matches(self) -> int:
        return int(self.rows_a.size)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    def summary(self) -> dict[str, int | float]:
        """Flat scalar summary of the run (sizes, reduction, timings).

        One dict for report tables and the CLI — keys are stable:
        ``n_matches``, ``n_candidates``, ``comparison_space``,
        ``reduction_ratio``, ``total_time_s`` and one ``time_<stage>_s``
        per pipeline stage timing.
        """
        out: dict[str, int | float] = {
            "n_matches": self.n_matches,
            "n_candidates": self.n_candidates,
            "comparison_space": self.comparison_space,
            "reduction_ratio": (
                1.0 - self.n_candidates / self.comparison_space
                if self.comparison_space
                else 0.0
            ),
            "total_time_s": self.total_time,
        }
        for stage, seconds in self.timings.items():
            out[f"time_{stage}_s"] = seconds
        return out
