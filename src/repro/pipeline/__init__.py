"""The composable stage-pipeline every linker in the repo runs on.

The paper's method is explicitly staged (Section 5, Algorithm 2):
calibrate -> embed -> block -> generate candidates -> verify/classify.
This package turns that observation into the execution architecture —
one :class:`LinkagePipeline` runner owning timings, counters, candidate
budgets and the ``repro.perf`` fan-out, with every method (cBV-HB
record-level and rule-aware, streaming, and all baselines) expressed as
a composition of :class:`Stage` implementations.  See
``docs/pipeline.md``.

Layering: module-level imports stay within numpy, the stdlib and the
leaf ``repro.perf`` package, so ``repro.core`` and ``repro.baselines``
depend on this package freely; anything heavier (``RecordEncoder``,
``value_rows``, the registry's linker classes) is imported at run time.
"""

from repro.pipeline.context import PipelineContext
from repro.pipeline.registry import (
    LinkerSpec,
    available_linkers,
    create_linker,
    get_linker,
    linker_names,
)
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stage import (
    BlockStage,
    CalibrateStage,
    CandidateStage,
    ClassifyStage,
    EmbedStage,
    PipelineStage,
    Stage,
    VerifyStage,
)
from repro.pipeline.stages import (
    AttributeThresholdClassifyStage,
    BlockerIndexStage,
    ChunkedCandidateStage,
    CVectorEmbedStage,
    EncoderCalibrateStage,
    LoadSnapshotStage,
    MaterializedCandidateStage,
    QueryEmbedStage,
    RuleClassifyStage,
    SampledCalibrationEmbedStage,
    ThresholdVerifyStage,
)

__all__ = [
    "AttributeThresholdClassifyStage",
    "BlockStage",
    "BlockerIndexStage",
    "CVectorEmbedStage",
    "CalibrateStage",
    "CandidateStage",
    "ChunkedCandidateStage",
    "ClassifyStage",
    "EmbedStage",
    "EncoderCalibrateStage",
    "LoadSnapshotStage",
    "LinkagePipeline",
    "LinkageResult",
    "LinkerSpec",
    "MaterializedCandidateStage",
    "PipelineContext",
    "PipelineStage",
    "QueryEmbedStage",
    "RuleClassifyStage",
    "SampledCalibrationEmbedStage",
    "Stage",
    "ThresholdVerifyStage",
    "VerifyStage",
    "available_linkers",
    "create_linker",
    "get_linker",
    "linker_names",
]
