"""The ``Stage`` protocol and the six stage kinds of the linkage pipeline.

The paper's method is explicitly staged (Section 5, Algorithm 2):
calibrate -> embed -> block -> generate candidates -> verify/classify.
Every linker in the repo — cBV-HB, the streaming variant and all
baselines — is a composition of concrete stages of these kinds, run by
:class:`repro.pipeline.runner.LinkagePipeline`.

Each kind carries the *timing key* its wall-clock is accumulated under,
reproducing the historical ``LinkageResult.timings`` layout: calibrate ->
``"calibrate"``, embed -> ``"embed"``, block -> ``"index"``, and the
candidate/verify/classify stages all -> ``"match"``.
"""

from __future__ import annotations

from typing import ClassVar, Protocol, runtime_checkable

from repro.pipeline.context import PipelineContext


@runtime_checkable
class Stage(Protocol):
    """What the runner needs from a stage: a timing key and ``run``."""

    timing: str

    @property
    def name(self) -> str: ...

    def run(self, ctx: PipelineContext) -> None: ...


class PipelineStage:
    """Base class for concrete stages (name + default timing key)."""

    kind: ClassVar[str] = "stage"
    timing: str = "match"

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, ctx: PipelineContext) -> None:
        raise NotImplementedError


class CalibrateStage(PipelineStage):
    """Fits encoders / sizes embeddings from data samples (Theorem 1)."""

    kind = "calibrate"
    timing = "calibrate"


class EmbedStage(PipelineStage):
    """Embeds both datasets into the method's comparison space."""

    kind = "embed"
    timing = "embed"


class BlockStage(PipelineStage):
    """Builds the blocking structure over the embedded dataset A."""

    kind = "block"
    timing = "index"


class CandidateStage(PipelineStage):
    """Generates (de-duplicated) candidate pairs against dataset B."""

    kind = "candidates"
    timing = "match"


class VerifyStage(PipelineStage):
    """Filters candidates by a record-level distance threshold."""

    kind = "verify"
    timing = "match"


class ClassifyStage(PipelineStage):
    """Classifies candidates by per-attribute distances or a rule AST."""

    kind = "classify"
    timing = "match"
