"""``LinkagePipeline``: the one execution engine behind every linker.

The runner owns what used to be duplicated across ten ``link()``
implementations: value-row normalisation, per-stage wall-clock timing
(accumulated under each stage's timing key), the shared counter dict,
the ``repro.perf`` fan-out configuration (routed once, here) and the
final :class:`repro.pipeline.result.LinkageResult` assembly.

Stages run strictly in order; each mutates the shared
:class:`repro.pipeline.context.PipelineContext`.  See
``docs/pipeline.md`` for the stage graph and how to add a stage or a
blocking backend.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.perf import ParallelConfig
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.stage import Stage

if TYPE_CHECKING:
    from repro.protocol import DatasetLike


class LinkagePipeline:
    """Run a sequence of stages over a dataset pair.

    Parameters
    ----------
    stages:
        The stage sequence, in execution order.  Any composition is
        legal (the exhaustive reference linker has no block stage; HARRA
        fuses candidate generation and verification) — the runner only
        requires that *some* stage leaves ``out_a`` / ``out_b`` behind.
    parallel:
        The run's fan-out configuration, exposed to every stage through
        the context; ``None`` keeps the exact single-process path.
    """

    def __init__(self, stages: Sequence[Stage], parallel: ParallelConfig | None = None):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self.parallel = parallel or ParallelConfig()

    def run(self, dataset_a: "DatasetLike", dataset_b: "DatasetLike") -> LinkageResult:
        """Execute every stage and assemble the :class:`LinkageResult`."""
        # Runtime import: repro.pipeline stays import-leaf so repro.core
        # can depend on it at module level.
        from repro.protocol import value_rows

        ctx = PipelineContext(
            dataset_a=dataset_a,
            dataset_b=dataset_b,
            rows_a=value_rows(dataset_a),
            rows_b=value_rows(dataset_b),
            parallel=self.parallel,
        )
        timings: dict[str, float] = {}
        for stage in self.stages:
            t0 = time.perf_counter()
            stage.run(ctx)
            timings[stage.timing] = (
                timings.get(stage.timing, 0.0) + time.perf_counter() - t0
            )
        empty = np.empty(0, dtype=np.int64)
        return LinkageResult(
            rows_a=ctx.out_a if ctx.out_a is not None else empty,
            rows_b=ctx.out_b if ctx.out_b is not None else empty,
            n_candidates=int(ctx.n_candidates),
            comparison_space=ctx.comparison_space,
            timings=timings,
            attribute_distances=ctx.attribute_distances,
            record_distances=ctx.record_distances,
            counters=ctx.counters,
        )
