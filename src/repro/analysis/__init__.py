"""reprolint: repo-specific static analysis guarding paper invariants.

The reproduction's analytical machinery -- Theorem 1 sizing, Eq. 2
blocking-group counts, the Defs. 4-6 collision probabilities -- depends
on invariants a generic linter cannot see: every random draw must flow
from an explicit seed, probabilities must never be compared with float
``==``, and the public API must stay fully annotated so strict ``mypy``
keeps meaning something.  This package is a small AST-based analysis
framework with a rule-plugin architecture:

* :mod:`repro.analysis.engine` walks each module's ``ast`` tree once and
  dispatches nodes to per-rule visitors.
* :mod:`repro.analysis.rules` holds one module per check (RL001-RL006).
* :mod:`repro.analysis.report` renders findings as text or JSON.
* :mod:`repro.analysis.config` loads ``[tool.reprolint]`` from
  ``pyproject.toml`` (rule selection and per-rule path includes/excludes).

Run it as ``repro lint src/`` or ``python -m repro.analysis src/``.
Suppress a finding in place with ``# reprolint: disable=RL003`` (comma
separated ids; always pair a suppression with a justification comment).
"""

from __future__ import annotations

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import FileContext, Finding, LintEngine, Rule, lint_paths
from repro.analysis.report import render_json, render_text

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintEngine",
    "Rule",
    "lint_paths",
    "load_config",
    "render_json",
    "render_text",
]
