"""reprolint: repo-specific static analysis guarding paper invariants.

The reproduction's analytical machinery -- Theorem 1 sizing, Eq. 2
blocking-group counts, the Defs. 4-6 collision probabilities -- depends
on invariants a generic linter cannot see: every random draw must flow
from an explicit seed, probabilities must never be compared with float
``==``, and the public API must stay fully annotated so strict ``mypy``
keeps meaning something.  Beyond the per-file rules, the architectural
invariants of docs/architecture.md -- acyclic module-level imports, the
declared package layering, parallel-worker purity, the pipeline's stage
dataflow and seed propagation -- span modules, and the flow-sensitive
invariants of the kernel/serving layers -- handles closed on every
path, arrays staying ``uint64``, ctx writes dominating their reads --
span *paths*, so the framework runs in three phases:

* :mod:`repro.analysis.engine` walks each module's ``ast`` tree once and
  dispatches nodes to per-rule visitors (phase 1, RL001-RL006), then
  assembles per-module summaries into a whole-program model checked by
  project rules (phase 2, RL101-RL105 and RL203), and lowers each
  function to a control-flow graph for the flow-sensitive rules
  (phase 3, RL201-RL205).
* :mod:`repro.analysis.cfg` builds the per-function CFGs (exception
  edges, ``finally`` duplication) and :mod:`repro.analysis.dataflow`
  runs generic forward/backward fixpoints over them.
* :mod:`repro.analysis.project` extracts the
  :class:`~repro.analysis.project.ProjectModel`: import graph, symbol
  tables, stage kinds, ``PipelineContext`` dataflow, ``parallel_map``
  call sites and RNG seed sources.
* :mod:`repro.analysis.rules` holds one module per check.
* :mod:`repro.analysis.report` renders findings as text, JSON, or SARIF
  2.1.0 for GitHub code scanning.
* :mod:`repro.analysis.config` loads ``[tool.reprolint]`` from
  ``pyproject.toml`` (rule selection, per-rule scoping and severities,
  the ``architecture`` contract table).
* :mod:`repro.analysis.cache` keeps the content-hash incremental cache
  (``.reprolint_cache.json``); :mod:`repro.analysis.baseline` lets new
  rules land without blocking on accepted debt.

Run it as ``repro lint src/`` or ``python -m repro.analysis src/``.
Suppress a finding in place with ``# reprolint: disable=RL003`` (comma
separated ids; always pair a suppression with a justification comment).
"""

from __future__ import annotations

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import (
    FileContext,
    Finding,
    FlowRule,
    LintEngine,
    ProjectRule,
    Rule,
    lint_paths,
)
from repro.analysis.project import ModuleSummary, ProjectModel
from repro.analysis.report import render_json, render_sarif, render_text

__all__ = [
    "FileContext",
    "Finding",
    "FlowRule",
    "LintConfig",
    "LintEngine",
    "ModuleSummary",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "lint_paths",
    "load_config",
    "render_json",
    "render_sarif",
    "render_text",
]
