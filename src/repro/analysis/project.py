"""Phase 1 of whole-program reprolint: the :class:`ProjectModel`.

The per-file rules (RL001-RL006) see one AST at a time.  The
architectural invariants this package also guards — the import layering
of docs/architecture.md, parallel-safety of ``repro.perf`` workers, the
stage-dataflow contract of ``repro.pipeline`` — span modules, so lint
runs build a whole-program model first and run :class:`ProjectRule`
checks (RL101-RL105) over it second.

The model is deliberately *summary-shaped* rather than AST-shaped: one
:class:`ModuleSummary` per file capturing imports (classified as
module-level / runtime / typing-only), name bindings, class symbol
tables with base classes and ``kind`` declarations, per-function
``PipelineContext`` attribute reads/writes, mutation and RNG behaviour,
``parallel_map`` call sites, RNG-constructor seed sources, and stage
list literals.  Summaries are plain JSON-serialisable data so the
incremental cache (:mod:`repro.analysis.cache`) can persist them and a
warm run never re-parses unchanged files.

Everything here is best-effort static analysis: dynamic constructs the
extractor cannot see (computed imports, ``setattr``) simply do not
appear in the model.  Rules therefore only flag what the model
positively establishes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.cfg import CFGNode, build_cfg, evaluated
from repro.analysis.config import ProtocolConfig
from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.rngpatterns import (
    RNG_CONSTRUCTORS,
    has_seed_argument,
    is_global_rng_call,
    seed_argument,
)
from repro.analysis.summaries import augment_function

#: Bump when the ModuleSummary shape changes; invalidates cached summaries.
#: 2: added FunctionInfo.ctx_maybe_unset (flow-sensitive ctx facts, RL203).
#: 3: phase-4 procedure summaries (call_sites, must_calls, call_orders,
#:    receivers, leaks, returns facts) and used_suppressions.
SUMMARY_VERSION = 3

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
    }
)


def dotted_name(node: ast.expr) -> str | None:
    """Resolve ``a.b.c`` attribute chains to a dotted string, else None.

    (Intentionally mirrors :func:`repro.analysis.rules.common.dotted_name`;
    importing the rules package from here would create an import cycle
    through the rule registry.)
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ImportRecord:
    """One import statement edge out of a module.

    ``kind`` is ``"module"`` for top-level imports, ``"runtime"`` for
    imports inside a function body (the sanctioned layering escape
    hatch), and ``"typing"`` for ``TYPE_CHECKING``-guarded imports.
    ``guessed`` marks ``from pkg import name`` aliases re-recorded as
    ``pkg.name`` — real edges only when that dotted path is a module.
    """

    target: str
    lineno: int
    col: int
    kind: str = "module"
    guessed: bool = False


@dataclass
class RngCall:
    """A call that draws randomness (for the parallel-safety rule)."""

    name: str
    lineno: int
    col: int
    #: True for process-global draws; False for unseeded constructors.
    global_state: bool = True


@dataclass
class RngConstruction:
    """An RNG constructor call and where its seed comes from (RL105)."""

    name: str
    lineno: int
    col: int
    #: "literal" | "none" | "name" | "attribute" | "expr" | "missing"
    seed_kind: str
    seed_repr: str = ""
    scope: str = "<module>"


@dataclass
class FunctionInfo:
    """Summary of one function or method body."""

    qualname: str
    lineno: int
    col: int
    params: list[str] = field(default_factory=list)
    #: Parameter carrying the PipelineContext, if the function takes one.
    ctx_param: str | None = None
    #: PipelineContext attribute -> first line read / written.
    ctx_reads: dict[str, int] = field(default_factory=dict)
    ctx_writes: dict[str, int] = field(default_factory=dict)
    #: Flow-sensitive refinement of ``ctx_reads``: attribute -> first line
    #: of a read NOT dominated by a write on every path into it (own
    #: writes and same-module ctx-helper writes count; exception edges
    #: count).  Empty for reads the function provably precedes with a
    #: write.  Feeds RL203.
    ctx_maybe_unset: dict[str, int] = field(default_factory=dict)
    #: Same-module functions this one forwards its ctx to.
    ctx_calls: list[str] = field(default_factory=list)
    global_decls: list[str] = field(default_factory=list)
    #: (name, lineno) of in-place mutations of names not local to the body.
    mutations: list[list[Any]] = field(default_factory=list)
    rng_calls: list[RngCall] = field(default_factory=list)
    #: Every dotted call in the body (nested defs included):
    #: ``[name, lineno, col, use]`` where ``use`` is ``"stmt"`` for a
    #: discarded expression-statement call, ``"bound:<var>"`` for a
    #: single-name binding, ``""`` otherwise.  Call-graph input.
    call_sites: list[list[Any]] = field(default_factory=list)
    #: Dotted calls completed on every path to a normal return.
    must_calls: list[str] = field(default_factory=list)
    #: False when no path reaches a normal return (always raises/loops).
    returns_normally: bool = True
    #: Per call site in protocol-scoped modules: ``[name, lineno, col,
    #: [must-before calls...], [must-after calls...] | None]`` — the
    #: RL301 input.  ``None`` after-set marks a site that cannot reach a
    #: normal return (the after-contract is vacuous there).
    call_orders: list[list[Any]] = field(default_factory=list)
    #: Method-call traces on constructor-bound locals (RL303 input):
    #: ``[var, [[creator, line], ...], [[method, line, col, [prior...]],
    #: ...]]`` per traced local.
    receivers: list[list[Any]] = field(default_factory=list)
    #: Call results bound to a local and dropped without close/escape:
    #: ``[callee, var, line, col]`` — the RL305 input.
    leaks: list[list[Any]] = field(default_factory=list)
    #: Returns facts for the returns-handle closure (RL305).
    returns_acquirer: bool = False
    returns_calls: list[str] = field(default_factory=list)
    returns_line: int = 0


@dataclass
class ClassInfo:
    """Symbol-table entry for one class definition."""

    name: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    #: Value of a literal ``kind = "..."`` class attribute, if present.
    kind_literal: str | None = None
    #: Annotated class-level names (dataclass fields).
    fields: list[str] = field(default_factory=list)
    properties: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallableRef:
    """A callable expression handed to ``parallel_map``."""

    #: "name" (resolvable reference), "inline" (lambda/comprehension
    #: analysed in place) or "other" (opaque expression).
    kind: str
    name: str = ""
    inline: FunctionInfo | None = None


@dataclass
class ParallelCall:
    """One ``parallel_map`` call site."""

    lineno: int
    col: int
    scope: str
    worker: CallableRef | None = None
    initializer: CallableRef | None = None


@dataclass
class StageList:
    """A list literal whose elements are all constructor calls.

    Candidate for a pipeline stage sequence; RL104 checks ordering when
    every element resolves to a known stage class.
    """

    lineno: int
    col: int
    scope: str
    #: (source-dotted class name, lineno) per element.
    elements: list[list[Any]] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """Everything the cross-module rules need to know about one module."""

    name: str
    path: str
    is_package: bool = False
    imports: list[ImportRecord] = field(default_factory=list)
    #: Module-level name bindings from imports: local name -> dotted target.
    bindings: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    parallel_calls: list[ParallelCall] = field(default_factory=list)
    rng_constructions: list[RngConstruction] = field(default_factory=list)
    stage_lists: list[StageList] = field(default_factory=list)
    #: ``# reprolint: disable=`` markers: line number (as str, for JSON
    #: round-tripping) -> disabled rule ids.  Attached by the engine so
    #: project rules honour suppressions without re-reading sources.
    suppressions: dict[str, list[str]] = field(default_factory=dict)
    #: Suppressions that absorbed a per-file finding: line (as str) ->
    #: rule ids actually silenced there.  Attached by the engine;
    #: feeds unused-suppression detection (RL007).
    used_suppressions: dict[str, list[str]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        return rule_id in self.suppressions.get(str(line), ())

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (see :data:`SUMMARY_VERSION`)."""
        from dataclasses import asdict

        payload = asdict(self)
        payload["version"] = SUMMARY_VERSION
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleSummary | None":
        """Rebuild from :meth:`to_dict` output; None on a stale version."""
        if data.get("version") != SUMMARY_VERSION:
            return None

        def fn(entry: Mapping[str, Any]) -> FunctionInfo:
            return FunctionInfo(
                qualname=entry["qualname"],
                lineno=entry["lineno"],
                col=entry["col"],
                params=list(entry["params"]),
                ctx_param=entry["ctx_param"],
                ctx_reads=dict(entry["ctx_reads"]),
                ctx_writes=dict(entry["ctx_writes"]),
                ctx_maybe_unset=dict(entry["ctx_maybe_unset"]),
                ctx_calls=list(entry["ctx_calls"]),
                global_decls=list(entry["global_decls"]),
                mutations=[list(m) for m in entry["mutations"]],
                rng_calls=[RngCall(**call) for call in entry["rng_calls"]],
                call_sites=[list(site) for site in entry["call_sites"]],
                must_calls=list(entry["must_calls"]),
                returns_normally=entry["returns_normally"],
                call_orders=[
                    [
                        order[0],
                        order[1],
                        order[2],
                        list(order[3]),
                        list(order[4]) if order[4] is not None else None,
                    ]
                    for order in entry["call_orders"]
                ],
                receivers=[
                    [
                        trace[0],
                        [list(creation) for creation in trace[1]],
                        [
                            [call[0], call[1], call[2], list(call[3])]
                            for call in trace[2]
                        ],
                    ]
                    for trace in entry["receivers"]
                ],
                leaks=[list(leak) for leak in entry["leaks"]],
                returns_acquirer=entry["returns_acquirer"],
                returns_calls=list(entry["returns_calls"]),
                returns_line=entry["returns_line"],
            )

        def ref(entry: Mapping[str, Any] | None) -> CallableRef | None:
            if entry is None:
                return None
            inline = entry.get("inline")
            return CallableRef(
                kind=entry["kind"],
                name=entry.get("name", ""),
                inline=fn(inline) if inline is not None else None,
            )

        return cls(
            name=data["name"],
            path=data["path"],
            is_package=data["is_package"],
            imports=[ImportRecord(**record) for record in data["imports"]],
            bindings=dict(data["bindings"]),
            functions={key: fn(value) for key, value in data["functions"].items()},
            classes={
                key: ClassInfo(
                    name=value["name"],
                    lineno=value["lineno"],
                    bases=list(value["bases"]),
                    kind_literal=value["kind_literal"],
                    fields=list(value["fields"]),
                    properties=list(value["properties"]),
                    methods={
                        mname: fn(mval) for mname, mval in value["methods"].items()
                    },
                )
                for key, value in data["classes"].items()
            },
            parallel_calls=[
                ParallelCall(
                    lineno=entry["lineno"],
                    col=entry["col"],
                    scope=entry["scope"],
                    worker=ref(entry["worker"]),
                    initializer=ref(entry["initializer"]),
                )
                for entry in data["parallel_calls"]
            ],
            rng_constructions=[
                RngConstruction(**entry) for entry in data["rng_constructions"]
            ],
            stage_lists=[
                StageList(
                    lineno=entry["lineno"],
                    col=entry["col"],
                    scope=entry["scope"],
                    elements=[list(element) for element in entry["elements"]],
                )
                for entry in data["stage_lists"]
            ],
            suppressions={
                key: list(value) for key, value in data["suppressions"].items()
            },
            used_suppressions={
                key: list(value)
                for key, value in data["used_suppressions"].items()
            },
        )


def module_name_for(path: Path) -> str:
    """Derive the dotted module name by climbing ``__init__.py`` chains.

    ``src/repro/core/linker.py`` -> ``repro.core.linker`` because
    ``src/repro/core`` and ``src/repro`` are packages while ``src`` is
    not.  A file outside any package keeps its bare stem.
    """
    resolved = path.resolve()
    if resolved.name == "__init__.py":
        parts: list[str] = []
        current = resolved.parent
    else:
        parts = [resolved.stem]
        current = resolved.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        current = current.parent
    if not parts:  # an __init__.py with no package directory above it
        parts = [resolved.parent.name]
    return ".".join(parts)


def _resolve_relative(
    module_name: str, is_package: bool, level: int, target: str | None
) -> str:
    """Resolve a ``from ...x import y`` module reference to absolute form."""
    if level == 0:
        return target or ""
    parts = module_name.split(".")
    # Level 1 from inside a package __init__ refers to the package itself.
    strip = level - 1 if is_package else level
    base = parts[: len(parts) - strip] if strip else parts
    if target:
        return ".".join([*base, target])
    return ".".join(base)


class _Extractor:
    """Single-pass recursive walk building one :class:`ModuleSummary`."""

    def __init__(self, name: str, path: str, is_package: bool) -> None:
        self.summary = ModuleSummary(name=name, path=path, is_package=is_package)
        self._scope: list[str] = []
        self._typing_depth = 0
        self._func_depth = 0
        #: FunctionInfo accumulating ctx/mutation facts (outermost function).
        self._func: FunctionInfo | None = None
        self._locals: set[str] = set()
        #: (info, def node) of every ctx-taking function/method, for the
        #: flow-sensitive post-pass in :func:`extract_module`.
        self.ctx_functions: list[
            tuple[FunctionInfo, ast.FunctionDef | ast.AsyncFunctionDef]
        ] = []
        #: (info, def node) of every summarised function/method, for the
        #: phase-4 procedure-summary post-pass.
        self.all_functions: list[
            tuple[FunctionInfo, ast.FunctionDef | ast.AsyncFunctionDef]
        ] = []
        #: Call-node id() -> how its value is used ("stmt"/"bound:<var>").
        self._call_use: dict[int, str] = {}

    # -- entry ---------------------------------------------------------

    def run(self, tree: ast.Module) -> ModuleSummary:
        for stmt in tree.body:
            self._visit(stmt)
        return self.summary

    # -- scope helpers -------------------------------------------------

    def _scope_name(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def _import_kind(self) -> str:
        if self._typing_depth:
            return "typing"
        if self._func_depth:
            return "runtime"
        return "module"

    # -- dispatch ------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            self._handle_import(node)
        elif isinstance(node, ast.ImportFrom):
            self._handle_import_from(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._handle_function(node)
        elif isinstance(node, ast.ClassDef):
            self._handle_class(node)
        elif isinstance(node, ast.If) and self._is_type_checking(node.test):
            self._typing_depth += 1
            for stmt in node.body:
                self._visit(stmt)
            self._typing_depth -= 1
            for stmt in node.orelse:
                self._visit(stmt)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            if self._func is not None:
                self._func.global_decls.extend(node.names)
        else:
            self._handle_generic(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        name = dotted_name(test)
        return name is not None and (
            name == "TYPE_CHECKING" or name.endswith(".TYPE_CHECKING")
        )

    # -- imports -------------------------------------------------------

    def _handle_import(self, node: ast.Import) -> None:
        kind = self._import_kind()
        for alias in node.names:
            self.summary.imports.append(
                ImportRecord(alias.name, node.lineno, node.col_offset + 1, kind)
            )
            if kind == "module" and not self._scope:
                if alias.asname:
                    self.summary.bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    self.summary.bindings[root] = root

    def _handle_import_from(self, node: ast.ImportFrom) -> None:
        kind = self._import_kind()
        base = _resolve_relative(
            self.summary.name, self.summary.is_package, node.level, node.module
        )
        if not base:
            return
        self.summary.imports.append(
            ImportRecord(base, node.lineno, node.col_offset + 1, kind)
        )
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}"
            # ``from pkg import sub`` may import a submodule: record a
            # guessed edge the model confirms against known module names.
            self.summary.imports.append(
                ImportRecord(target, node.lineno, node.col_offset + 1, kind, True)
            )
            if kind == "module" and not self._scope:
                self.summary.bindings[alias.asname or alias.name] = target

    # -- functions -----------------------------------------------------

    def _handle_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qualname = ".".join([*self._scope, node.name]) if self._scope else node.name
        outermost = self._func is None
        if outermost:
            info = self._function_info(node, qualname)
            self._func = info
            self._locals = _local_names(node)
            if len(self._scope) == 0:
                self.summary.functions[node.name] = info
                self.all_functions.append((info, node))
            if info.ctx_param is not None:
                self.ctx_functions.append((info, node))
        else:
            # Nested defs fold their facts into the enclosing summary;
            # the nested name is local there.
            self._locals.add(node.name)

        self._scope.append(node.name)
        self._func_depth += 1
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is not None:
                self._visit(default)
        for stmt in node.body:
            self._visit(stmt)
        self._func_depth -= 1
        self._scope.pop()

        if outermost:
            self._func = None
            self._locals = set()

    def _function_info(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> FunctionInfo:
        args = node.args
        params = [
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        ctx_param = _find_ctx_param(args)
        return FunctionInfo(
            qualname=qualname,
            lineno=node.lineno,
            col=node.col_offset + 1,
            params=params,
            ctx_param=ctx_param,
        )

    # -- classes -------------------------------------------------------

    def _handle_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, lineno=node.lineno)
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                info.bases.append(name)
        registered = not self._scope and self._func is None
        if registered:
            self.summary.classes[node.name] = info

        self._scope.append(node.name)
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.fields.append(stmt.target.id)
                if (
                    stmt.target.id == "kind"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    info.kind_literal = stmt.value.value
                if stmt.value is not None:
                    self._visit(stmt.value)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "kind"
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)
                    ):
                        info.kind_literal = stmt.value.value
                self._visit(stmt.value)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(
                    dotted_name(dec) in ("property", "functools.cached_property")
                    or (
                        isinstance(dec, ast.Attribute)
                        and dec.attr == "cached_property"
                    )
                    for dec in stmt.decorator_list
                ):
                    info.properties.append(stmt.name)
                was_func, was_locals = self._func, self._locals
                self._func = None  # methods get their own FunctionInfo
                method = self._function_info(
                    stmt, ".".join([*self._scope, stmt.name])
                )
                self._func = method
                self._locals = _local_names(stmt)
                self._scope.append(stmt.name)
                self._func_depth += 1
                for body_stmt in stmt.body:
                    self._visit(body_stmt)
                self._func_depth -= 1
                self._scope.pop()
                self._func, self._locals = was_func, was_locals
                info.methods[stmt.name] = method
                if registered:
                    self.all_functions.append((method, stmt))
                if method.ctx_param is not None:
                    self.ctx_functions.append((method, stmt))
            else:
                self._visit(stmt)
        self._scope.pop()

    # -- expression-level facts ---------------------------------------

    def _handle_generic(self, node: ast.AST) -> None:
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            # The call's value is discarded; recorded before the child
            # visit reaches the Call itself.
            self._call_use[id(node.value)] = "stmt"
        if isinstance(node, ast.Lambda):
            # Lambda params are local while the body is scanned.
            for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
                self._locals.add(arg.arg)
        if isinstance(node, ast.Attribute):
            self._record_ctx_access(node)
        elif isinstance(node, ast.Call):
            self._record_call(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            self._record_assignment(node)
        elif isinstance(node, ast.List) and isinstance(node.ctx, ast.Load):
            self._record_stage_list(node)

    def _record_ctx_access(self, node: ast.Attribute) -> None:
        func = self._func
        if func is None or func.ctx_param is None:
            return
        if not (
            isinstance(node.value, ast.Name) and node.value.id == func.ctx_param
        ):
            return
        if isinstance(node.ctx, ast.Store):
            func.ctx_writes.setdefault(node.attr, node.lineno)
        else:
            func.ctx_reads.setdefault(node.attr, node.lineno)

    def _record_call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        func = self._func
        if name is not None and func is not None:
            func.call_sites.append(
                [
                    name,
                    node.lineno,
                    node.col_offset + 1,
                    self._call_use.get(id(node), ""),
                ]
            )
        if name is not None:
            if name == "parallel_map" or name.endswith(".parallel_map"):
                self._record_parallel_call(node)
            if is_global_rng_call(name) and func is not None:
                func.rng_calls.append(
                    RngCall(name, node.lineno, node.col_offset + 1, True)
                )
            if RNG_CONSTRUCTORS.match(name):
                if func is not None and not has_seed_argument(node):
                    func.rng_calls.append(
                        RngCall(name, node.lineno, node.col_offset + 1, False)
                    )
                self._record_rng_construction(node, name)
            # Mutator-method calls on names that are not function-local.
            if func is not None and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATOR_METHODS:
                    base = _base_name(node.func.value)
                    if base is not None and not self._is_local(base, func):
                        func.mutations.append([base, node.lineno])
        if func is not None and isinstance(node.func, ast.Name):
            if func.ctx_param is not None and any(
                isinstance(arg, ast.Name) and arg.id == func.ctx_param
                for arg in node.args
            ):
                func.ctx_calls.append(node.func.id)

    def _record_assignment(self, node: ast.Assign | ast.AugAssign) -> None:
        func = self._func
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            self._call_use[id(node.value)] = f"bound:{node.targets[0].id}"
        if func is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            for leaf in _assignment_leaves(target):
                if isinstance(leaf, (ast.Attribute, ast.Subscript)):
                    base = _base_name(leaf)
                    if base is None or self._is_local(base, func):
                        continue
                    if (
                        isinstance(leaf, ast.Attribute)
                        and func.ctx_param is not None
                        and base == func.ctx_param
                    ):
                        continue  # ctx writes are dataflow, not shared state
                    func.mutations.append([base, node.lineno])

    def _is_local(self, name: str, func: FunctionInfo) -> bool:
        if name in func.global_decls:
            return False
        return name in self._locals or name in func.params

    def _record_parallel_call(self, node: ast.Call) -> None:
        worker_expr: ast.expr | None = node.args[0] if node.args else None
        initializer_expr: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg == "fn" and worker_expr is None:
                worker_expr = keyword.value
            elif keyword.arg == "initializer":
                initializer_expr = keyword.value
        self.summary.parallel_calls.append(
            ParallelCall(
                lineno=node.lineno,
                col=node.col_offset + 1,
                scope=self._scope_name(),
                worker=self._callable_ref(worker_expr),
                initializer=self._callable_ref(initializer_expr),
            )
        )

    def _callable_ref(self, expr: ast.expr | None) -> CallableRef | None:
        if expr is None:
            return None
        name = dotted_name(expr)
        if name is not None:
            return CallableRef(kind="name", name=name)
        if isinstance(expr, ast.Lambda):
            return CallableRef(kind="inline", inline=self._lambda_info(expr))
        return CallableRef(kind="other")

    def _lambda_info(self, node: ast.Lambda) -> FunctionInfo:
        """Analyse an inline lambda as its own miniature function."""
        args = node.args
        params = [
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        info = FunctionInfo(
            qualname="<lambda>",
            lineno=node.lineno,
            col=node.col_offset + 1,
            params=params,
        )
        local = set(params)
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name is not None:
                    if is_global_rng_call(name):
                        info.rng_calls.append(
                            RngCall(name, sub.lineno, sub.col_offset + 1, True)
                        )
                    elif RNG_CONSTRUCTORS.match(name) and not has_seed_argument(sub):
                        info.rng_calls.append(
                            RngCall(name, sub.lineno, sub.col_offset + 1, False)
                        )
                if isinstance(sub.func, ast.Attribute):
                    if sub.func.attr in _MUTATOR_METHODS:
                        base = _base_name(sub.func.value)
                        if base is not None and base not in local:
                            info.mutations.append([base, sub.lineno])
        return info

    def _record_rng_construction(self, node: ast.Call, name: str) -> None:
        seed = seed_argument(node)
        if seed is None:
            seed_kind, seed_repr = "missing", ""
        elif isinstance(seed, ast.Constant):
            seed_kind = "none" if seed.value is None else "literal"
            seed_repr = repr(seed.value)
        elif isinstance(seed, ast.Name):
            seed_kind, seed_repr = "name", seed.id
        elif isinstance(seed, ast.Attribute):
            seed_kind = "attribute"
            seed_repr = dotted_name(seed) or seed.attr
        else:
            seed_kind, seed_repr = "expr", type(seed).__name__
        self.summary.rng_constructions.append(
            RngConstruction(
                name=name,
                lineno=node.lineno,
                col=node.col_offset + 1,
                seed_kind=seed_kind,
                seed_repr=seed_repr,
                scope=self._scope_name(),
            )
        )

    def _record_stage_list(self, node: ast.List) -> None:
        if len(node.elts) < 2:
            return
        elements: list[list[Any]] = []
        for element in node.elts:
            if not isinstance(element, ast.Call):
                return
            name = dotted_name(element.func)
            if name is None:
                return
            elements.append([name, element.lineno])
        self.summary.stage_lists.append(
            StageList(
                lineno=node.lineno,
                col=node.col_offset + 1,
                scope=self._scope_name(),
                elements=elements,
            )
        )


def _find_ctx_param(args: ast.arguments) -> str | None:
    """The parameter carrying a PipelineContext, if recognisable."""
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            annotation = arg.annotation
            name: str | None
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                name = annotation.value
            else:
                name = dotted_name(annotation)
            if name is not None and name.split(".")[-1] == "PipelineContext":
                return arg.arg
        if arg.arg == "ctx":
            return arg.arg
    return None


def _local_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound anywhere inside the function body (incl. nested defs).

    Used to separate in-place mutation of locals (fine) from mutation of
    enclosing/module state (flagged by RL103 for parallel workers).
    Including nested-def bindings errs on the permissive side.
    """
    names: set[str] = set()
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(sub.name)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            names.add(sub.name)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


def _base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _assignment_leaves(target: ast.expr) -> Iterator[ast.expr]:
    """Flatten tuple/list/starred assignment targets to leaf targets."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assignment_leaves(element)
    elif isinstance(target, ast.Starred):
        yield from _assignment_leaves(target.value)
    else:
        yield target


class _CtxMustWritten(DataflowAnalysis[frozenset[str]]):
    """Forward must-analysis: ctx attributes written on *every* path.

    Gen facts come from direct ``ctx.attr = ...`` stores and from calls
    to same-module helpers that (transitively) write ctx attributes.
    Join is intersection — a write only counts if no path avoids it —
    and exception edges carry the pre-state, because a raising statement
    never completes its store.
    """

    def __init__(
        self, ctx_name: str, helper_writes: Mapping[str, frozenset[str]]
    ) -> None:
        self.ctx_name = ctx_name
        self.helper_writes = helper_writes

    def boundary(self) -> frozenset[str]:
        return frozenset()

    def join(self, states: Sequence[frozenset[str]]) -> frozenset[str]:
        result = states[0]
        for state in states[1:]:
            result &= state
        return result

    def transfer(self, node: CFGNode, state: frozenset[str]) -> frozenset[str]:
        written = self._written(node)
        return state | written if written else state

    def transfer_exception(
        self, node: CFGNode, state: frozenset[str]
    ) -> frozenset[str]:
        return state

    def _written(self, node: CFGNode) -> frozenset[str]:
        written: set[str] = set()
        for part in evaluated(node):
            for sub in ast.walk(part):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.ctx, ast.Store)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == self.ctx_name
                ):
                    written.add(sub.attr)
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and any(
                        isinstance(arg, ast.Name) and arg.id == self.ctx_name
                        for arg in sub.args
                    )
                ):
                    written |= self.helper_writes.get(sub.func.id, frozenset())
        return frozenset(written)


def _transitive_ctx_writes(summary: ModuleSummary) -> dict[str, frozenset[str]]:
    """Per module-level function: ctx attrs it writes, helpers included."""
    writes: dict[str, set[str]] = {
        name: set(info.ctx_writes) for name, info in summary.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for name, info in summary.functions.items():
            for callee in info.ctx_calls:
                extra = writes.get(callee)
                if extra and not extra <= writes[name]:
                    writes[name] |= extra
                    changed = True
    return {name: frozenset(attrs) for name, attrs in writes.items()}


def _compute_ctx_maybe_unset(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    ctx_name: str,
    helper_writes: Mapping[str, frozenset[str]],
) -> dict[str, int]:
    """Attr -> first line of a ctx read not preceded by a write on every path."""
    graph = build_cfg(node)
    states = solve(graph, _CtxMustWritten(ctx_name, helper_writes))
    analysis = _CtxMustWritten(ctx_name, helper_writes)
    result: dict[str, int] = {}
    for index, state in states.items():
        cfg_node = graph.nodes[index]
        # Self-initialising statements (``ctx.x = fill(ctx.x)``) write the
        # attr they read; the read is then deliberate, not a gap.
        own_writes = analysis._written(cfg_node)
        for part in evaluated(cfg_node):
            for sub in ast.walk(part):
                if not (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.ctx, ast.Load)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == ctx_name
                ):
                    continue
                attr = sub.attr
                if attr in state or attr in own_writes:
                    continue
                line = sub.lineno
                if attr not in result or line < result[attr]:
                    result[attr] = line
    return result


def extract_module(
    name: str,
    path: str,
    tree: ast.Module,
    *,
    protocols: ProtocolConfig | None = None,
) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed module.

    After the single-pass walk, a flow-sensitive post-pass computes
    :attr:`FunctionInfo.ctx_maybe_unset` for every ctx-taking function:
    a CFG per function, a must-written fixpoint over it, and a scan of
    the reachable reads against the per-statement states.  A second
    post-pass (:func:`repro.analysis.summaries.augment_function`) adds
    the phase-4 procedure summaries; its protocol-scoped fields
    (``call_orders``, ``receivers``) are only recorded for modules an
    ordering/typestate contract covers, which is cache-safe because the
    config fingerprint covers the protocol table.
    """
    is_package = Path(path).name == "__init__.py"
    extractor = _Extractor(name, path, is_package)
    summary = extractor.run(tree)
    helper_writes = _transitive_ctx_writes(summary)
    for info, def_node in extractor.ctx_functions:
        assert info.ctx_param is not None
        info.ctx_maybe_unset = _compute_ctx_maybe_unset(
            def_node, info.ctx_param, helper_writes
        )
    record_orders = protocols is not None and protocols.order_scoped(name)
    record_receivers = protocols is not None and protocols.typestate_scoped(name)
    for info, def_node in extractor.all_functions:
        augment_function(
            info,
            def_node,
            record_orders=record_orders,
            record_receivers=record_receivers,
        )
    return summary


@dataclass
class ProjectModel:
    """Phase-1 output: every module summary, with resolution helpers."""

    modules: dict[str, ModuleSummary] = field(default_factory=dict)

    @classmethod
    def from_summaries(cls, summaries: Iterable[ModuleSummary]) -> "ProjectModel":
        model = cls()
        for summary in summaries:
            model.modules[summary.name] = summary
        return model

    def resolved_edges(
        self, kinds: Sequence[str] = ("module",)
    ) -> Iterator[tuple[str, str, ImportRecord]]:
        """Yield (source module, target module, record) import edges.

        Only edges whose target is a module in the model are yielded;
        guessed submodule records count only when they name a real
        module.  External imports (numpy, stdlib) never appear.
        """
        for name, summary in self.modules.items():
            for record in summary.imports:
                if record.kind not in kinds:
                    continue
                if record.target in self.modules:
                    yield name, record.target, record

    def resolve(self, module_name: str, name: str) -> str | None:
        """Resolve a source-level name in ``module_name`` to dotted form.

        Local classes/functions resolve to ``module.name``; imported
        names follow the module's bindings; dotted names resolve their
        first segment and keep the rest.
        """
        summary = self.modules.get(module_name)
        if summary is None:
            return None
        head, _, rest = name.partition(".")
        resolved: str | None = None
        if head in summary.classes or head in summary.functions:
            resolved = f"{module_name}.{head}"
        elif head in summary.bindings:
            resolved = summary.bindings[head]
        if resolved is None:
            return None
        return f"{resolved}.{rest}" if rest else resolved

    def find_class(self, dotted: str) -> tuple[ModuleSummary, ClassInfo] | None:
        """Look up ``pkg.module.Class`` by longest module-name prefix."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            summary = self.modules.get(module)
            if summary is None:
                continue
            if len(parts) - split == 1:
                info = summary.classes.get(parts[split])
                if info is not None:
                    return summary, info
            # A longer prefix matched a module but the remainder is not a
            # plain class name -- keep trying shorter prefixes.
        return None

    def resolve_class(
        self, module_name: str, source_name: str
    ) -> tuple[ModuleSummary, ClassInfo] | None:
        """Resolve a class reference as written in ``module_name``."""
        dotted = self.resolve(module_name, source_name)
        if dotted is None:
            return None
        found = self.find_class(dotted)
        if found is not None:
            return found
        # ``from x import Y`` where Y is re-exported: chase one binding hop.
        head, _, rest = dotted.rpartition(".")
        summary = self.modules.get(head)
        if summary is not None and rest in summary.bindings:
            return self.find_class(summary.bindings[rest])
        return None

    def base_chain(
        self, module_name: str, class_name: str, limit: int = 32
    ) -> Iterator[tuple[ModuleSummary, ClassInfo]]:
        """Walk a class's base-class chain through the model (MRO-ish).

        Yields (module, class) pairs starting at the class itself,
        following first resolvable bases breadth-first, stopping at
        classes outside the model.
        """
        start = self.modules.get(module_name)
        if start is None:
            return
        info = start.classes.get(class_name)
        if info is None:
            return
        queue: list[tuple[ModuleSummary, ClassInfo]] = [(start, info)]
        seen: set[tuple[str, str]] = set()
        while queue and limit:
            limit -= 1
            summary, current = queue.pop(0)
            key = (summary.name, current.name)
            if key in seen:
                continue
            seen.add(key)
            yield summary, current
            for base in current.bases:
                resolved = self.resolve_class(summary.name, base)
                if resolved is not None:
                    queue.append(resolved)
