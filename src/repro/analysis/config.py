"""Configuration for reprolint: ``[tool.reprolint]`` in ``pyproject.toml``.

Recognised keys::

    [tool.reprolint]
    select = ["RL001", "RL002"]        # only these rules (default: all)
    ignore = ["RL006"]                 # drop these rules
    exclude = ["build/*"]              # path globs skipped entirely

    [tool.reprolint.rules.RL003]
    include = ["core/sizing.py", "hamming/*"]   # restrict rule to paths
    [tool.reprolint.rules.RL006]
    exclude = ["evaluation/reporting.py"]       # skip rule on paths

Patterns are :mod:`fnmatch` globs matched against the posix form of the
file path; a pattern also matches when it matches a path suffix, so
``core/sizing.py`` matches ``src/repro/core/sizing.py``.  CLI flags
(``--select``/``--ignore``) override ``select``/``ignore`` from the file.
"""

from __future__ import annotations

import tomllib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.engine import Rule


def _matches(path: str, patterns: Iterable[str]) -> bool:
    posix = Path(path).as_posix()
    for pattern in patterns:
        if fnmatch(posix, pattern) or fnmatch(posix, f"*/{pattern}"):
            return True
    return False


@dataclass(frozen=True)
class RuleConfig:
    """Per-rule path scoping from ``[tool.reprolint.rules.RLxxx]``."""

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()


@dataclass(frozen=True)
class LintConfig:
    """Resolved reprolint configuration."""

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    rule_configs: dict[str, RuleConfig] = field(default_factory=dict)

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def path_excluded(self, path: str) -> bool:
        return _matches(path, self.exclude)

    def rule_applies(self, rule: "Rule", path: str) -> bool:
        """Does ``rule`` run on ``path``, honouring include/exclude scoping?"""
        rule_cfg = self.rule_configs.get(rule.rule_id, RuleConfig())
        include = rule_cfg.include or rule.default_include
        if include and not _matches(path, include):
            return False
        if _matches(path, rule.default_exclude):
            return False
        return not _matches(path, rule_cfg.exclude)

    def with_overrides(
        self,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
    ) -> "LintConfig":
        return LintConfig(
            select=tuple(select) if select else self.select,
            ignore=tuple(ignore) if ignore is not None and ignore else self.ignore,
            exclude=self.exclude,
            rule_configs=dict(self.rule_configs),
        )


def find_pyproject(start: Path | None = None) -> Path | None:
    """Walk up from ``start`` (default cwd) looking for ``pyproject.toml``."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Load ``[tool.reprolint]``; missing file or table yields defaults."""
    if pyproject is None:
        pyproject = find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("reprolint", {})
    rule_configs: dict[str, RuleConfig] = {}
    for rule_id, entry in table.get("rules", {}).items():
        rule_configs[rule_id] = RuleConfig(
            include=tuple(entry.get("include", ())),
            exclude=tuple(entry.get("exclude", ())),
        )
    return LintConfig(
        select=tuple(table.get("select", ())),
        ignore=tuple(table.get("ignore", ())),
        exclude=tuple(table.get("exclude", ())),
        rule_configs=rule_configs,
    )
