"""Configuration for reprolint: ``[tool.reprolint]`` in ``pyproject.toml``.

Recognised keys::

    [tool.reprolint]
    select = ["RL001", "RL002"]        # only these rules (default: all)
    ignore = ["RL006"]                 # drop these rules
    exclude = ["build/*"]              # path globs skipped entirely

    [tool.reprolint.rules.RL003]
    include = ["core/sizing.py", "hamming/*"]   # restrict rule to paths
    [tool.reprolint.rules.RL006]
    exclude = ["evaluation/reporting.py"]       # skip rule on paths
    [tool.reprolint.rules.RL104]
    severity = "warn"                           # downgrade from error

    [tool.reprolint.architecture]               # RL102 contract
    leaf = ["repro.perf", "repro.pipeline"]     # import-leaf packages
    [tool.reprolint.architecture.allowed]       # allowed module-level edges
    "repro.core" = ["repro.hamming", "repro.text"]

Patterns are :mod:`fnmatch` globs matched against the posix form of the
file path; a pattern also matches when it matches a path suffix, so
``core/sizing.py`` matches ``src/repro/core/sizing.py``.  CLI flags
(``--select``/``--ignore``) override ``select``/``ignore`` from the file.
"""

from __future__ import annotations

import tomllib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Protocol


class ScopedRule(Protocol):
    """What path scoping needs from a rule (per-file or whole-program)."""

    rule_id: str
    default_include: tuple[str, ...]
    default_exclude: tuple[str, ...]


def _matches(path: str, patterns: Iterable[str]) -> bool:
    posix = Path(path).as_posix()
    name = posix.rsplit("/", 1)[-1]
    for pattern in patterns:
        if "/" in pattern:
            # Directory-qualified patterns are suffix-matched anywhere in
            # the path ("tests/*" hits "repo/tests/x.py").
            if fnmatch(posix, pattern) or fnmatch(posix, f"*/{pattern}"):
                return True
        # Bare patterns name *files* ("test_*.py", "conftest.py") -- match
        # the basename only, lest fnmatch's slash-crossing `*` swallow
        # everything nested under e.g. a test_* directory.
        elif fnmatch(name, pattern):
            return True
    return False


@dataclass(frozen=True)
class RuleConfig:
    """Per-rule options from ``[tool.reprolint.rules.RLxxx]``."""

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    #: "error" or "warn"; None keeps the rule's default severity.
    severity: str | None = None


@dataclass(frozen=True)
class ArchitectureConfig:
    """The layering contract from ``[tool.reprolint.architecture]``.

    ``allowed`` maps a package unit (first two dotted segments, or the
    bare module name for top-level modules) to the units its modules may
    import at module level.  ``leaf`` lists import-leaf units whose
    allowed edges may only reach other leaves.  When the table is absent
    (``present`` False) RL102 skips silently.
    """

    leaf: tuple[str, ...] = ()
    allowed: dict[str, tuple[str, ...]] = field(default_factory=dict)
    present: bool = False


@dataclass(frozen=True)
class LintConfig:
    """Resolved reprolint configuration."""

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    rule_configs: dict[str, RuleConfig] = field(default_factory=dict)
    architecture: ArchitectureConfig = field(default_factory=ArchitectureConfig)

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def path_excluded(self, path: str) -> bool:
        return _matches(path, self.exclude)

    def rule_applies(self, rule: ScopedRule, path: str) -> bool:
        """Does ``rule`` run on ``path``, honouring include/exclude scoping?"""
        rule_cfg = self.rule_configs.get(rule.rule_id, RuleConfig())
        include = rule_cfg.include or rule.default_include
        if include and not _matches(path, include):
            return False
        if _matches(path, rule.default_exclude):
            return False
        return not _matches(path, rule_cfg.exclude)

    def severity_for(self, rule_id: str, default: str = "error") -> str:
        """Effective severity of a rule: config override or its default."""
        rule_cfg = self.rule_configs.get(rule_id)
        if rule_cfg is not None and rule_cfg.severity is not None:
            return rule_cfg.severity
        return default

    def with_overrides(
        self,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
    ) -> "LintConfig":
        return LintConfig(
            select=tuple(select) if select else self.select,
            ignore=tuple(ignore) if ignore is not None and ignore else self.ignore,
            exclude=self.exclude,
            rule_configs=dict(self.rule_configs),
            architecture=self.architecture,
        )


def find_pyproject(start: Path | None = None) -> Path | None:
    """Walk up from ``start`` (default cwd) looking for ``pyproject.toml``."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _normalise_severity(raw: object) -> str | None:
    if raw in ("error",):
        return "error"
    if raw in ("warn", "warning"):
        return "warn"
    return None


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Load ``[tool.reprolint]``; missing file or table yields defaults."""
    if pyproject is None:
        pyproject = find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("reprolint", {})
    rule_configs: dict[str, RuleConfig] = {}
    for rule_id, entry in table.get("rules", {}).items():
        rule_configs[rule_id] = RuleConfig(
            include=tuple(entry.get("include", ())),
            exclude=tuple(entry.get("exclude", ())),
            severity=_normalise_severity(entry.get("severity")),
        )
    arch_table = table.get("architecture", {})
    architecture = ArchitectureConfig(
        leaf=tuple(arch_table.get("leaf", ())),
        allowed={
            unit: tuple(targets)
            for unit, targets in arch_table.get("allowed", {}).items()
        },
        present=bool(arch_table),
    )
    return LintConfig(
        select=tuple(table.get("select", ())),
        ignore=tuple(table.get("ignore", ())),
        exclude=tuple(table.get("exclude", ())),
        rule_configs=rule_configs,
        architecture=architecture,
    )
