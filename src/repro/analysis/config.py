"""Configuration for reprolint: ``[tool.reprolint]`` in ``pyproject.toml``.

Recognised keys::

    [tool.reprolint]
    select = ["RL001", "RL2*"]         # only these rules (default: all);
    ignore = ["RL006", "RL3*"]         # drop these rules; globs allowed
    exclude = ["build/*"]              # path globs skipped entirely
    warn-unused-suppressions = true    # RL007: stale disable= comments

    [tool.reprolint.rules.RL003]
    include = ["core/sizing.py", "hamming/*"]   # restrict rule to paths
    [tool.reprolint.rules.RL006]
    exclude = ["evaluation/reporting.py"]       # skip rule on paths
    [tool.reprolint.rules.RL104]
    severity = "warn"                           # downgrade from error

    [tool.reprolint.architecture]               # RL102 contract
    leaf = ["repro.perf", "repro.pipeline"]     # import-leaf packages
    [tool.reprolint.architecture.allowed]       # allowed module-level edges
    "repro.core" = ["repro.hamming", "repro.text"]

    [tool.reprolint.protocols.events]           # named call-pattern sets
    fsync = ["os.fsync"]
    publish = ["os.replace", "os.rename"]

    [[tool.reprolint.protocols.order]]          # RL301 ordering contract
    anchor = "publish"                          # sites the contract anchors on
    before = "fsync"                            # event required on every path in
    after = "fsync"                             # event required on every success path out
    modules = ["repro.core.persist"]            # module-name globs checked

    [[tool.reprolint.protocols.require]]        # RL302 durability contract
    event = "fsync"                             # event required on every success path
    functions = ["repro.wal.segment.SegmentWriter.sync"]

    [[tool.reprolint.protocols.typestate]]      # RL303 lifecycle contract
    create = ["*.from_bundle"]                  # constructors starting a trace
    final = ["close"]                           # methods ending the object's life
    forbidden = ["ingest", "compact"]           # methods illegal after a final
    modules = ["repro.cli", "repro.serve.*"]

Patterns are :mod:`fnmatch` globs matched against the posix form of the
file path; a pattern also matches when it matches a path suffix, so
``core/sizing.py`` matches ``src/repro/core/sizing.py``.  CLI flags
(``--select``/``--ignore``) override ``select``/``ignore`` from the file.
``select``/``ignore`` entries may be rule-id globs (``RL2*``).
"""

from __future__ import annotations

import tomllib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Protocol


class ScopedRule(Protocol):
    """What path scoping needs from a rule (per-file or whole-program)."""

    rule_id: str
    default_include: tuple[str, ...]
    default_exclude: tuple[str, ...]


def _matches(path: str, patterns: Iterable[str]) -> bool:
    posix = Path(path).as_posix()
    name = posix.rsplit("/", 1)[-1]
    for pattern in patterns:
        if "/" in pattern:
            # Directory-qualified patterns are suffix-matched anywhere in
            # the path ("tests/*" hits "repo/tests/x.py").
            if fnmatch(posix, pattern) or fnmatch(posix, f"*/{pattern}"):
                return True
        # Bare patterns name *files* ("test_*.py", "conftest.py") -- match
        # the basename only, lest fnmatch's slash-crossing `*` swallow
        # everything nested under e.g. a test_* directory.
        elif fnmatch(name, pattern):
            return True
    return False


@dataclass(frozen=True)
class RuleConfig:
    """Per-rule options from ``[tool.reprolint.rules.RLxxx]``."""

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    #: "error" or "warn"; None keeps the rule's default severity.
    severity: str | None = None


@dataclass(frozen=True)
class ArchitectureConfig:
    """The layering contract from ``[tool.reprolint.architecture]``.

    ``allowed`` maps a package unit (first two dotted segments, or the
    bare module name for top-level modules) to the units its modules may
    import at module level.  ``leaf`` lists import-leaf units whose
    allowed edges may only reach other leaves.  When the table is absent
    (``present`` False) RL102 skips silently.
    """

    leaf: tuple[str, ...] = ()
    allowed: dict[str, tuple[str, ...]] = field(default_factory=dict)
    present: bool = False


def _module_matches(module_name: str, patterns: Iterable[str]) -> bool:
    """fnmatch a dotted module name against protocol ``modules`` globs."""
    return any(fnmatch(module_name, pattern) for pattern in patterns)


@dataclass(frozen=True)
class OrderProtocol:
    """One ``[[tool.reprolint.protocols.order]]`` entry (checked by RL301).

    At every call site matching the ``anchor`` event inside a scoped
    module, the ``before`` event (when set) must have occurred on every
    path reaching the site, and the ``after`` event (when set) must
    occur on every normal path from the site to function exit --
    directly or through a callee that may emit it.
    """

    anchor: str
    before: str = ""
    after: str = ""
    modules: tuple[str, ...] = ()
    message: str = ""

    def scoped(self, module_name: str) -> bool:
        return _module_matches(module_name, self.modules)


@dataclass(frozen=True)
class RequireProtocol:
    """One ``[[tool.reprolint.protocols.require]]`` entry (checked by RL302).

    Each listed function (fully dotted, ``module.func`` or
    ``module.Class.method``) must emit ``event`` on every path that
    reaches a normal return -- directly or through a callee that must
    emit it.
    """

    event: str
    functions: tuple[str, ...] = ()
    message: str = ""


@dataclass(frozen=True)
class TypestateProtocol:
    """One ``[[tool.reprolint.protocols.typestate]]`` entry (RL303).

    A local bound from a call matching a ``create`` pattern is traced;
    once a ``final`` method may have been called on it, calling any
    ``forbidden`` method is an error (use-after-close).
    """

    create: tuple[str, ...] = ()
    final: tuple[str, ...] = ()
    forbidden: tuple[str, ...] = ()
    modules: tuple[str, ...] = ()
    message: str = ""

    def scoped(self, module_name: str) -> bool:
        return _module_matches(module_name, self.modules)


@dataclass(frozen=True)
class ProtocolConfig:
    """The declarative protocol table from ``[tool.reprolint.protocols]``."""

    events: dict[str, tuple[str, ...]] = field(default_factory=dict)
    orders: tuple[OrderProtocol, ...] = ()
    requires: tuple[RequireProtocol, ...] = ()
    typestates: tuple[TypestateProtocol, ...] = ()
    present: bool = False

    def order_scoped(self, module_name: str) -> bool:
        """Is any ordering contract in force for ``module_name``?"""
        return any(order.scoped(module_name) for order in self.orders)

    def typestate_scoped(self, module_name: str) -> bool:
        """Is any typestate contract in force for ``module_name``?"""
        return any(ts.scoped(module_name) for ts in self.typestates)


def _id_matches(rule_id: str, patterns: Iterable[str]) -> bool:
    """Exact id or ``RL2*``-style glob membership."""
    return any(
        rule_id == pattern or ("*" in pattern and fnmatch(rule_id, pattern))
        for pattern in patterns
    )


@dataclass(frozen=True)
class LintConfig:
    """Resolved reprolint configuration."""

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    rule_configs: dict[str, RuleConfig] = field(default_factory=dict)
    architecture: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    protocols: ProtocolConfig = field(default_factory=ProtocolConfig)
    warn_unused_suppressions: bool = False

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and not _id_matches(rule_id, self.select):
            return False
        return not _id_matches(rule_id, self.ignore)

    def path_excluded(self, path: str) -> bool:
        return _matches(path, self.exclude)

    def rule_applies(self, rule: ScopedRule, path: str) -> bool:
        """Does ``rule`` run on ``path``, honouring include/exclude scoping?"""
        rule_cfg = self.rule_configs.get(rule.rule_id, RuleConfig())
        include = rule_cfg.include or rule.default_include
        if include and not _matches(path, include):
            return False
        if _matches(path, rule.default_exclude):
            return False
        return not _matches(path, rule_cfg.exclude)

    def severity_for(self, rule_id: str, default: str = "error") -> str:
        """Effective severity of a rule: config override or its default."""
        rule_cfg = self.rule_configs.get(rule_id)
        if rule_cfg is not None and rule_cfg.severity is not None:
            return rule_cfg.severity
        return default

    def with_overrides(
        self,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
        warn_unused_suppressions: bool | None = None,
    ) -> "LintConfig":
        return LintConfig(
            select=tuple(select) if select else self.select,
            ignore=tuple(ignore) if ignore is not None and ignore else self.ignore,
            exclude=self.exclude,
            rule_configs=dict(self.rule_configs),
            architecture=self.architecture,
            protocols=self.protocols,
            warn_unused_suppressions=(
                self.warn_unused_suppressions
                if warn_unused_suppressions is None
                else warn_unused_suppressions
            ),
        )


def find_pyproject(start: Path | None = None) -> Path | None:
    """Walk up from ``start`` (default cwd) looking for ``pyproject.toml``."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _str_tuple(raw: object) -> tuple[str, ...]:
    if isinstance(raw, str):
        return (raw,)
    if isinstance(raw, (list, tuple)):
        return tuple(str(item) for item in raw)
    return ()


def _parse_protocols(table: dict[str, object]) -> ProtocolConfig:
    """Build a :class:`ProtocolConfig` from ``[tool.reprolint.protocols]``."""
    if not table:
        return ProtocolConfig()
    events_raw = table.get("events", {})
    events = (
        {name: _str_tuple(patterns) for name, patterns in events_raw.items()}
        if isinstance(events_raw, dict)
        else {}
    )
    orders = []
    for entry in table.get("order", ()) or ():
        if isinstance(entry, dict) and entry.get("anchor"):
            orders.append(
                OrderProtocol(
                    anchor=str(entry["anchor"]),
                    before=str(entry.get("before", "")),
                    after=str(entry.get("after", "")),
                    modules=_str_tuple(entry.get("modules", ())),
                    message=str(entry.get("message", "")),
                )
            )
    requires = []
    for entry in table.get("require", ()) or ():
        if isinstance(entry, dict) and entry.get("event"):
            requires.append(
                RequireProtocol(
                    event=str(entry["event"]),
                    functions=_str_tuple(entry.get("functions", ())),
                    message=str(entry.get("message", "")),
                )
            )
    typestates = []
    for entry in table.get("typestate", ()) or ():
        if isinstance(entry, dict):
            typestates.append(
                TypestateProtocol(
                    create=_str_tuple(entry.get("create", ())),
                    final=_str_tuple(entry.get("final", ())),
                    forbidden=_str_tuple(entry.get("forbidden", ())),
                    modules=_str_tuple(entry.get("modules", ())),
                    message=str(entry.get("message", "")),
                )
            )
    return ProtocolConfig(
        events=events,
        orders=tuple(orders),
        requires=tuple(requires),
        typestates=tuple(typestates),
        present=True,
    )


def _normalise_severity(raw: object) -> str | None:
    if raw in ("error",):
        return "error"
    if raw in ("warn", "warning"):
        return "warn"
    return None


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Load ``[tool.reprolint]``; missing file or table yields defaults."""
    if pyproject is None:
        pyproject = find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("reprolint", {})
    rule_configs: dict[str, RuleConfig] = {}
    for rule_id, entry in table.get("rules", {}).items():
        rule_configs[rule_id] = RuleConfig(
            include=tuple(entry.get("include", ())),
            exclude=tuple(entry.get("exclude", ())),
            severity=_normalise_severity(entry.get("severity")),
        )
    arch_table = table.get("architecture", {})
    architecture = ArchitectureConfig(
        leaf=tuple(arch_table.get("leaf", ())),
        allowed={
            unit: tuple(targets)
            for unit, targets in arch_table.get("allowed", {}).items()
        },
        present=bool(arch_table),
    )
    protocols_table = table.get("protocols", {})
    protocols = _parse_protocols(
        protocols_table if isinstance(protocols_table, dict) else {}
    )
    return LintConfig(
        select=tuple(table.get("select", ())),
        ignore=tuple(table.get("ignore", ())),
        exclude=tuple(table.get("exclude", ())),
        rule_configs=rule_configs,
        architecture=architecture,
        protocols=protocols,
        warn_unused_suppressions=bool(
            table.get(
                "warn-unused-suppressions",
                table.get("warn_unused_suppressions", False),
            )
        ),
    )
