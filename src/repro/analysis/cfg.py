"""Intraprocedural control-flow graphs for flow-sensitive lint rules.

The per-file rules (RL001-RL006) and whole-program rules (RL101-RL105)
are flow-*insensitive*: they see that a function opens a handle or
writes a ``PipelineContext`` attribute, but not *on which paths*.  The
phase-3 rules (RL201+) need exactly that — a handle closed in one branch
but leaked in the other, a dtype that promotes halfway through a kernel,
a ``ctx`` read that only some paths precede with a write — so this
module lowers one function body at a time into a small CFG.

Design notes:

* **One statement per node.**  Functions in this tree are short; the
  precision of per-statement states is worth more than basic-block
  compaction.  Compound statements contribute a *header* node (the
  ``if``/``while`` test, the ``for`` iterable, the ``with`` items) and
  their bodies are lowered recursively; :func:`evaluated` returns the
  expressions a node actually evaluates so analyses never double-count
  a body through its header.
* **Exception edges are first-class.**  Any statement that may raise
  (it contains a call, a subscript, an ``await``, or is a
  ``raise``/``assert``/import) gets an ``"exception"`` edge to the
  innermost enclosing handler, or to the synthetic ``raise_exit`` node
  when the exception would leave the function.  Resource-lifetime and
  must-write analyses are sound on error paths because of these edges.
* **``finally`` bodies are duplicated per continuation.**  A ``finally``
  runs on the normal path, on every exception path and on every abrupt
  exit (``return``/``break``/``continue``) crossing it; each such path
  gets its own copy of the finally subgraph so states never merge
  continuations that Python keeps separate.  The same AST statement may
  therefore back several nodes.
* **Nested ``def``/``class`` bodies are opaque.**  A nested definition
  is a single (non-raising) statement node; its body belongs to its own
  CFG, built separately by the engine.

Everything here is pure stdlib ``ast``; the module sits below the rule
layer so both the engine (phase 3) and the model extractor
(:mod:`repro.analysis.project`, for flow-sensitive ``ctx`` facts) can
build graphs without import cycles.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence
from dataclasses import dataclass, field

#: Edge kinds: ``"normal"`` control flow vs an ``"exception"`` unwind.
NORMAL = "normal"
EXCEPTION = "exception"

#: Exception types broad enough to catch anything (for dispatch edges).
_CATCH_ALL = frozenset({"BaseException", "Exception"})

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

_TRY_TYPES: tuple[type[ast.stmt], ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # 3.11+
    _TRY_TYPES = (ast.Try, ast.TryStar)


@dataclass
class CFGNode:
    """One node of the graph: a statement, a header, or a synthetic mark.

    ``label`` is ``"entry"``/``"exit"``/``"raise-exit"`` for the three
    synthetic boundary nodes, ``"stmt"`` for simple statements,
    ``"branch"``/``"loop"``/``"with"``/``"try"`` for compound-statement
    headers, ``"except"`` for a handler entry and ``"except-dispatch"``
    for the synthetic fan-out to a ``try``'s handlers.
    """

    index: int
    stmt: ast.AST | None
    label: str
    succs: list[tuple[int, str]] = field(default_factory=list)
    preds: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class CFG:
    """The control-flow graph of one function body."""

    nodes: list[CFGNode]
    entry: int
    exit: int
    raise_exit: int

    def reachable(self) -> set[int]:
        """Node indices reachable from the entry node."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ, _ in self.nodes[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


def evaluated(node: CFGNode) -> tuple[ast.AST, ...]:
    """The AST fragments a node actually evaluates.

    For a simple statement that is the whole statement (targets
    included); for a compound header only its test/iterable/items —
    never the body, whose statements carry their own nodes.  Nested
    ``def``/``class`` statements evaluate nothing here (their bodies are
    separate CFGs and their headers are out of scope for our rules).
    """
    stmt = node.stmt
    if stmt is None:
        return ()
    if isinstance(stmt, (*_FUNC_DEFS, ast.ClassDef)):
        return ()
    if isinstance(stmt, ast.If):
        return (stmt.test,)
    if isinstance(stmt, ast.While):
        return (stmt.test,)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return (stmt.iter, stmt.target)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        parts: list[ast.AST] = []
        for item in stmt.items:
            parts.append(item.context_expr)
            if item.optional_vars is not None:
                parts.append(item.optional_vars)
        return tuple(parts)
    if isinstance(stmt, _TRY_TYPES):
        return ()
    if isinstance(stmt, ast.Match):
        return (stmt.subject,)
    if isinstance(stmt, ast.ExceptHandler):
        return ()
    return (stmt,)


def _expr_raises(node: ast.AST | None) -> bool:
    """May evaluating this fragment raise?  Calls, subscripts, awaits.

    Lambda and nested-definition bodies are not evaluated at the point
    of definition, so they are skipped.
    """
    if node is None:
        return False
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Call, ast.Subscript, ast.Await)):
            return True
        if isinstance(current, (ast.Lambda, *_FUNC_DEFS, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


def _stmt_raises(stmt: ast.stmt) -> bool:
    """May this *simple* statement raise when executed?"""
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        return True
    if isinstance(stmt, (*_FUNC_DEFS, ast.ClassDef)):
        return False  # body not executed; header effects are out of scope
    if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal, ast.Break, ast.Continue)):
        return False
    return _expr_raises(stmt)


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        names = list(handler.type.elts)
    else:
        names = [handler.type]
    for expr in names:
        tail = expr.attr if isinstance(expr, ast.Attribute) else None
        if isinstance(expr, ast.Name):
            tail = expr.id
        if tail in _CATCH_ALL:
            return True
    return False


@dataclass
class _LoopFrame:
    head: int
    breaks: list[int] = field(default_factory=list)


@dataclass
class _HandlerFrame:
    dispatch: int


@dataclass
class _FinallyFrame:
    body: list[ast.stmt]


_Frame = _LoopFrame | _HandlerFrame | _FinallyFrame


class _Builder:
    """Lower one function body to a :class:`CFG`."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.frames: list[_Frame] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise-exit")

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        frontier = self._stmts(list(body), [self.entry])
        self._connect(frontier, self.exit)
        return CFG(
            nodes=self.nodes,
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )

    # -- graph primitives ---------------------------------------------

    def _new(self, stmt: ast.AST | None, label: str) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(node)
        return node.index

    def _connect(self, frontier: Sequence[int], target: int, kind: str = NORMAL) -> None:
        for source in frontier:
            self.nodes[source].succs.append((target, kind))
            self.nodes[target].preds.append((source, kind))

    # -- statement lowering -------------------------------------------

    def _stmts(
        self, stmts: Sequence[ast.stmt], frontier: list[int], kind: str = NORMAL
    ) -> list[int]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier, kind)
            kind = NORMAL
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: list[int], kind: str) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, kind)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier, kind)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier, kind)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, frontier, kind)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier, kind)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier, kind)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier, kind)
        if isinstance(stmt, ast.Raise):
            node = self._new(stmt, "stmt")
            self._connect(frontier, node, kind)
            self._exception_edge(node)
            return []
        if isinstance(stmt, ast.Break):
            return self._break(stmt, frontier, kind)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, frontier, kind)
        if isinstance(stmt, ast.Assert):
            node = self._new(stmt, "stmt")
            self._connect(frontier, node, kind)
            self._exception_edge(node)  # the assertion may fail
            return [node]
        node = self._new(stmt, "stmt")
        self._connect(frontier, node, kind)
        if _stmt_raises(stmt):
            self._exception_edge(node)
        return [node]

    def _if(self, stmt: ast.If, frontier: list[int], kind: str) -> list[int]:
        test = self._new(stmt, "branch")
        self._connect(frontier, test, kind)
        if _expr_raises(stmt.test):
            self._exception_edge(test)
        out = self._stmts(stmt.body, [test])
        if stmt.orelse:
            out = out + self._stmts(stmt.orelse, [test])
        else:
            out = out + [test]
        return out

    def _while(self, stmt: ast.While, frontier: list[int], kind: str) -> list[int]:
        head = self._new(stmt, "loop")
        self._connect(frontier, head, kind)
        if _expr_raises(stmt.test):
            self._exception_edge(head)
        frame = _LoopFrame(head=head)
        self.frames.append(frame)
        body_out = self._stmts(stmt.body, [head])
        self.frames.pop()
        self._connect(body_out, head)  # back edge
        if isinstance(stmt.test, ast.Constant) and stmt.test.value:
            out: list[int] = []  # ``while True`` only falls out via break
        else:
            out = [head]
        if stmt.orelse and out:
            out = self._stmts(stmt.orelse, out)
        return out + frame.breaks

    def _for(self, stmt: ast.For | ast.AsyncFor, frontier: list[int], kind: str) -> list[int]:
        head = self._new(stmt, "loop")
        self._connect(frontier, head, kind)
        if _expr_raises(stmt.iter) or _expr_raises(stmt.target):
            self._exception_edge(head)
        frame = _LoopFrame(head=head)
        self.frames.append(frame)
        body_out = self._stmts(stmt.body, [head])
        self.frames.pop()
        self._connect(body_out, head)
        out = [head]
        if stmt.orelse:
            out = self._stmts(stmt.orelse, out)
        return out + frame.breaks

    def _with(self, stmt: ast.With | ast.AsyncWith, frontier: list[int], kind: str) -> list[int]:
        node = self._new(stmt, "with")
        self._connect(frontier, node, kind)
        if any(_expr_raises(item.context_expr) for item in stmt.items):
            self._exception_edge(node)  # entering a context manager may raise
        return self._stmts(stmt.body, [node])

    def _match(self, stmt: ast.Match, frontier: list[int], kind: str) -> list[int]:
        subject = self._new(stmt, "branch")
        self._connect(frontier, subject, kind)
        if _expr_raises(stmt.subject):
            self._exception_edge(subject)
        out: list[int] = []
        wildcard = False
        for case in stmt.cases:
            out += self._stmts(case.body, [subject])
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                wildcard = True
        if not wildcard:
            out.append(subject)  # no case matched: fall through
        return out

    def _try(self, stmt: ast.stmt, frontier: list[int], kind: str) -> list[int]:
        assert isinstance(stmt, _TRY_TYPES)
        entry = self._new(stmt, "try")
        self._connect(frontier, entry, kind)
        final_frame = _FinallyFrame(stmt.finalbody) if stmt.finalbody else None
        dispatch = self._new(None, "except-dispatch") if stmt.handlers else None

        if final_frame is not None:
            self.frames.append(final_frame)
        if dispatch is not None:
            self.frames.append(_HandlerFrame(dispatch))
        out = self._stmts(stmt.body, [entry])
        if dispatch is not None:
            self.frames.pop()  # handlers only guard the try body
        if stmt.orelse and out:
            out = self._stmts(stmt.orelse, out)

        caught_all = False
        if dispatch is not None:
            for handler in stmt.handlers:
                head = self._new(handler, "except")
                self._connect([dispatch], head)
                out += self._stmts(handler.body, [head])
                caught_all = caught_all or _is_catch_all(handler)
            if not caught_all:
                # An unmatched exception propagates past this try
                # (running its finally on the way out).
                self._exception_edge(dispatch)
        if final_frame is not None:
            self.frames.pop()
        if stmt.finalbody and out:
            out = self._stmts(stmt.finalbody, out)  # the normal-path copy
        return out

    # -- abrupt exits and unwinding -----------------------------------

    def _exception_edge(self, source: int) -> None:
        """Wire ``source`` to wherever an exception raised there lands.

        Walks the frame stack inward-out: pending ``finally`` bodies are
        copied onto the path, the innermost handler dispatch terminates
        it, and with no handler the path ends at ``raise_exit``.
        """
        frontier = [source]
        kind = EXCEPTION
        for depth in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[depth]
            if isinstance(frame, _HandlerFrame):
                self._connect(frontier, frame.dispatch, kind)
                return
            if isinstance(frame, _FinallyFrame):
                frontier, kind = self._finally_copy(frame, depth, frontier, kind)
                if not frontier:
                    return  # the finally itself diverges
        self._connect(frontier, self.raise_exit, kind)

    def _finally_copy(
        self, frame: _FinallyFrame, depth: int, frontier: list[int], kind: str
    ) -> tuple[list[int], str]:
        """Lower one copy of a finally body in its *outer* frame context."""
        saved = self.frames
        self.frames = list(saved[:depth])
        try:
            out = self._stmts(frame.body, frontier, kind)
        finally:
            self.frames = saved
        return out, NORMAL

    def _return(self, stmt: ast.Return, frontier: list[int], kind: str) -> list[int]:
        node = self._new(stmt, "stmt")
        self._connect(frontier, node, kind)
        if _expr_raises(stmt.value):
            self._exception_edge(node)
        out = [node]
        for depth in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[depth]
            if isinstance(frame, _FinallyFrame):
                out, _ = self._finally_copy(frame, depth, out, NORMAL)
                if not out:
                    return []
        self._connect(out, self.exit)
        return []

    def _break(self, stmt: ast.Break, frontier: list[int], kind: str) -> list[int]:
        node = self._new(stmt, "stmt")
        self._connect(frontier, node, kind)
        out = [node]
        for depth in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[depth]
            if isinstance(frame, _LoopFrame):
                frame.breaks.extend(out)
                return []
            if isinstance(frame, _FinallyFrame):
                out, _ = self._finally_copy(frame, depth, out, NORMAL)
                if not out:
                    return []
        self._connect(out, self.exit)  # malformed code; fail open
        return []

    def _continue(self, stmt: ast.Continue, frontier: list[int], kind: str) -> list[int]:
        node = self._new(stmt, "stmt")
        self._connect(frontier, node, kind)
        out = [node]
        for depth in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[depth]
            if isinstance(frame, _LoopFrame):
                self._connect(out, frame.head)
                return []
            if isinstance(frame, _FinallyFrame):
                out, _ = self._finally_copy(frame, depth, out, NORMAL)
                if not out:
                    return []
        self._connect(out, self.exit)
        return []


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function body."""
    return _Builder().build(node.body)
