"""Baseline files: adopt new rules without blocking on existing debt.

A baseline is a JSON file listing known findings.  ``repro lint
--write-baseline FILE`` records the current findings; later runs with
``--baseline FILE`` drop any finding matching a recorded
``(path, rule, message)`` triple, so only *new* violations fail CI.
Line numbers are deliberately not part of the match: unrelated edits
shift lines constantly, and a moved-but-unchanged finding is still the
same piece of accepted debt.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import Finding

#: Matching key for one accepted finding.
BaselineKey = tuple[str, str, str]


def baseline_key(finding: "Finding") -> BaselineKey:
    return (finding.path, finding.rule_id, finding.message)


def write_baseline(findings: Iterable["Finding"], path: Path) -> int:
    """Record ``findings`` as the accepted baseline; returns the count."""
    entries = sorted({baseline_key(finding) for finding in findings})
    payload = {
        "version": 1,
        "findings": [
            {"path": file_path, "rule": rule_id, "message": message}
            for file_path, rule_id, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: Path) -> set[BaselineKey]:
    """Read a baseline file; raises ``ValueError`` on a malformed file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: not a reprolint baseline file")
    keys: set[BaselineKey] = set()
    for entry in entries:
        keys.add((entry["path"], entry["rule"], entry["message"]))
    return keys


def apply_baseline(
    findings: Sequence["Finding"], baseline: set[BaselineKey]
) -> list["Finding"]:
    """Drop findings already accepted by the baseline."""
    return [f for f in findings if baseline_key(f) not in baseline]
