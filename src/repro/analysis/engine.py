"""Core of the reprolint framework: rules, findings, and the AST walk.

A :class:`Rule` declares the AST node types it wants to see
(``interests``) and implements :meth:`Rule.check_node`.  The
:class:`LintEngine` parses each file once, builds a shared
:class:`FileContext` (source lines, parent links, per-line
suppressions), then walks the tree a single time, fanning each node out
to every rule interested in its type.  This keeps a lint run O(nodes)
regardless of how many rules are registered.

Suppressions are comment-driven: a physical line containing
``# reprolint: disable=RL001`` (ids comma separated) silences those
rules for findings anchored to that line.  Comments are discovered with
:mod:`tokenize`, so the marker is never matched inside a string literal.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import LintConfig

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a file position."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class FileContext:
    """Per-file state shared by every rule during one walk.

    ``parents`` maps each AST node to its syntactic parent, letting rules
    ask questions like "is this ``def`` nested inside another function?"
    without each rule re-walking the tree.
    """

    path: str
    source: str
    tree: ast.Module
    lines: Sequence[str]
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "FileContext":
        ctx = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx.parents[child] = parent
        ctx.suppressions = _collect_suppressions(source)
        return ctx

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ancestors of ``node``, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def is_suppressed(self, finding: Finding) -> bool:
        disabled = self.suppressions.get(finding.line)
        return disabled is not None and finding.rule_id in disabled


def _collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map physical line number -> rule ids disabled on that line."""
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | ids
    except tokenize.TokenError:
        # A tokenize failure (unterminated string, etc.) surfaces later as
        # a parse error; suppression info is best-effort by then.
        pass
    return suppressions


class Rule:
    """Base class for reprolint rules (the plugin interface).

    Subclasses set ``rule_id``, ``summary`` and ``interests`` and
    implement :meth:`check_node`.  Registration is automatic via
    ``__init_subclass__``; importing a rule module is enough to make its
    rules available to the engine.
    """

    rule_id: str = ""
    summary: str = ""
    #: AST node types this rule wants to inspect.
    interests: tuple[type[ast.AST], ...] = ()
    #: Default path globs the rule is restricted to (empty = everywhere).
    default_include: tuple[str, ...] = ()
    #: Default path globs the rule never runs on (e.g. tests for RL001).
    default_exclude: tuple[str, ...] = ()

    _registry: dict[str, type["Rule"]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.rule_id:
            Rule._registry[cls.rule_id] = cls

    @classmethod
    def registered(cls) -> dict[str, type["Rule"]]:
        # Importing the rules package populates the registry.
        import repro.analysis.rules  # noqa: F401

        return dict(cls._registry)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def make_finding(
        self, node: ast.AST, ctx: FileContext, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


class LintEngine:
    """Run a set of rules over Python source files."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.rules: list[Rule] = [
            rule_cls()
            for rule_id, rule_cls in sorted(Rule.registered().items())
            if config.rule_enabled(rule_id)
        ]
        self._dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)

    def lint_source(self, path: str, source: str) -> list[Finding]:
        """Lint one in-memory module; ``path`` is used for reporting/config."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno or 1
            col = (exc.offset or 1)
            return [
                Finding(path, line, col, "RL000", f"syntax error: {exc.msg}")
            ]
        ctx = FileContext.build(path, source, tree)
        active = [
            rule for rule in self.rules if self.config.rule_applies(rule, path)
        ]
        if not active:
            return []
        dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in active:
            for node_type in rule.interests:
                dispatch.setdefault(node_type, []).append(rule)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                for finding in rule.check_node(node, ctx):
                    if not ctx.is_suppressed(finding):
                        findings.append(finding)
        return sorted(findings)

    def lint_file(self, path: Path) -> list[Finding]:
        source = path.read_text(encoding="utf-8")
        return self.lint_source(str(path), source)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> list[Finding]:
    """Lint files/directories and return all findings, sorted by position."""
    if config is None:
        from repro.analysis.config import load_config

        config = load_config()
    engine = LintEngine(config)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        if config.path_excluded(str(path)):
            continue
        findings.extend(engine.lint_file(path))
    return sorted(findings)
