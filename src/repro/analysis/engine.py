"""Core of the reprolint framework: rules, findings, and the three phases.

Per-file rules (:class:`Rule`) declare the AST node types they want to
see (``interests``) and implement :meth:`Rule.check_node`.  The
:class:`LintEngine` parses each file once, builds a shared
:class:`FileContext` (source lines, parent links, per-line
suppressions), then walks the tree a single time, fanning each node out
to every rule interested in its type.  This keeps a lint run O(nodes)
regardless of how many rules are registered.

Whole-program rules (:class:`ProjectRule`, RL101+) run in a second
phase: while each file is parsed, a
:class:`~repro.analysis.project.ModuleSummary` is extracted, the
summaries are assembled into a
:class:`~repro.analysis.project.ProjectModel`, and each project rule
checks the model as a whole.

Flow-sensitive rules (:class:`FlowRule`, RL201+) are the third phase:
for every function in a file the engine lowers the body to a control-
flow graph (:mod:`repro.analysis.cfg`) and hands graph + function +
context to each flow rule, which typically runs a fixpoint analysis
(:mod:`repro.analysis.dataflow`) over it.  Flow findings are produced
during the per-file pass, so they are cached per file exactly like
phase-1 findings and a warm run re-parses nothing.

Interprocedural rules (:class:`InterRule`, RL301+) are the fourth
phase: the engine assembles the summaries into a
:class:`~repro.analysis.callgraph.CallGraph`, wraps it with the
protocol table's effect closures in an :class:`InterContext`, and
checks each module against it.  Findings anchor in the module being
checked, so they cache *per module*, keyed by the summary digests of
the module's call-graph dependency closure — editing a callee
re-lints exactly its transitive callers.  All four phases flow through
the same severity, scoping, suppression and caching machinery, so a
cross-module or path-sensitive finding behaves exactly like a
per-file one.

Suppressions are comment-driven: a physical line containing
``# reprolint: disable=RL001`` (ids comma separated) silences those
rules for findings anchored to that line.  Comments are discovered with
:mod:`tokenize`, so the marker is never matched inside a string literal.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import time
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.cache import LintCache, content_hash
from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.config import LintConfig
from repro.analysis.project import ModuleSummary, ProjectModel, extract_module, module_name_for
from repro.analysis.summaries import EffectIndex

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")

#: Rule id of unused-suppression findings.  Synthesised by the engine
#: itself (no rule class): detection needs the used-suppression record
#: of every phase, which only the engine sees.
UNUSED_SUPPRESSION_ID = "RL007"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a file position."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


#: Canonical finding order for reports: position first, then rule id.
def finding_sort_key(finding: Finding) -> tuple[str, int, int, str, str]:
    return (
        finding.path,
        finding.line,
        finding.col,
        finding.rule_id,
        finding.message,
    )


@dataclass
class FileContext:
    """Per-file state shared by every rule during one walk.

    ``parents`` maps each AST node to its syntactic parent, letting rules
    ask questions like "is this ``def`` nested inside another function?"
    without each rule re-walking the tree.
    """

    path: str
    source: str
    tree: ast.Module
    lines: Sequence[str]
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "FileContext":
        ctx = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx.parents[child] = parent
        ctx.suppressions = _collect_suppressions(source)
        return ctx

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ancestors of ``node``, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def is_suppressed(self, finding: Finding) -> bool:
        disabled = self.suppressions.get(finding.line)
        return disabled is not None and finding.rule_id in disabled


def _collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map physical line number -> rule ids disabled on that line."""
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | ids
    except tokenize.TokenError:
        # A tokenize failure (unterminated string, etc.) surfaces later as
        # a parse error; suppression info is best-effort by then.
        pass
    return suppressions


def _group_used(used: set[tuple[int, str]]) -> dict[str, list[str]]:
    """Group silenced (line, rule id) pairs into summary layout."""
    grouped: dict[str, list[str]] = {}
    for line, rule_id in sorted(used):
        grouped.setdefault(str(line), []).append(rule_id)
    return grouped


class Rule:
    """Base class for per-file reprolint rules (the plugin interface).

    Subclasses set ``rule_id``, ``summary`` and ``interests`` and
    implement :meth:`check_node`.  Registration is automatic via
    ``__init_subclass__``; importing a rule module is enough to make its
    rules available to the engine.
    """

    rule_id: str = ""
    summary: str = ""
    #: AST node types this rule wants to inspect.
    interests: tuple[type[ast.AST], ...] = ()
    #: Default path globs the rule is restricted to (empty = everywhere).
    default_include: tuple[str, ...] = ()
    #: Default path globs the rule never runs on (e.g. tests for RL001).
    default_exclude: tuple[str, ...] = ()
    #: Severity findings carry unless the config overrides it.
    default_severity: str = "error"

    _registry: dict[str, type["Rule"]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.rule_id:
            Rule._registry[cls.rule_id] = cls

    @classmethod
    def registered(cls) -> dict[str, type["Rule"]]:
        # Importing the rules package populates the registry.
        import repro.analysis.rules  # noqa: F401

        return dict(cls._registry)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def make_finding(
        self, node: ast.AST, ctx: FileContext, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


class ProjectRule:
    """Base class for whole-program rules (RL101+).

    Project rules see the assembled
    :class:`~repro.analysis.project.ProjectModel` instead of single
    files.  Path scoping (``default_include``/``default_exclude`` and
    the per-rule config globs) is applied to each finding's path after
    the fact, and per-line suppression comments work through the module
    summaries, so the two rule families are configured identically.
    """

    rule_id: str = ""
    summary: str = ""
    default_include: tuple[str, ...] = ()
    default_exclude: tuple[str, ...] = ()
    default_severity: str = "error"

    _registry: dict[str, type["ProjectRule"]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.rule_id:
            ProjectRule._registry[cls.rule_id] = cls

    @classmethod
    def registered(cls) -> dict[str, type["ProjectRule"]]:
        import repro.analysis.rules  # noqa: F401

        return dict(cls._registry)

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(
            path=path, line=line, col=col, rule_id=self.rule_id, message=message
        )


class FlowRule:
    """Base class for flow-sensitive per-function rules (RL201+).

    For each (non-lambda) function in a file the engine builds one
    :class:`~repro.analysis.cfg.CFG` and calls :meth:`check_function`
    with the graph, the function's AST node and the shared
    :class:`FileContext`.  Rules usually run one or more
    :mod:`repro.analysis.dataflow` fixpoints over the graph and emit
    findings in a separate pass afterwards (transfer functions re-run
    until convergence, so they must never emit directly).

    Flow rules execute inside the per-file phase: their findings land in
    the same per-file cache entry as phase-1 findings, so warm-cache
    runs skip them along with everything else.
    """

    rule_id: str = ""
    summary: str = ""
    default_include: tuple[str, ...] = ()
    default_exclude: tuple[str, ...] = ()
    default_severity: str = "error"

    _registry: dict[str, type["FlowRule"]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.rule_id:
            FlowRule._registry[cls.rule_id] = cls

    @classmethod
    def registered(cls) -> dict[str, type["FlowRule"]]:
        import repro.analysis.rules  # noqa: F401

        return dict(cls._registry)

    def check_function(
        self,
        graph: CFG,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def make_finding(
        self, node: ast.AST, ctx: FileContext, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


@dataclass
class InterContext:
    """Shared state for one interprocedural phase run.

    ``effects`` is lazy: a run where every module hits the cache never
    computes a closure.
    """

    model: ProjectModel
    graph: CallGraph
    effects: EffectIndex
    config: LintConfig


class InterRule:
    """Base class for interprocedural rules (RL301+).

    Inter rules are checked *per module*: :meth:`check_module` receives
    one :class:`ModuleSummary` plus the :class:`InterContext` holding
    the whole-program call graph and effect closures.  Every finding
    must anchor in the checked module — that contract is what lets the
    engine cache inter findings per module, keyed on the module's
    dependency closure, and re-lint only the transitive callers of an
    edited callee.
    """

    rule_id: str = ""
    summary: str = ""
    default_include: tuple[str, ...] = ()
    default_exclude: tuple[str, ...] = ()
    default_severity: str = "error"

    _registry: dict[str, type["InterRule"]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.rule_id:
            InterRule._registry[cls.rule_id] = cls

    @classmethod
    def registered(cls) -> dict[str, type["InterRule"]]:
        import repro.analysis.rules  # noqa: F401

        return dict(cls._registry)

    def check_module(
        self, module: ModuleSummary, ctx: InterContext
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(
            path=path, line=line, col=col, rule_id=self.rule_id, message=message
        )


def all_rule_ids() -> set[str]:
    """Every rule id: per-file, whole-program, flow and interprocedural
    rules, plus the engine-synthesised unused-suppression check."""
    return (
        set(Rule.registered())
        | set(ProjectRule.registered())
        | set(FlowRule.registered())
        | set(InterRule.registered())
        | {UNUSED_SUPPRESSION_ID}
    )


class LintEngine:
    """Run per-file and whole-program rules over Python source files."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.rules: list[Rule] = [
            rule_cls()
            for rule_id, rule_cls in sorted(Rule.registered().items())
            if config.rule_enabled(rule_id)
        ]
        self.project_rules: list[ProjectRule] = [
            rule_cls()
            for rule_id, rule_cls in sorted(ProjectRule.registered().items())
            if config.rule_enabled(rule_id)
        ]
        self.flow_rules: list[FlowRule] = [
            rule_cls()
            for rule_id, rule_cls in sorted(FlowRule.registered().items())
            if config.rule_enabled(rule_id)
        ]
        self.inter_rules: list[InterRule] = [
            rule_cls()
            for rule_id, rule_cls in sorted(InterRule.registered().items())
            if config.rule_enabled(rule_id)
        ]
        self._dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)

    def lint_source(self, path: str, source: str) -> list[Finding]:
        """Lint one in-memory module; ``path`` is used for reporting/config."""
        findings, _ = self.lint_source_with_summary(path, source)
        return findings

    def lint_source_with_summary(
        self, path: str, source: str
    ) -> tuple[list[Finding], ModuleSummary | None]:
        """Per-file phase for one module: findings plus its model summary."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno or 1
            col = (exc.offset or 1)
            return (
                [Finding(path, line, col, "RL000", f"syntax error: {exc.msg}")],
                None,
            )
        used: set[tuple[int, str]] = set()
        findings = self._check_tree(path, source, tree, used)
        summary = extract_module(
            module_name_for(Path(path)),
            path,
            tree,
            protocols=self.config.protocols,
        )
        summary.suppressions = {
            str(line): sorted(ids)
            for line, ids in _collect_suppressions(source).items()
        }
        summary.used_suppressions = _group_used(used)
        return findings, summary

    def _check_tree(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        used: set[tuple[int, str]] | None = None,
    ) -> list[Finding]:
        active = [
            rule for rule in self.rules if self.config.rule_applies(rule, path)
        ]
        flow_active = [
            rule
            for rule in self.flow_rules
            if self.config.rule_applies(rule, path)
        ]
        if not active and not flow_active:
            return []
        ctx = FileContext.build(path, source, tree)
        dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in active:
            for node_type in rule.interests:
                dispatch.setdefault(node_type, []).append(rule)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                severity = self.config.severity_for(
                    rule.rule_id, rule.default_severity
                )
                for finding in rule.check_node(node, ctx):
                    if ctx.is_suppressed(finding):
                        if used is not None:
                            used.add((finding.line, finding.rule_id))
                    else:
                        if finding.severity != severity:
                            finding = replace(finding, severity=severity)
                        findings.append(finding)
        if flow_active:
            findings.extend(self._check_flow(tree, ctx, flow_active, used))
        return sorted(findings, key=finding_sort_key)

    def _check_flow(
        self,
        tree: ast.Module,
        ctx: FileContext,
        rules: Sequence[FlowRule],
        used: set[tuple[int, str]] | None = None,
    ) -> list[Finding]:
        """Phase 3: one CFG per function, every flow rule over each.

        ``ast.walk`` yields nested functions as separate nodes and the
        CFG builder treats nested ``def`` bodies as opaque, so each
        function — however deeply nested — is analyzed exactly once.
        """
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            graph = build_cfg(node)
            for rule in rules:
                severity = self.config.severity_for(
                    rule.rule_id, rule.default_severity
                )
                for finding in rule.check_function(graph, node, ctx):
                    if ctx.is_suppressed(finding):
                        if used is not None:
                            used.add((finding.line, finding.rule_id))
                    else:
                        if finding.severity != severity:
                            finding = replace(finding, severity=severity)
                        findings.append(finding)
        return findings

    def lint_file(self, path: Path) -> list[Finding]:
        source = path.read_text(encoding="utf-8")
        return self.lint_source(str(path), source)

    def run_project_rules(
        self,
        model: ProjectModel,
        used_out: dict[str, set[tuple[int, str]]] | None = None,
    ) -> list[Finding]:
        """Phase 2: every enabled whole-program rule over the model.

        ``used_out``, when given, collects (line, rule id) pairs a
        suppression comment silenced, per finding path.
        """
        by_path: dict[str, ModuleSummary] = {
            summary.path: summary for summary in model.modules.values()
        }
        findings: list[Finding] = []
        for rule in self.project_rules:
            severity = self.config.severity_for(
                rule.rule_id, rule.default_severity
            )
            for finding in rule.check_project(model, self.config):
                if not self.config.rule_applies(rule, finding.path):
                    continue
                summary = by_path.get(finding.path)
                if summary is not None and summary.is_suppressed(
                    finding.line, finding.rule_id
                ):
                    if used_out is not None:
                        used_out.setdefault(finding.path, set()).add(
                            (finding.line, finding.rule_id)
                        )
                    continue
                if finding.severity != severity:
                    finding = replace(finding, severity=severity)
                findings.append(finding)
        return sorted(findings, key=finding_sort_key)

    def run_inter_rules(
        self, module: ModuleSummary, ctx: InterContext
    ) -> tuple[list[Finding], set[tuple[int, str]]]:
        """Phase 4 for one module: findings plus silenced (line, id) pairs."""
        findings: list[Finding] = []
        used: set[tuple[int, str]] = set()
        for rule in self.inter_rules:
            severity = self.config.severity_for(
                rule.rule_id, rule.default_severity
            )
            for finding in rule.check_module(module, ctx):
                if not self.config.rule_applies(rule, finding.path):
                    continue
                if module.is_suppressed(finding.line, finding.rule_id):
                    used.add((finding.line, finding.rule_id))
                    continue
                if finding.severity != severity:
                    finding = replace(finding, severity=severity)
                findings.append(finding)
        return sorted(findings, key=finding_sort_key), used


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _project_cache_key(
    fingerprint: str, summaries: Sequence[ModuleSummary]
) -> str:
    """Cache key of the whole-program phase: config + every summary.

    Hashing the *summaries* rather than the file contents means edits
    that cannot affect cross-module rules (comments, docstrings, body
    tweaks that leave imports/classes/dataflow unchanged) keep the key
    stable and skip phase 2.
    """
    blob = json.dumps(
        [s.to_dict() for s in sorted(summaries, key=lambda s: s.path)],
        sort_keys=True,
    )
    return hashlib.sha256((fingerprint + blob).encode("utf-8")).hexdigest()


def _summary_digest(summary: ModuleSummary) -> str:
    """Content hash of one module summary (for inter-phase cache keys)."""
    blob = json.dumps(summary.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def lint_paths(
    paths: Iterable[str | Path],
    config: LintConfig | None = None,
    *,
    cache: LintCache | None = None,
    stats: dict[str, int] | None = None,
) -> list[Finding]:
    """Lint files/directories and return deduplicated, sorted findings.

    Findings are sorted by (path, line, col, rule id, message) and exact
    duplicates (e.g. from overlapping input paths) are dropped, so output
    is deterministic regardless of argument order.

    ``cache`` enables the incremental cache (hits skip parsing and, when
    no summary changed, the whole-program phase; interprocedural
    findings replay per module unless a dependency-closure summary
    changed).  ``stats``, when given, is filled with ``files`` /
    ``parsed`` / ``cache_hits`` / ``project_runs`` /
    ``inter_module_runs`` / ``inter_cache_hits`` counters plus
    ``file_phase_ms`` / ``project_phase_ms`` / ``inter_phase_ms``
    wall-clock timings — the cache tests assert on the counters, never
    the timings.
    """
    if config is None:
        from repro.analysis.config import load_config

        config = load_config()
    engine = LintEngine(config)
    counters = {
        "files": 0,
        "parsed": 0,
        "cache_hits": 0,
        "project_runs": 0,
        "inter_module_runs": 0,
        "inter_cache_hits": 0,
        "file_phase_ms": 0,
        "project_phase_ms": 0,
        "inter_phase_ms": 0,
    }
    findings: list[Finding] = []
    summaries: list[ModuleSummary] = []
    file_phase_start = time.monotonic()
    for path in iter_python_files(paths):
        if config.path_excluded(str(path)):
            continue
        counters["files"] += 1
        raw = path.read_bytes()
        file_hash = content_hash(raw)
        cache_id = str(path.resolve())
        entry = cache.lookup(cache_id, file_hash) if cache is not None else None
        if entry is not None:
            counters["cache_hits"] += 1
            findings.extend(entry.findings)
            if entry.summary is not None:
                summaries.append(entry.summary)
            continue
        counters["parsed"] += 1
        source = raw.decode("utf-8")
        file_findings, summary = engine.lint_source_with_summary(
            str(path), source
        )
        findings.extend(file_findings)
        if summary is not None:
            summaries.append(summary)
        if cache is not None:
            cache.store(cache_id, file_hash, file_findings, summary)
    counters["file_phase_ms"] = int(
        (time.monotonic() - file_phase_start) * 1000
    )
    model: ProjectModel | None = None
    project_used: dict[str, set[tuple[int, str]]] = {}
    if engine.project_rules:
        project_phase_start = time.monotonic()
        project_findings: list[Finding] | None = None
        project_key = ""
        if cache is not None:
            project_key = _project_cache_key(cache.fingerprint, summaries)
            cached_project = cache.project_lookup(project_key)
            if cached_project is not None:
                project_findings, cached_used = cached_project
                for path_key, pairs in cached_used.items():
                    project_used.setdefault(path_key, set()).update(pairs)
        if project_findings is None:
            counters["project_runs"] += 1
            model = ProjectModel.from_summaries(summaries)
            project_findings = engine.run_project_rules(model, project_used)
            if cache is not None:
                cache.store_project(
                    project_key,
                    project_findings,
                    {
                        path_key: sorted(pairs)
                        for path_key, pairs in project_used.items()
                    },
                )
        findings.extend(project_findings)
        counters["project_phase_ms"] = int(
            (time.monotonic() - project_phase_start) * 1000
        )
    inter_used: dict[str, set[tuple[int, str]]] = {}
    if engine.inter_rules:
        inter_phase_start = time.monotonic()
        if model is None:
            model = ProjectModel.from_summaries(summaries)
        graph = CallGraph.build(model)
        effects = EffectIndex(model, graph, config.protocols.events)
        ictx = InterContext(
            model=model, graph=graph, effects=effects, config=config
        )
        closures = graph.module_closure()
        digests = {
            name: _summary_digest(summary)
            for name, summary in model.modules.items()
        }
        for name in sorted(model.modules):
            summary = model.modules[name]
            key = ""
            if cache is not None:
                dep_blob = "|".join(
                    f"{dep}={digests[dep]}"
                    for dep in sorted(closures.get(name, frozenset((name,))))
                    if dep in digests
                )
                key = hashlib.sha256(
                    f"{cache.fingerprint}|{name}|{dep_blob}".encode("utf-8")
                ).hexdigest()
                entry = cache.inter_lookup(name, key)
                if entry is not None:
                    counters["inter_cache_hits"] += 1
                    findings.extend(entry.findings)
                    inter_used.setdefault(summary.path, set()).update(
                        entry.used
                    )
                    continue
            counters["inter_module_runs"] += 1
            module_findings, module_used = engine.run_inter_rules(
                summary, ictx
            )
            findings.extend(module_findings)
            inter_used.setdefault(summary.path, set()).update(module_used)
            if cache is not None:
                cache.store_inter(name, key, module_findings, sorted(module_used))
        if cache is not None:
            cache.prune_inter(set(model.modules))
        counters["inter_phase_ms"] = int(
            (time.monotonic() - inter_phase_start) * 1000
        )
    if config.warn_unused_suppressions and config.rule_enabled(
        UNUSED_SUPPRESSION_ID
    ):
        findings.extend(
            _unused_suppression_findings(
                config, summaries, project_used, inter_used
            )
        )
    if cache is not None:
        cache.save()
    if stats is not None:
        stats.update(counters)
    return sorted(set(findings), key=finding_sort_key)


def _unused_suppression_findings(
    config: LintConfig,
    summaries: Sequence[ModuleSummary],
    project_used: dict[str, set[tuple[int, str]]],
    inter_used: dict[str, set[tuple[int, str]]],
) -> list[Finding]:
    """Synthesise RL007 findings for suppressions nothing needed.

    A suppression is *used* when some phase produced a finding it
    silenced.  Per-file/flow usage travels inside the cached module
    summary; project and inter usage arrive from their own cache
    sections, so detection stays accurate on fully warm runs.
    Suppressions of rules the run disabled (``--select``/``--ignore``)
    are skipped rather than flagged: the rule never had a chance to
    fire.
    """
    known = all_rule_ids()
    severity = config.severity_for(UNUSED_SUPPRESSION_ID, "warn")
    findings: list[Finding] = []
    for summary in summaries:
        used: set[tuple[int, str]] = set()
        for line_str, ids in summary.used_suppressions.items():
            for rule_id in ids:
                used.add((int(line_str), rule_id))
        used |= project_used.get(summary.path, set())
        used |= inter_used.get(summary.path, set())
        for line_str, ids in summary.suppressions.items():
            line = int(line_str)
            if summary.is_suppressed(line, UNUSED_SUPPRESSION_ID):
                continue
            for rule_id in sorted(ids):
                if rule_id == UNUSED_SUPPRESSION_ID:
                    continue
                if (line, rule_id) in used:
                    continue
                if rule_id in known:
                    if not config.rule_enabled(rule_id):
                        continue
                    message = (
                        f"unused suppression: no {rule_id} finding is "
                        "reported on this line"
                    )
                else:
                    message = f"suppression names unknown rule {rule_id}"
                findings.append(
                    Finding(
                        summary.path,
                        line,
                        1,
                        UNUSED_SUPPRESSION_ID,
                        message,
                        severity=severity,
                    )
                )
    return findings
