"""A small monotone dataflow framework over :mod:`repro.analysis.cfg`.

One worklist solver covers every phase-3 rule: an analysis declares a
direction, a boundary state, a join, and a transfer function, and
:func:`solve` iterates to a fixpoint over the reachable part of the
graph.  States are ordinary immutable Python values compared with
``==`` — ``frozenset`` for may/must bit-facts, tuples of dict items for
environments — which keeps rule code free of lattice bookkeeping.

* **May vs must** is purely the analysis's choice of ``join``: union
  gives a may-analysis (RL201: "a handle *may* still be open here"),
  intersection a must-analysis (the ``ctx`` must-written facts feeding
  RL203).
* **Exception edges** can carry a different transfer
  (:meth:`DataflowAnalysis.transfer_exception`): a statement that raises
  does not complete its effect, so e.g. an assignment's gen-fact must not
  flow along its exception edge.  The distinction only applies to
  forward analyses; backward ones see a single transfer.
* The solver visits only nodes reachable from the relevant boundary, so
  unreachable code never pollutes states, and an iteration cap (well
  above any real fixpoint's need) guarantees lint terminates even on
  adversarial inputs — the partial result is then still a sound
  over-approximation for may-analyses.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from typing import Generic, TypeVar

from repro.analysis.cfg import CFG, EXCEPTION, CFGNode

S = TypeVar("S")

FORWARD = "forward"
BACKWARD = "backward"


class DataflowAnalysis(Generic[S]):
    """One dataflow problem: direction, boundary, join and transfer."""

    direction: str = FORWARD

    def boundary(self) -> S:
        """State at the entry node (forward) or the exit nodes (backward)."""
        raise NotImplementedError

    def join(self, states: Sequence[S]) -> S:
        """Combine states arriving over several edges (the lattice join)."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        """State after executing ``node`` given the state before it."""
        raise NotImplementedError

    def transfer_exception(self, node: CFGNode, state: S) -> S:
        """State flowing along ``node``'s *exception* out-edges.

        Defaults to :meth:`transfer`; override when a raising statement
        must not complete its effect (forward analyses only).
        """
        return self.transfer(node, state)


def solve(cfg: CFG, analysis: DataflowAnalysis[S]) -> dict[int, S]:
    """Fixpoint states per node index.

    Forward: the returned state is the one *entering* each node (apply
    ``transfer`` yourself for the post-state).  Backward: the state
    *leaving* each node towards its successors.  Nodes unreachable from
    the boundary are absent from the result.
    """
    if analysis.direction == FORWARD:
        return _solve_forward(cfg, analysis)
    if analysis.direction == BACKWARD:
        return _solve_backward(cfg, analysis)
    raise ValueError(f"unknown dataflow direction {analysis.direction!r}")


def _max_steps(cfg: CFG) -> int:
    return 64 * len(cfg.nodes) + 256


def _solve_forward(cfg: CFG, analysis: DataflowAnalysis[S]) -> dict[int, S]:
    states: dict[int, S] = {cfg.entry: analysis.boundary()}
    worklist: deque[int] = deque([cfg.entry])
    budget = _max_steps(cfg)
    while worklist and budget > 0:
        budget -= 1
        index = worklist.popleft()
        node = cfg.nodes[index]
        before = states[index]
        after_normal = analysis.transfer(node, before)
        after_exc: S | None = None
        for succ, kind in node.succs:
            if kind == EXCEPTION:
                if after_exc is None:
                    after_exc = analysis.transfer_exception(node, before)
                contribution = after_exc
            else:
                contribution = after_normal
            if succ not in states:
                states[succ] = contribution
                worklist.append(succ)
                continue
            joined = analysis.join([states[succ], contribution])
            if joined != states[succ]:
                states[succ] = joined
                worklist.append(succ)
    return states


def _solve_backward(cfg: CFG, analysis: DataflowAnalysis[S]) -> dict[int, S]:
    boundary = analysis.boundary()
    states: dict[int, S] = {cfg.exit: boundary, cfg.raise_exit: boundary}
    worklist: deque[int] = deque([cfg.exit, cfg.raise_exit])
    budget = _max_steps(cfg)
    while worklist and budget > 0:
        budget -= 1
        index = worklist.popleft()
        node = cfg.nodes[index]
        out = states[index]
        contribution = analysis.transfer(node, out)
        for pred, _kind in node.preds:
            if pred not in states:
                states[pred] = contribution
                worklist.append(pred)
                continue
            joined = analysis.join([states[pred], contribution])
            if joined != states[pred]:
                states[pred] = joined
                worklist.append(pred)
    return states
