"""Phase-4 procedure summaries: per-function flow facts and effect closures.

The interprocedural rules (RL301-RL305) need more than the shallow
per-function facts phase 1 extracts: they reason about *orderings* of
calls inside a function (was there an fsync on every path before this
rename?), about *typestate traces* (which methods ran on this object,
in what order), and about *effects* that flow through the call graph
(does this helper, transitively, fsync?  does it return an open
handle?).

This module computes both halves:

* :func:`augment_function` runs at extraction time (from
  :func:`repro.analysis.project.extract_module`) and adds flow-derived
  fields to a :class:`FunctionInfo`: ``call_sites`` (every dotted call,
  for the call graph), ``must_calls`` (calls made on every path to a
  normal return), ``call_orders`` (per-site must-before / must-after
  call sets, only in modules covered by an ordering protocol),
  ``receivers`` (method-call traces on locals bound from constructors,
  only in modules covered by a typestate protocol), ``leaks`` (locals
  bound from a call and never closed/escaped, the RL305 input) and the
  ``returns_*`` facts feeding the returns-handle closure.  All fields
  are plain JSON data so cached summaries replay them.

* :class:`EffectIndex` runs at lint time over the
  :class:`~repro.analysis.callgraph.CallGraph` and closes the
  per-function facts over calls: the may-emit / must-emit sets for each
  named event of the protocol table, and the returns-handle set for
  RL305.  All closures are lazy — a warm cache never computes them.

The must-after side of ``call_orders`` deliberately ignores exception
edges: "a directory fsync follows every publish" is a guarantee about
paths that *complete*; the publish-then-crash window is exactly what
the crash-consistency protocol tolerates (and what replay repairs).
The must-before side counts exception edges, because a fact is only
"before" a site if no route into the site skips it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping, Sequence
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Any

from repro.analysis.cfg import CFG, NORMAL, CFGNode, build_cfg, evaluated
from repro.analysis.dataflow import DataflowAnalysis, solve

if TYPE_CHECKING:  # real imports would cycle through project.py
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.project import FunctionInfo, ModuleSummary, ProjectModel

#: Callables whose result is an OS resource with a ``close()`` contract.
#: (Shared with RL201; RL305 uses it to seed the returns-handle closure.)
ACQUIRERS = frozenset(
    {
        "open",
        "io.open",
        "os.fdopen",
        "mmap.mmap",
        "gzip.open",
        "bz2.open",
        "lzma.open",
        "tarfile.open",
        "zipfile.ZipFile",
        "socket.socket",
        "tempfile.TemporaryFile",
        "tempfile.NamedTemporaryFile",
    }
)


def is_acquirer_name(name: str) -> bool:
    """Does a dotted callable name acquire a closeable OS resource?"""
    return name in ACQUIRERS or name.endswith(".open")


def is_acquirer_call(call: ast.Call) -> bool:
    name = _dotted(call.func)
    return name is not None and is_acquirer_name(name)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` chains to a dotted string.  (Local copy: importing the
    rules package or project.py from here would create an import cycle.)
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _walk_evaluated(node: CFGNode) -> Iterator[ast.AST]:
    """Walk a node's evaluated fragments, skipping deferred lambda bodies."""
    stack: list[ast.AST] = list(evaluated(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, ast.Lambda):
            continue  # its body runs when called, not here
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


def _node_calls(node: CFGNode) -> list[tuple[str, int, int]]:
    """Dotted ``(name, line, col)`` of every call a node evaluates."""
    calls: list[tuple[str, int, int]] = []
    for sub in _walk_evaluated(node):
        if isinstance(sub, ast.Call):
            name = _dotted(sub.func)
            if name is not None:
                calls.append((name, sub.lineno, sub.col_offset + 1))
    return calls


# -- must-before / must-after call analyses ----------------------------


class _MustCalls(DataflowAnalysis[frozenset[str]]):
    """Forward must-analysis: calls completed on every path into a node.

    Exception edges carry the pre-state — a statement that raises never
    completed its own calls.
    """

    def __init__(self, calls: Mapping[int, frozenset[str]]) -> None:
        self.calls = calls

    def boundary(self) -> frozenset[str]:
        return frozenset()

    def join(self, states: Sequence[frozenset[str]]) -> frozenset[str]:
        result = states[0]
        for state in states[1:]:
            result &= state
        return result

    def transfer(self, node: CFGNode, state: frozenset[str]) -> frozenset[str]:
        gen = self.calls.get(node.index)
        return state | gen if gen else state

    def transfer_exception(
        self, node: CFGNode, state: frozenset[str]
    ) -> frozenset[str]:
        return state


def _must_after(
    graph: CFG, calls: Mapping[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Per node: calls made on every *normal* path strictly after it.

    A node that cannot reach the exit along normal edges is absent — a
    must-after requirement is vacuous on a path that never returns.
    """
    out: dict[int, frozenset[str]] = {graph.exit: frozenset()}
    worklist = [graph.exit]
    while worklist:
        index = worklist.pop()
        node = graph.nodes[index]
        into = out[index] | calls.get(index, frozenset())
        for pred, kind in node.preds:
            if kind != NORMAL:
                continue
            current = out.get(pred)
            updated = into if current is None else current & into
            if current is None or updated != current:
                out[pred] = updated
                worklist.append(pred)
    return out


# -- receiver traces (typestate input) ---------------------------------

_MethodState = frozenset[tuple[str, str]]


class _ReceiverMethods(DataflowAnalysis[_MethodState]):
    """Forward may-analysis: methods that may have run on tracked locals."""

    def __init__(
        self,
        methods: Mapping[int, tuple[tuple[str, str], ...]],
        rebinds: Mapping[int, frozenset[str]],
    ) -> None:
        self.methods = methods
        self.rebinds = rebinds

    def boundary(self) -> _MethodState:
        return frozenset()

    def join(self, states: Sequence[_MethodState]) -> _MethodState:
        result = states[0]
        for state in states[1:]:
            result |= state
        return result

    def transfer(self, node: CFGNode, state: _MethodState) -> _MethodState:
        killed = self.rebinds.get(node.index)
        if killed:
            state = frozenset(pair for pair in state if pair[0] not in killed)
        gen = self.methods.get(node.index)
        return state | frozenset(gen) if gen else state

    def transfer_exception(self, node: CFGNode, state: _MethodState) -> _MethodState:
        # May-analysis: the method may have run before the raise.
        return self.transfer(node, state)


def _creation(stmt: ast.AST | None) -> tuple[str, str] | None:
    """``(var, dotted callee)`` for ``var = callee(...)``, else None."""
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and isinstance(stmt.value, ast.Call)
    ):
        name = _dotted(stmt.value.func)
        if name is not None:
            return stmt.targets[0].id, name
    return None


def _receiver_traces(graph: CFG) -> list[list[Any]]:
    """Method-call traces for locals bound from constructor-style calls.

    Returns ``[var, [[creator, line], ...], [[method, line, col,
    [prior-methods...]], ...]]`` entries; ``prior`` is the may-set of
    methods already run on the var when the call executes.
    """
    reachable = graph.reachable()
    creations: dict[str, list[list[Any]]] = {}
    for node in graph.nodes:
        if node.index not in reachable:
            continue
        created = _creation(node.stmt)
        if created is not None:
            creations.setdefault(created[0], []).append(
                [created[1], getattr(node.stmt, "lineno", 0)]
            )
    if not creations:
        return []
    tracked = frozenset(creations)
    methods: dict[int, tuple[tuple[str, str], ...]] = {}
    sites: dict[int, list[tuple[str, str, int, int]]] = {}
    rebinds: dict[int, frozenset[str]] = {}
    for node in graph.nodes:
        if node.index not in reachable:
            continue
        node_methods: list[tuple[str, str]] = []
        node_sites: list[tuple[str, str, int, int]] = []
        node_rebinds: set[str] = set()
        for sub in _walk_evaluated(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in tracked
            ):
                var, method = sub.func.value.id, sub.func.attr
                node_methods.append((var, method))
                node_sites.append((var, method, sub.lineno, sub.col_offset + 1))
            elif (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, (ast.Store, ast.Del))
                and sub.id in tracked
            ):
                node_rebinds.add(sub.id)
        if node_methods:
            methods[node.index] = tuple(node_methods)
            sites[node.index] = node_sites
        if node_rebinds:
            rebinds[node.index] = frozenset(node_rebinds)
    states = solve(graph, _ReceiverMethods(methods, rebinds))
    calls_by_var: dict[str, list[list[Any]]] = {}
    for index, node_sites_list in sites.items():
        state = states.get(index, frozenset())
        for var, method, line, col in node_sites_list:
            prior = sorted(m for v, m in state if v == var)
            calls_by_var.setdefault(var, []).append([method, line, col, prior])
    return [
        [var, creations[var], sorted(calls_by_var.get(var, []), key=lambda c: (c[1], c[2]))]
        for var in sorted(creations)
    ]


# -- ownership leaks (RL305 input) -------------------------------------

_Leak = tuple[str, str, int, int]  # (var, callee, line, col)
_LeakState = frozenset[_Leak]


class _BoundCalls(DataflowAnalysis[_LeakState]):
    """Forward may-analysis of call results bound to locals and still held.

    The kill semantics mirror RL201's ``_OpenHandles``: ``.close()`` and
    ``with var:`` release, rebind/``del`` kill, and any use that hands
    the value to other code (argument, return, container) escapes it.
    What survives to an exit was provably held and dropped.
    """

    def __init__(self, parents: Mapping[ast.AST, ast.AST]) -> None:
        self.parents = parents

    def boundary(self) -> _LeakState:
        return frozenset()

    def join(self, states: Sequence[_LeakState]) -> _LeakState:
        result = states[0]
        for state in states[1:]:
            result |= state
        return result

    def transfer(self, node: CFGNode, state: _LeakState) -> _LeakState:
        return self._apply(node, state, with_gen=True)

    def transfer_exception(self, node: CFGNode, state: _LeakState) -> _LeakState:
        return self._apply(node, state, with_gen=False)

    def _apply(self, node: CFGNode, state: _LeakState, *, with_gen: bool) -> _LeakState:
        killed = self._killed_names(node)
        if killed:
            state = frozenset(h for h in state if h[0] not in killed)
        if with_gen:
            created = _creation(node.stmt)
            if created is not None and self._tracked_callee(created[1]):
                var, callee = created
                stmt = node.stmt
                assert stmt is not None
                state = frozenset(h for h in state if h[0] != var) | {
                    (var, callee, stmt.lineno, stmt.col_offset + 1)
                }
        return state

    @staticmethod
    def _tracked_callee(callee: str) -> bool:
        # RL201 already owns direct acquirer bindings; deep self.* chains
        # can never resolve to a model function, so tracking them would
        # only bloat the summaries.
        if is_acquirer_name(callee):
            return False
        if callee.startswith(("self.", "cls.")) and callee.count(".") >= 2:
            return False
        return True

    def _killed_names(self, node: CFGNode) -> set[str]:
        killed: set[str] = set()
        created = _creation(node.stmt)
        acquired = created[0] if created is not None else None
        for sub in _walk_evaluated(node):
            if not isinstance(sub, ast.Name):
                continue
            if isinstance(sub.ctx, (ast.Store, ast.Del)):
                if sub.id != acquired:
                    killed.add(sub.id)
                continue
            parent = self.parents.get(sub)
            if isinstance(parent, ast.Attribute):
                if parent.attr == "close":
                    killed.add(sub.id)
            elif isinstance(parent, ast.withitem) and parent.context_expr is sub:
                killed.add(sub.id)
            elif parent is None or isinstance(parent, ast.Expr):
                pass
            else:
                killed.add(sub.id)
        return killed


def _held_bindings(
    graph: CFG, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> list[list[Any]]:
    """``[callee, var, line, col]`` for call results held to an exit."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(node):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    states = solve(graph, _BoundCalls(parents))
    held = states.get(graph.exit, frozenset()) | states.get(
        graph.raise_exit, frozenset()
    )
    return [[callee, var, line, col] for var, callee, line, col in sorted(held)]


# -- returns facts ------------------------------------------------------


def _own_statements(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.stmt]:
    """Statements of the function body, nested def/class bodies excluded."""
    stack: list[ast.stmt] = list(node.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    sub for sub in ast.walk(child) if isinstance(sub, ast.stmt)
                )


def _return_facts(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[bool, list[str], int]:
    """(returns an acquirer result, callees whose result is returned, line).

    Name returns are traced through single-target call bindings
    flow-insensitively; the facts feed the returns-handle closure.
    """
    bindings: dict[str, str] = {}
    returns_acquirer = False
    returns_calls: set[str] = set()
    returns_line = 0
    for stmt in _own_statements(node):
        created = _creation(stmt)
        if created is not None:
            bindings[created[0]] = created[1]
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            callee: str | None = None
            if isinstance(stmt.value, ast.Call):
                callee = _dotted(stmt.value.func)
            elif isinstance(stmt.value, ast.Name):
                callee = bindings.get(stmt.value.id)
            if callee is None:
                continue
            if is_acquirer_name(callee):
                returns_acquirer = True
                returns_line = returns_line or stmt.lineno
            else:
                returns_calls.add(callee)
                returns_line = returns_line or stmt.lineno
    return returns_acquirer, sorted(returns_calls), returns_line


# -- extraction-time entry point ---------------------------------------


def augment_function(
    info: FunctionInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    record_orders: bool = False,
    record_receivers: bool = False,
) -> None:
    """Fill the phase-4 flow fields of ``info`` from the function CFG."""
    graph = build_cfg(node)
    calls: dict[int, frozenset[str]] = {}
    reachable = graph.reachable()
    site_lists: dict[int, list[tuple[str, int, int]]] = {}
    for cfg_node in graph.nodes:
        if cfg_node.index not in reachable:
            continue
        node_calls = _node_calls(cfg_node)
        if node_calls:
            calls[cfg_node.index] = frozenset(name for name, _, _ in node_calls)
            site_lists[cfg_node.index] = node_calls

    before_states = solve(graph, _MustCalls(calls))
    info.returns_normally = graph.exit in before_states
    info.must_calls = sorted(before_states.get(graph.exit, frozenset()))

    if record_orders:
        after_states = _must_after(graph, calls)
        orders: list[list[Any]] = []
        for index, node_calls in sorted(site_lists.items()):
            before = sorted(before_states.get(index, frozenset()))
            after_state = after_states.get(index)
            after = sorted(after_state) if after_state is not None else None
            for name, line, col in node_calls:
                orders.append([name, line, col, before, after])
        info.call_orders = orders

    if record_receivers:
        info.receivers = _receiver_traces(graph)

    info.leaks = _held_bindings(graph, node)
    acquirer, ret_calls, ret_line = _return_facts(node)
    info.returns_acquirer = acquirer
    info.returns_calls = ret_calls
    info.returns_line = ret_line


# -- lint-time effect closures -----------------------------------------


class EffectIndex:
    """Lazy interprocedural closures over the call graph.

    ``may_emit(event)`` — nodes from which a call matching the event's
    patterns may be reached (any call site, transitively).
    ``must_emit(event)`` — nodes guaranteed to emit the event on every
    path to a normal return (seeded from ``must_calls``, closed over
    callees that themselves must emit).  ``returns_handle()`` — nodes
    whose return value is, transitively, an open OS resource.
    """

    def __init__(
        self,
        model: ProjectModel,
        graph: CallGraph,
        events: Mapping[str, tuple[str, ...]],
    ) -> None:
        self.model = model
        self.graph = graph
        self.events = {name: tuple(patterns) for name, patterns in events.items()}
        self._may: dict[str, frozenset[str]] = {}
        self._must: dict[str, frozenset[str]] = {}
        self._returns_handle: frozenset[str] | None = None

    # -- pattern matching ----------------------------------------------

    def patterns(self, event: str) -> tuple[str, ...]:
        return self.events.get(event, ())

    def name_matches(
        self, module_name: str, scope: str, name: str, patterns: tuple[str, ...]
    ) -> bool:
        """Does a call name match, as written or once resolved?"""
        if any(fnmatch(name, pattern) for pattern in patterns):
            return True
        resolved = self.graph.resolve_dotted(module_name, scope, name)
        return resolved is not None and any(
            fnmatch(resolved, pattern) for pattern in patterns
        )

    def site_emits(
        self, module_name: str, scope: str, name: str, event: str
    ) -> bool:
        """May this call site emit the event — directly or transitively?"""
        patterns = self.patterns(event)
        if self.name_matches(module_name, scope, name, patterns):
            return True
        target = self.graph.resolve_call(module_name, scope, name)
        return target is not None and target in self.may_emit(event)

    # -- closures ------------------------------------------------------

    def may_emit(self, event: str) -> frozenset[str]:
        cached = self._may.get(event)
        if cached is not None:
            return cached
        patterns = self.patterns(event)
        emits: set[str] = set()
        if patterns:
            for node_id, fnode in self.graph.nodes.items():
                for name, _, _, _ in fnode.info.call_sites:
                    if self.name_matches(
                        fnode.module, fnode.qualname, name, patterns
                    ):
                        emits.add(node_id)
                        break
            worklist = list(emits)
            while worklist:
                target = worklist.pop()
                for caller in self.graph.reverse.get(target, ()):
                    if caller not in emits:
                        emits.add(caller)
                        worklist.append(caller)
        result = frozenset(emits)
        self._may[event] = result
        return result

    def must_emit(self, event: str) -> frozenset[str]:
        cached = self._must.get(event)
        if cached is not None:
            return cached
        patterns = self.patterns(event)
        emits: set[str] = set()
        if patterns:
            resolved_musts: dict[str, list[tuple[bool, str | None]]] = {}
            for node_id, fnode in self.graph.nodes.items():
                entries: list[tuple[bool, str | None]] = []
                for name in fnode.info.must_calls:
                    direct = self.name_matches(
                        fnode.module, fnode.qualname, name, patterns
                    )
                    target = self.graph.resolve_call(
                        fnode.module, fnode.qualname, name
                    )
                    entries.append((direct, target))
                    if direct:
                        emits.add(node_id)
                resolved_musts[node_id] = entries
            changed = True
            while changed:
                changed = False
                for node_id, entries in resolved_musts.items():
                    if node_id in emits:
                        continue
                    if any(
                        target is not None and target in emits
                        for _, target in entries
                    ):
                        emits.add(node_id)
                        changed = True
        result = frozenset(emits)
        self._must[event] = result
        return result

    def returns_handle(self) -> frozenset[str]:
        if self._returns_handle is not None:
            return self._returns_handle
        emits: set[str] = set()
        resolved: dict[str, list[str | None]] = {}
        for node_id, fnode in self.graph.nodes.items():
            if fnode.info.returns_acquirer:
                emits.add(node_id)
            resolved[node_id] = [
                self.graph.resolve_call(fnode.module, fnode.qualname, name)
                for name in fnode.info.returns_calls
            ]
        changed = True
        while changed:
            changed = False
            for node_id, targets in resolved.items():
                if node_id in emits:
                    continue
                if any(target is not None and target in emits for target in targets):
                    emits.add(node_id)
                    changed = True
        self._returns_handle = frozenset(emits)
        return self._returns_handle
