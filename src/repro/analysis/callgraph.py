"""The reprolint call graph: who calls whom, across the whole project.

Built from the ``call_sites`` lists phase 1 records on every
:class:`~repro.analysis.project.FunctionInfo`, resolved through the
same binding tables the import rules use.  Nodes are module-level
functions and class methods, identified as ``"module:qualname"``
(``"repro.core.persist:write_dir_atomic"``,
``"repro.wal.segment:SegmentWriter.sync"``).  Resolution is
best-effort and *positive*: a call the model cannot resolve (external
library, dynamic dispatch, deep attribute chains) simply has no edge,
so the interprocedural rules only reason through calls the model
actually establishes.

``self.method()`` / ``cls.method()`` calls resolve through the
receiver class's base chain; plain names follow module bindings with
one re-export hop (``from repro.serve import ShardedQueryEngine``
reaches ``repro.serve.sharded``).  Constructor calls resolve to
classes, not functions, and are deliberately left edge-less.

The graph also derives the *module dependency closure* the incremental
cache keys on: module A depends on module B when some call or
``parallel_map`` worker reference in A resolves into B, or A imports
B.  Editing B then re-lints exactly the modules whose closure contains
B — its transitive callers — not the whole tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.project import FunctionInfo, ProjectModel


@dataclass
class FuncNode:
    """One call-graph node: a module-level function or a class method."""

    node_id: str
    module: str
    qualname: str
    info: FunctionInfo


@dataclass
class CallGraph:
    """Resolved call edges over a :class:`ProjectModel`."""

    model: ProjectModel
    nodes: dict[str, FuncNode] = field(default_factory=dict)
    #: caller node id -> resolved callee node ids.
    edges: dict[str, frozenset[str]] = field(default_factory=dict)
    #: callee node id -> caller node ids.
    reverse: dict[str, set[str]] = field(default_factory=dict)
    #: module name -> modules it depends on (calls, worker refs, imports).
    module_edges: dict[str, set[str]] = field(default_factory=dict)
    _resolve_cache: dict[tuple[str, str, str], str | None] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def build(cls, model: ProjectModel) -> "CallGraph":
        graph = cls(model=model)
        for name, summary in model.modules.items():
            graph.module_edges.setdefault(name, set())
            for info in summary.functions.values():
                node_id = f"{name}:{info.qualname}"
                graph.nodes[node_id] = FuncNode(node_id, name, info.qualname, info)
            for cinfo in summary.classes.values():
                for minfo in cinfo.methods.values():
                    node_id = f"{name}:{minfo.qualname}"
                    graph.nodes[node_id] = FuncNode(
                        node_id, name, minfo.qualname, minfo
                    )
        for node_id, fnode in graph.nodes.items():
            targets: set[str] = set()
            for call_name, _, _, _ in fnode.info.call_sites:
                target = graph.resolve_call(
                    fnode.module, fnode.qualname, call_name
                )
                if target is not None and target != node_id:
                    targets.add(target)
            graph.edges[node_id] = frozenset(targets)
            deps = graph.module_edges[fnode.module]
            for target in targets:
                graph.reverse.setdefault(target, set()).add(node_id)
                deps.add(graph.nodes[target].module)
        # parallel_map worker/initializer references are call edges the
        # syntax hides (the callable is passed, not called).
        for name, summary in model.modules.items():
            for pcall in summary.parallel_calls:
                for ref in (pcall.worker, pcall.initializer):
                    if ref is None or ref.kind != "name":
                        continue
                    target = graph.resolve_call(name, pcall.scope, ref.name)
                    if target is None:
                        continue
                    graph.module_edges[name].add(graph.nodes[target].module)
                    scope_id = f"{name}:{pcall.scope}"
                    if scope_id in graph.nodes and target != scope_id:
                        graph.edges[scope_id] = graph.edges.get(
                            scope_id, frozenset()
                        ) | {target}
                        graph.reverse.setdefault(target, set()).add(scope_id)
        # Import edges: name resolution consults the imported module's
        # bindings, so an edit there can change this module's findings.
        for source, target, _record in model.resolved_edges(("module", "runtime")):
            graph.module_edges[source].add(target)
        return graph

    def module_nodes(self, module_name: str) -> list[FuncNode]:
        """Every function/method node of one module, in stable order."""
        return [
            self.nodes[node_id]
            for node_id in sorted(self.nodes)
            if self.nodes[node_id].module == module_name
        ]

    # -- resolution ----------------------------------------------------

    def resolve_call(
        self, module_name: str, scope: str, name: str
    ) -> str | None:
        """Resolve a call written as ``name`` in ``scope`` to a node id."""
        key = (module_name, scope, name)
        if key in self._resolve_cache:
            return self._resolve_cache[key]
        result = self._resolve_call(module_name, scope, name)
        self._resolve_cache[key] = result
        return result

    def _resolve_call(
        self, module_name: str, scope: str, name: str
    ) -> str | None:
        if name.startswith(("self.", "cls.")):
            owner = self._method_owner(module_name, scope, name)
            if owner is None:
                return None
            summary_name, cls_name, method = owner
            return f"{summary_name}:{cls_name}.{method}"
        dotted = self.model.resolve(module_name, name)
        if dotted is None:
            return None
        return self.find_function(dotted)

    def resolve_dotted(
        self, module_name: str, scope: str, name: str
    ) -> str | None:
        """Resolve a call name to its fully-dotted form (for patterns)."""
        if name.startswith(("self.", "cls.")):
            owner = self._method_owner(module_name, scope, name)
            if owner is None:
                return None
            summary_name, cls_name, method = owner
            return f"{summary_name}.{cls_name}.{method}"
        return self.model.resolve(module_name, name)

    def _method_owner(
        self, module_name: str, scope: str, name: str
    ) -> tuple[str, str, str] | None:
        """(module, class, method) defining a ``self.m()``-style call."""
        parts = name.split(".")
        if len(parts) != 2 or "." not in scope:
            return None
        cls_name = scope.split(".", 1)[0]
        for summary, cinfo in self.model.base_chain(module_name, cls_name):
            if parts[1] in cinfo.methods:
                return summary.name, cinfo.name, parts[1]
        return None

    def find_function(self, dotted: str, _depth: int = 0) -> str | None:
        """Node id for ``pkg.module.func`` / ``pkg.module.Class.method``."""
        if _depth > 4:
            return None
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            summary = self.model.modules.get(module)
            if summary is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                if rest[0] in summary.functions:
                    return f"{module}:{rest[0]}"
                target = summary.bindings.get(rest[0])
                if target is not None and target != dotted:
                    found = self.find_function(target, _depth + 1)
                    if found is not None:
                        return found
            elif len(rest) == 2:
                cinfo = summary.classes.get(rest[0])
                if cinfo is not None and rest[1] in cinfo.methods:
                    return f"{module}:{rest[0]}.{rest[1]}"
                target = summary.bindings.get(rest[0])
                if target is not None:
                    hop = f"{target}.{rest[1]}"
                    if hop != dotted:
                        found = self.find_function(hop, _depth + 1)
                        if found is not None:
                            return found
            # Longer prefixes can shadow: keep trying shorter ones.
        return None

    # -- dependency closure --------------------------------------------

    def module_closure(self) -> dict[str, frozenset[str]]:
        """Per module: every module its lint results may depend on.

        Reflexive-transitive closure of :attr:`module_edges`; the
        incremental cache keys a module's interprocedural findings on
        the summary digests of exactly this set.
        """
        closure: dict[str, set[str]] = {
            name: {name} | self.module_edges.get(name, set())
            for name in self.model.modules
        }
        changed = True
        while changed:
            changed = False
            for deps in closure.values():
                additions: set[str] = set()
                for dep in tuple(deps):
                    extra = closure.get(dep)
                    if extra is not None and not extra <= deps:
                        additions |= extra
                if additions - deps:
                    deps |= additions
                    changed = True
        return {name: frozenset(deps) for name, deps in closure.items()}
