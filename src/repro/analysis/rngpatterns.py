"""Shared randomness-API matchers.

Both the per-file RL001 rule (:mod:`repro.analysis.rules.randomness`) and
the whole-program extractor (:mod:`repro.analysis.project`, feeding RL103
parallel-safety and RL105 seed-propagation) need to recognise the same
RNG call surface.  The patterns live here, in a module with no intra-
package imports, so neither side pulls the other in at import time.
"""

from __future__ import annotations

import ast
import re

#: stdlib ``random`` functions drawing from the hidden module-global state.
STDLIB_GLOBAL_RNG = re.compile(
    r"^random\.(random|randint|randrange|getrandbits|choice|choices|shuffle|"
    r"sample|uniform|triangular|gauss|normalvariate|lognormvariate|"
    r"expovariate|betavariate|gammavariate|paretovariate|weibullvariate|"
    r"vonmisesvariate|seed)$"
)

#: numpy legacy API drawing from the global ``RandomState`` singleton.
NUMPY_GLOBAL_RNG = re.compile(
    r"^(np|numpy)\.random\.(rand|randn|randint|random|random_sample|ranf|"
    r"sample|bytes|choice|shuffle|permutation|uniform|normal|standard_normal|"
    r"binomial|poisson|beta|gamma|exponential|geometric|seed)$"
)

#: Constructors that take entropy from the OS when no seed is given.
RNG_CONSTRUCTORS = re.compile(
    r"^((np|numpy)\.random\.)?(default_rng|RandomState)$|^random\.Random$"
)


def seed_argument(node: ast.Call) -> ast.expr | None:
    """The expression supplying the seed of an RNG constructor call, if any."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "seed" or keyword.arg is None:  # **kwargs may carry it
            return keyword.value
    return None


def has_seed_argument(node: ast.Call) -> bool:
    """Whether an RNG constructor call passes a non-``None`` seed."""
    seed = seed_argument(node)
    if seed is None:
        return False
    return not (isinstance(seed, ast.Constant) and seed.value is None)


def is_global_rng_call(name: str) -> bool:
    """Whether a dotted call name draws from process-global RNG state."""
    return bool(STDLIB_GLOBAL_RNG.match(name) or NUMPY_GLOBAL_RNG.match(name))
