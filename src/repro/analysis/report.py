"""Rendering of lint findings: text, JSON, and SARIF for code scanning."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.engine import Finding

#: SARIF schema pinned by the renderer (and validated in the test suite).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RLxxx message`` line per finding plus a summary."""
    if not findings:
        return "reprolint: no findings"
    lines = [
        finding.format() + (" [warn]" if finding.severity == "warn" else "")
        for finding in findings
    ]
    by_rule = Counter(finding.rule_id for finding in findings)
    breakdown = ", ".join(
        f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
    )
    lines.append(f"reprolint: {len(findings)} finding(s) ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable output: ``{"count": N, "findings": [...]}``."""
    payload = {
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "message": finding.message,
                "severity": finding.severity,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2)


def _rule_catalogue() -> list[dict[str, object]]:
    """SARIF rule descriptors for every registered rule plus RL000."""
    from repro.analysis.engine import ProjectRule, Rule

    descriptors: dict[str, str] = {"RL000": "file does not parse"}
    for rule_id, rule_cls in Rule.registered().items():
        descriptors[rule_id] = rule_cls.summary
    for rule_id, project_cls in ProjectRule.registered().items():
        descriptors[rule_id] = project_cls.summary
    return [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": summary or rule_id},
        }
        for rule_id, summary in sorted(descriptors.items())
    ]


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 output for GitHub code scanning upload."""
    rules = _rule_catalogue()
    rule_index = {str(rule["id"]): i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index.get(finding.rule_id, -1),
            "level": "warning" if finding.severity == "warn" else "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(finding.path).as_posix(),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
