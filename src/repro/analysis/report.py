"""Rendering of lint findings: text for humans, JSON for CI tooling."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence

from repro.analysis.engine import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RLxxx message`` line per finding plus a summary."""
    if not findings:
        return "reprolint: no findings"
    lines = [finding.format() for finding in findings]
    by_rule = Counter(finding.rule_id for finding in findings)
    breakdown = ", ".join(
        f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
    )
    lines.append(f"reprolint: {len(findings)} finding(s) ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable output: ``{"count": N, "findings": [...]}``."""
    payload = {
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2)
