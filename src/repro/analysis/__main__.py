"""Entry point: ``python -m repro.analysis [paths...]``.

Also backs the ``repro lint`` CLI subcommand.  Exit status: 0 clean (or
warnings only), 1 error-severity findings, 2 usage error — so the
command gates CI directly while ``severity = "warn"`` rules report
without blocking.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cache import LintCache, config_fingerprint, default_cache_path
from repro.analysis.config import load_config
from repro.analysis.engine import all_rule_ids, lint_paths
from repro.analysis.report import render_json, render_sarif, render_text


def build_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    """Populate ``parser`` (or a fresh one) with the lint options."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description=(
                "reprolint: repo-specific static analysis "
                "(per-file RL001-RL006, whole-program RL101-RL105, "
                "flow-sensitive RL201-RL205, interprocedural RL301-RL305)"
            ),
        )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RLxxx",
        help="run only these rules (repeatable, comma separated, or a "
        "glob like RL3*)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RLxxx",
        help="skip these rules (repeatable, comma separated, or a "
        "glob like RL2*)",
    )
    parser.add_argument(
        "--warn-unused-suppressions",
        action="store_true",
        default=None,
        help="report suppression comments no finding needed (RL007); "
        "also configurable as warn-unused-suppressions in "
        "[tool.reprolint]",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (.reprolint_cache.json)",
    )
    parser.add_argument(
        "--cache-path",
        metavar="FILE",
        default=None,
        help="cache file location (default: beside pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="drop findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache/parse statistics and phase timings to stderr",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout "
        "(e.g. the SARIF file CI uploads)",
    )
    return parser


def _split_ids(values: Sequence[str]) -> list[str]:
    ids: list[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _pattern_matches_known(pattern: str, known: set[str]) -> bool:
    """Is a ``--select``/``--ignore`` entry an id or glob that can match?"""
    if pattern in known:
        return True
    if "*" in pattern or "?" in pattern or "[" in pattern:
        return any(fnmatch(rule_id, pattern) for rule_id in known)
    return False


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments.

    Exit status: 0 clean or warnings only, 1 error findings, 2 usage
    error (unknown rule id, missing path, unreadable baseline) -- a typo
    in ``--select`` must not silently pass CI.
    """
    select, ignore = _split_ids(args.select), _split_ids(args.ignore)
    known = all_rule_ids()
    unknown = [
        pattern
        for pattern in [*select, *ignore]
        if not _pattern_matches_known(pattern, known)
    ]
    if unknown:
        prefixes = sorted({rule_id[:3] + "*" for rule_id in known})
        sys.stderr.write(
            f"repro lint: unknown rule id(s) or pattern(s): "
            f"{', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))}; "
            f"globs over {', '.join(prefixes)} also work)\n"
        )
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        sys.stderr.write(
            f"repro lint: path(s) not found: {', '.join(missing)}\n"
        )
        return 2
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            sys.stderr.write(f"repro lint: cannot read baseline: {exc}\n")
            return 2
    config = load_config().with_overrides(
        select=select,
        ignore=ignore,
        warn_unused_suppressions=args.warn_unused_suppressions,
    )
    cache = None
    if not args.no_cache:
        cache_path = (
            Path(args.cache_path)
            if args.cache_path is not None
            else default_cache_path()
        )
        fingerprint = config_fingerprint(config, sorted(known))
        cache = LintCache.load(cache_path, fingerprint)
    stats: dict[str, int] = {}
    findings = lint_paths(args.paths, config, cache=cache, stats=stats)
    if args.stats:
        sys.stderr.write(
            "reprolint: {files} file(s), {parsed} parsed, "
            "{cache_hits} cache hit(s), {project_runs} project pass(es)\n"
            "reprolint: interprocedural {inter_module_runs} module(s) "
            "checked, {inter_cache_hits} replayed from cache\n"
            "reprolint: file phase {file_phase_ms} ms, "
            "project phase {project_phase_ms} ms, "
            "inter phase {inter_phase_ms} ms\n".format(**stats)
        )
    if args.write_baseline is not None:
        count = write_baseline(findings, Path(args.write_baseline))
        sys.stderr.write(
            f"repro lint: wrote baseline with {count} finding(s) to "
            f"{args.write_baseline}\n"
        )
        return 0
    if baseline is not None:
        findings = apply_baseline(findings, baseline)
    if args.format == "json":
        output = render_json(findings)
    elif args.format == "sarif":
        output = render_sarif(findings)
    else:
        output = render_text(findings)
    if args.output is not None:
        try:
            Path(args.output).write_text(output + "\n", encoding="utf-8")
        except OSError as exc:
            sys.stderr.write(f"repro lint: cannot write {args.output}: {exc}\n")
            return 2
    else:
        sys.stdout.write(output + "\n")
    return 1 if any(f.severity == "error" for f in findings) else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
