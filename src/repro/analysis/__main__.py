"""Entry point: ``python -m repro.analysis [paths...]``.

Also backs the ``repro lint`` CLI subcommand.  Exit status is the number
of findings capped at 1 (0 = clean), so the command gates CI directly.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.config import load_config
from repro.analysis.engine import lint_paths
from repro.analysis.report import render_json, render_text


def build_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    """Populate ``parser`` (or a fresh one) with the lint options."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="reprolint: repo-specific static analysis (RL001-RL006)",
        )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RLxxx",
        help="run only these rules (repeatable, or comma separated)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RLxxx",
        help="skip these rules (repeatable, or comma separated)",
    )
    return parser


def _split_ids(values: Sequence[str]) -> list[str]:
    ids: list[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments.

    Exit status: 0 clean, 1 findings, 2 usage error (unknown rule id or
    missing path) -- a typo in ``--select`` must not silently pass CI.
    """
    from pathlib import Path

    from repro.analysis.engine import Rule

    select, ignore = _split_ids(args.select), _split_ids(args.ignore)
    known = set(Rule.registered())
    unknown = [rule_id for rule_id in [*select, *ignore] if rule_id not in known]
    if unknown:
        sys.stderr.write(
            f"repro lint: unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})\n"
        )
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        sys.stderr.write(
            f"repro lint: path(s) not found: {', '.join(missing)}\n"
        )
        return 2
    config = load_config().with_overrides(select=select, ignore=ignore)
    findings = lint_paths(args.paths, config)
    if args.format == "json":
        output = render_json(findings)
    else:
        output = render_text(findings)
    sys.stdout.write(output + "\n")
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
