"""Content-hash incremental cache for reprolint (``.reprolint_cache.json``).

A lint run is four phases; three have their own cache section:

* **Per file** — keyed by the sha256 of the file's bytes.  A hit skips
  parsing entirely: the stored findings *and* the stored
  :class:`ModuleSummary` are replayed, so later phases still have a
  complete model.  (Flow rules run inside this phase and share its
  entries.)
* **Whole program** — keyed by the hash of every module summary (plus
  the config fingerprint).  Editing a comment re-hashes one file but
  leaves its summary identical, so the project key is unchanged and the
  cross-module rules are skipped too.  Any change that alters the
  import graph, a class table or stage dataflow changes some summary
  and invalidates the project entry.
* **Interprocedural, per module** — keyed by the summary digests of the
  module's call-graph *dependency closure* (itself, everything it calls
  or imports, transitively).  Editing a callee therefore re-lints
  exactly its transitive callers; unrelated modules replay their cached
  findings.  Entries also carry the (line, rule id) pairs a suppression
  comment silenced, so unused-suppression detection stays correct on
  warm runs.

The whole cache is dropped when the config fingerprint or cache format
version changes.  The file is advisory: a corrupt or unreadable cache
degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.config import LintConfig
from repro.analysis.project import SUMMARY_VERSION, ModuleSummary

#: Bump when the cache file layout changes.
#: v2: project section gained "used" suppressions; new per-module
#: "inter" section for interprocedural findings.
CACHE_VERSION = 2

#: Default cache file name, created next to ``pyproject.toml``.
CACHE_FILENAME = ".reprolint_cache.json"


def content_hash(data: bytes) -> str:
    """sha256 hex digest of file content."""
    return hashlib.sha256(data).hexdigest()


def config_fingerprint(config: LintConfig, rule_ids: list[str]) -> str:
    """Hash of everything that changes lint output besides file content."""
    payload = f"{CACHE_VERSION}/{SUMMARY_VERSION}/{sorted(rule_ids)!r}/{config!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _finding_to_dict(finding: Any) -> dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "message": finding.message,
        "severity": finding.severity,
    }


def _finding_from_dict(entry: dict[str, Any]) -> Any:
    from repro.analysis.engine import Finding

    return Finding(
        path=entry["path"],
        line=entry["line"],
        col=entry["col"],
        rule_id=entry["rule"],
        message=entry["message"],
        severity=entry.get("severity", "error"),
    )


def _used_to_json(used: list[tuple[int, str]]) -> list[list[Any]]:
    return [[line, rule_id] for line, rule_id in used]


def _used_from_json(raw: Any) -> list[tuple[int, str]]:
    return [(int(line), str(rule_id)) for line, rule_id in raw]


@dataclass
class FileEntry:
    """Cached per-file lint result."""

    hash: str
    findings: list[Any]
    summary: ModuleSummary | None


@dataclass
class InterEntry:
    """Cached interprocedural result for one module.

    ``key`` hashes the module's dependency-closure digests; ``used``
    records the (line, rule id) pairs suppression comments silenced.
    """

    key: str
    findings: list[Any]
    used: list[tuple[int, str]]


@dataclass
class LintCache:
    """One cache file, loaded eagerly and written back once per run."""

    path: Path
    fingerprint: str
    files: dict[str, FileEntry] = field(default_factory=dict)
    project_key: str = ""
    project_findings: list[Any] | None = None
    #: Per path: suppressed (line, rule id) pairs of the project phase.
    project_used: dict[str, list[tuple[int, str]]] = field(default_factory=dict)
    #: Module name -> cached interprocedural result.
    inter: dict[str, InterEntry] = field(default_factory=dict)
    hits: int = 0
    dirty: bool = False

    @classmethod
    def load(cls, path: Path, fingerprint: str) -> "LintCache":
        """Read the cache; mismatched version/config yields an empty one."""
        cache = cls(path=path, fingerprint=fingerprint)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            data.get("version") != CACHE_VERSION
            or data.get("fingerprint") != fingerprint
        ):
            return cache
        try:
            for file_path, entry in data.get("files", {}).items():
                summary_data = entry.get("summary")
                summary = (
                    ModuleSummary.from_dict(summary_data)
                    if summary_data is not None
                    else None
                )
                if summary is None and summary_data is not None:
                    continue  # stale summary version: treat as a miss
                cache.files[file_path] = FileEntry(
                    hash=entry["hash"],
                    findings=[_finding_from_dict(f) for f in entry["findings"]],
                    summary=summary,
                )
            project = data.get("project")
            if isinstance(project, dict):
                cache.project_key = project.get("key", "")
                findings = project.get("findings")
                if isinstance(findings, list):
                    cache.project_findings = [
                        _finding_from_dict(f) for f in findings
                    ]
                cache.project_used = {
                    path_key: _used_from_json(pairs)
                    for path_key, pairs in project.get("used", {}).items()
                }
            for module_name, raw_entry in data.get("inter", {}).items():
                cache.inter[module_name] = InterEntry(
                    key=raw_entry["key"],
                    findings=[
                        _finding_from_dict(f) for f in raw_entry["findings"]
                    ],
                    used=_used_from_json(raw_entry.get("used", [])),
                )
        except (AttributeError, KeyError, TypeError, ValueError):
            # Structurally-corrupt entries (valid JSON, wrong shape):
            # degrade to a cold run rather than failing the lint.
            return cls(path=path, fingerprint=fingerprint)
        return cache

    # -- per-file phase ------------------------------------------------

    def lookup(self, path: str, file_hash: str) -> FileEntry | None:
        entry = self.files.get(path)
        if entry is not None and entry.hash == file_hash:
            self.hits += 1
            return entry
        return None

    def store(
        self,
        path: str,
        file_hash: str,
        findings: list[Any],
        summary: ModuleSummary | None,
    ) -> None:
        self.files[path] = FileEntry(file_hash, list(findings), summary)
        self.dirty = True

    # -- whole-program phase -------------------------------------------

    def project_lookup(
        self, key: str
    ) -> tuple[list[Any], dict[str, list[tuple[int, str]]]] | None:
        if key and key == self.project_key and self.project_findings is not None:
            return self.project_findings, self.project_used
        return None

    def store_project(
        self,
        key: str,
        findings: list[Any],
        used: dict[str, list[tuple[int, str]]] | None = None,
    ) -> None:
        self.project_key = key
        self.project_findings = list(findings)
        self.project_used = dict(used or {})
        self.dirty = True

    # -- interprocedural phase -----------------------------------------

    def inter_lookup(self, module_name: str, key: str) -> InterEntry | None:
        entry = self.inter.get(module_name)
        if entry is not None and entry.key == key:
            return entry
        return None

    def store_inter(
        self,
        module_name: str,
        key: str,
        findings: list[Any],
        used: list[tuple[int, str]],
    ) -> None:
        self.inter[module_name] = InterEntry(key, list(findings), list(used))
        self.dirty = True

    def prune_inter(self, keep: set[str]) -> None:
        """Drop inter entries for modules no longer in the lint set."""
        stale = [name for name in self.inter if name not in keep]
        for name in stale:
            del self.inter[name]
            self.dirty = True

    # -- persistence ---------------------------------------------------

    def save(self) -> None:
        """Write the cache back if anything changed; failures are ignored."""
        if not self.dirty:
            return
        payload: dict[str, Any] = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": {
                file_path: {
                    "hash": entry.hash,
                    "findings": [_finding_to_dict(f) for f in entry.findings],
                    "summary": (
                        entry.summary.to_dict()
                        if entry.summary is not None
                        else None
                    ),
                }
                for file_path, entry in self.files.items()
            },
            "project": {
                "key": self.project_key,
                "findings": (
                    [_finding_to_dict(f) for f in self.project_findings]
                    if self.project_findings is not None
                    else None
                ),
                "used": {
                    path_key: _used_to_json(pairs)
                    for path_key, pairs in self.project_used.items()
                },
            },
            "inter": {
                module_name: {
                    "key": entry.key,
                    "findings": [_finding_to_dict(f) for f in entry.findings],
                    "used": _used_to_json(entry.used),
                }
                for module_name, entry in self.inter.items()
            },
        }
        try:
            self.path.write_text(
                json.dumps(payload, separators=(",", ":")), encoding="utf-8"
            )
        except OSError:
            pass  # advisory cache: never fail the lint run over it


def default_cache_path(start: Path | None = None) -> Path:
    """Cache location: beside ``pyproject.toml`` if found, else cwd."""
    from repro.analysis.config import find_pyproject

    pyproject = find_pyproject(start)
    base = pyproject.parent if pyproject is not None else Path.cwd()
    return base / CACHE_FILENAME
