"""RL001 -- no unseeded randomness outside tests.

CoveringLSH-style recall guarantees only hold when the LSH
position-sampling (and every other stochastic stage: data generation,
perturbation, calibration sampling) is a deterministic function of an
explicit seed.  A single call into the process-global RNG state makes a
run unreproducible without failing any test, so this rule flags:

* stdlib ``random`` module-level draws (``random.random()``,
  ``random.choice(...)``, ...) which share hidden global state;
* numpy legacy global-state draws (``np.random.rand``,
  ``np.random.randint``, ``np.random.shuffle``, ...);
* ``default_rng()`` / ``random.Random()`` / ``np.random.RandomState()``
  constructed without a seed argument (entropy from the OS).

The fix is to thread a ``seed`` or ``rng`` parameter through, not to
suppress: library code should accept ``np.random.Generator`` and leave
seeding to the caller.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rngpatterns import (
    NUMPY_GLOBAL_RNG,
    RNG_CONSTRUCTORS,
    STDLIB_GLOBAL_RNG,
    has_seed_argument,
)
from repro.analysis.rules.common import dotted_name

# Shared with the whole-program extractor (RL103/RL105); see rngpatterns.
_STDLIB_GLOBAL = STDLIB_GLOBAL_RNG
_NUMPY_GLOBAL = NUMPY_GLOBAL_RNG
_NEEDS_SEED = RNG_CONSTRUCTORS
_has_seed_argument = has_seed_argument


class UnseededRandomness(Rule):
    rule_id = "RL001"
    summary = "no unseeded randomness outside tests"
    interests = (ast.Call,)
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        if _STDLIB_GLOBAL.match(name) or _NUMPY_GLOBAL.match(name):
            yield self.make_finding(
                node,
                ctx,
                f"call to `{name}` uses process-global RNG state; "
                "thread an explicit `rng: np.random.Generator` through instead",
            )
        elif _NEEDS_SEED.match(name) and not _has_seed_argument(node):
            yield self.make_finding(
                node,
                ctx,
                f"`{name}()` without a seed draws OS entropy; "
                "pass an explicit seed for reproducibility",
            )
