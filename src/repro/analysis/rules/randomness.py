"""RL001 -- no unseeded randomness outside tests.

CoveringLSH-style recall guarantees only hold when the LSH
position-sampling (and every other stochastic stage: data generation,
perturbation, calibration sampling) is a deterministic function of an
explicit seed.  A single call into the process-global RNG state makes a
run unreproducible without failing any test, so this rule flags:

* stdlib ``random`` module-level draws (``random.random()``,
  ``random.choice(...)``, ...) which share hidden global state;
* numpy legacy global-state draws (``np.random.rand``,
  ``np.random.randint``, ``np.random.shuffle``, ...);
* ``default_rng()`` / ``random.Random()`` / ``np.random.RandomState()``
  constructed without a seed argument (entropy from the OS).

The fix is to thread a ``seed`` or ``rng`` parameter through, not to
suppress: library code should accept ``np.random.Generator`` and leave
seeding to the caller.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import dotted_name

# stdlib ``random`` functions drawing from the hidden module-global state.
_STDLIB_GLOBAL = re.compile(
    r"^random\.(random|randint|randrange|getrandbits|choice|choices|shuffle|"
    r"sample|uniform|triangular|gauss|normalvariate|lognormvariate|"
    r"expovariate|betavariate|gammavariate|paretovariate|weibullvariate|"
    r"vonmisesvariate|seed)$"
)

# numpy legacy API drawing from the global ``RandomState`` singleton.
_NUMPY_GLOBAL = re.compile(
    r"^(np|numpy)\.random\.(rand|randn|randint|random|random_sample|ranf|"
    r"sample|bytes|choice|shuffle|permutation|uniform|normal|standard_normal|"
    r"binomial|poisson|beta|gamma|exponential|geometric|seed)$"
)

# Constructors that take entropy from the OS when no seed is given.
_NEEDS_SEED = re.compile(
    r"^((np|numpy)\.random\.)?(default_rng|RandomState)$|^random\.Random$"
)


def _has_seed_argument(node: ast.Call) -> bool:
    if node.args:
        first = node.args[0]
        return not (isinstance(first, ast.Constant) and first.value is None)
    for keyword in node.keywords:
        if keyword.arg == "seed" or keyword.arg is None:  # **kwargs may carry it
            return not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
    return False


class UnseededRandomness(Rule):
    rule_id = "RL001"
    summary = "no unseeded randomness outside tests"
    interests = (ast.Call,)
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        if _STDLIB_GLOBAL.match(name) or _NUMPY_GLOBAL.match(name):
            yield self.make_finding(
                node,
                ctx,
                f"call to `{name}` uses process-global RNG state; "
                "thread an explicit `rng: np.random.Generator` through instead",
            )
        elif _NEEDS_SEED.match(name) and not _has_seed_argument(node):
            yield self.make_finding(
                node,
                ctx,
                f"`{name}()` without a seed draws OS entropy; "
                "pass an explicit seed for reproducibility",
            )
