"""RL103 -- parallel workers must be pure(ish) and deterministically seeded.

``repro.perf.parallel_map`` runs its callable in worker *processes*
(or threads, or inline for ``n_jobs=1``) with the golden-parity
guarantee that every configuration is byte-identical.  That only holds
when the worker

* does not mutate state it does not own — a closure/module-level list
  or dict mutated from a worker mutates a *copy* in the process pool
  and the real object inline, silently diverging between configurations;
* draws no unseeded randomness — per-process RNG state would make
  results depend on the fan-out.

This rule resolves the ``fn`` handed to each ``parallel_map`` call site
through the project model (same module or across an import) and flags
``global``/``nonlocal`` declarations, in-place mutation of non-local
names, and unseeded RNG calls in the worker body.  The ``initializer``
callable is exempt from the mutation check — pinning read-only state
into a module global before the first chunk is exactly its documented
job — but its randomness is still checked.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import (
    CallableRef,
    FunctionInfo,
    ModuleSummary,
    ProjectModel,
)


def _resolve_callable(
    model: ProjectModel, module: ModuleSummary, ref: CallableRef
) -> tuple[ModuleSummary, FunctionInfo] | None:
    """Find the summary of the function a callable reference names."""
    if ref.kind == "inline" and ref.inline is not None:
        return module, ref.inline
    if ref.kind != "name":
        return None
    dotted = model.resolve(module.name, ref.name)
    if dotted is None:
        return None
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        owner = model.modules.get(".".join(parts[:split]))
        if owner is None:
            continue
        info = owner.functions.get(".".join(parts[split:]))
        if info is not None:
            return owner, info
    return None


class ParallelWorkerSafety(ProjectRule):
    rule_id = "RL103"
    summary = "parallel_map workers must not mutate shared state or draw entropy"
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        for module in model.modules.values():
            for call in module.parallel_calls:
                if call.worker is not None:
                    resolved = _resolve_callable(model, module, call.worker)
                    if resolved is not None:
                        yield from self._check_worker(*resolved)
                if call.initializer is not None:
                    resolved = _resolve_callable(
                        model, module, call.initializer
                    )
                    if resolved is not None:
                        yield from self._check_initializer(*resolved)

    def _check_worker(
        self, owner: ModuleSummary, info: FunctionInfo
    ) -> Iterable[Finding]:
        for name in sorted(set(info.global_decls)):
            yield self.finding(
                owner.path,
                info.lineno,
                info.col,
                f"parallel worker `{info.qualname}` declares `global {name}`; "
                "workers run in separate processes, so the write never "
                "reaches the parent (return the value instead)",
            )
        seen: set[str] = set()
        for name, lineno in info.mutations:
            if name in seen:
                continue
            seen.add(name)
            yield self.finding(
                owner.path,
                int(lineno),
                1,
                f"parallel worker `{info.qualname}` mutates non-local "
                f"`{name}`; per-process copies diverge from the n_jobs=1 "
                "path (accumulate locally and merge in the caller)",
            )
        yield from self._check_rng(owner, info, "worker")

    def _check_initializer(
        self, owner: ModuleSummary, info: FunctionInfo
    ) -> Iterable[Finding]:
        # Initializers exist to pin module-global read-only state, so
        # mutation is their job; randomness is still non-deterministic.
        yield from self._check_rng(owner, info, "initializer")

    def _check_rng(
        self, owner: ModuleSummary, info: FunctionInfo, role: str
    ) -> Iterable[Finding]:
        for call in info.rng_calls:
            what = (
                "process-global RNG state"
                if call.global_state
                else "an unseeded RNG"
            )
            yield self.finding(
                owner.path,
                call.lineno,
                call.col,
                f"parallel {role} `{info.qualname}` draws from {what} "
                f"(`{call.name}`); results would depend on the process "
                "fan-out — thread an explicit seed through the task payload",
            )
