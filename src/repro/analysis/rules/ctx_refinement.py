"""RL203 -- flow-sensitive refinement of the stage-dataflow contract.

RL104 checks the pipeline's producer/consumer contract flow-
*insensitively*: a stage that writes ``ctx.attr`` anywhere in ``run`` is
assumed to have written it before any of its own reads, so the rule
skips every self-produced attribute.  That hides a real bug shape::

    def run(self, ctx):
        if ctx.parallel.n_jobs > 1:
            ctx.candidate_pairs = self._parallel_pairs(ctx)
        total = len(ctx.candidate_pairs)   # n_jobs == 1: still None!

The write happens on *one* path; the read executes on all of them.
RL203 closes exactly this gap using the flow-sensitive
``ctx_maybe_unset`` facts the model extractor computes per function (a
must-written fixpoint over the function CFG, exception edges included):
for each stage ``run`` method it flags reads of self-written
``PipelineContext`` fields that some path reaches without the write —
unless another stage of an earlier-or-equal kind also writes the
attribute, in which case the runner's sequencing provides the value and
the conditional self-write is a legitimate override.

Runner-provided attributes, properties, and attributes the stage never
writes are out of scope here (the latter stay RL104's department), so
the two rules never double-report one read.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import ProjectModel
from repro.analysis.rules.stage_contract import (
    KIND_ORDER,
    RUNNER_PROVIDED,
    STAGE_BASE_MODULE,
    _effective_dataflow,
    _is_stage_class,
    _stage_kind,
)


class CtxMaybeUnsetReads(ProjectRule):
    rule_id = "RL203"
    summary = "stage reads of conditionally-written ctx attributes"
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        context_fields: set[str] | None = None
        context_properties: set[str] = set()
        for module in model.modules.values():
            info = module.classes.get("PipelineContext")
            if info is not None and info.fields:
                context_fields = set(info.fields)
                context_properties = set(info.properties)
                break
        if context_fields is None:
            return

        # Catalogue every stage's effective dataflow and, per attribute,
        # which (class, rank) pairs write it.
        flows = []
        writers: dict[str, list[tuple[str, int]]] = {}
        for module in model.modules.values():
            if module.name == STAGE_BASE_MODULE:
                continue
            for info in module.classes.values():
                if not _is_stage_class(model, module, info):
                    continue
                kind = _stage_kind(model, module, info)
                if kind is None:
                    continue  # RL104 reports the missing kind
                run = info.methods.get("run")
                if run is None or run.ctx_param is None:
                    continue
                _, writes = _effective_dataflow(module, run)
                key = f"{module.name}:{info.name}"
                flows.append((module, info, kind, run, writes))
                for attr in writes:
                    writers.setdefault(attr, []).append((key, KIND_ORDER[kind]))

        for module, info, kind, run, writes in flows:
            rank = KIND_ORDER[kind]
            key = f"{module.name}:{info.name}"
            for attr, lineno in sorted(run.ctx_maybe_unset.items()):
                if attr in RUNNER_PROVIDED or attr in context_properties:
                    continue
                if attr not in context_fields:
                    continue  # RL104 reports the typo
                if attr not in writes:
                    continue  # never self-written: RL104's department
                provided_elsewhere = any(
                    other_rank <= rank
                    for other_key, other_rank in writers.get(attr, [])
                    if other_key != key
                )
                if provided_elsewhere:
                    continue
                yield self.finding(
                    module.path,
                    int(lineno),
                    1,
                    f"`{info.name}` (kind `{kind}`) reads `ctx.{attr}` on a "
                    "path its own write does not reach, and no other stage "
                    "of an earlier-or-equal kind writes it — the read may "
                    "see the runner's default; write the attribute on every "
                    "path (or hoist the read under the same condition)",
                )
