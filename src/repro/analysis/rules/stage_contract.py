"""RL104 -- the stage-dataflow contract of the linkage pipeline.

Every linker is a list of :class:`repro.pipeline.stage.PipelineStage`
subclasses executed in order by ``LinkagePipeline`` (Algorithm 2's
calibrate -> embed -> block -> candidates -> verify/classify).  The
contract has three machine-checkable parts:

1. every concrete stage class must resolve to one of the six declared
   kinds (inheriting from ``EmbedStage`` etc. or declaring a literal
   ``kind``);
2. a stage list assembled as a literal must order kinds
   non-decreasingly — a verify stage cannot precede the embed stage
   that produces its input;
3. a stage of kind *k* may only read ``PipelineContext`` attributes the
   runner provides or that some stage of kind <= *k* writes, and may
   only touch attributes that exist on ``PipelineContext`` at all
   (typo protection for the untyped ``ctx``).

Reads/writes are gathered from each stage's ``run`` method plus any
same-module helper functions it forwards ``ctx`` to (transitively), so
extracting ``_candidate_arrays(ctx)``-style helpers stays free.  Stage
lists built imperatively (conditional ``append``) are out of scope —
only list literals whose every element resolves to a stage class are
checked, so there are no false positives from merged branches.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    ModuleSummary,
    ProjectModel,
)

#: The six stage kinds, in legal execution order.
KIND_ORDER: dict[str, int] = {
    "calibrate": 0,
    "embed": 1,
    "block": 2,
    "candidates": 3,
    "verify": 4,
    "classify": 5,
}

#: Module defining the abstract stage vocabulary (its classes are exempt).
STAGE_BASE_MODULE = "repro.pipeline.stage"

#: Context attributes the runner itself provides before any stage runs.
RUNNER_PROVIDED = frozenset(
    {
        "dataset_a",
        "dataset_b",
        "rows_a",
        "rows_b",
        "parallel",
        "counters",
        "extras",
    }
)


def _is_stage_class(
    model: ProjectModel, module: ModuleSummary, info: ClassInfo
) -> bool:
    """Does the class derive (transitively) from the stage base module?"""
    for owner, _ in model.base_chain(module.name, info.name):
        if owner.name == STAGE_BASE_MODULE:
            return True
    return False


def _stage_kind(
    model: ProjectModel, module: ModuleSummary, info: ClassInfo
) -> str | None:
    """First valid ``kind`` literal along the base chain, if any."""
    for _, current in model.base_chain(module.name, info.name):
        if current.kind_literal in KIND_ORDER:
            return current.kind_literal
    return None


def _effective_dataflow(
    module: ModuleSummary, run: FunctionInfo
) -> tuple[dict[str, int], dict[str, int]]:
    """ctx reads/writes of ``run`` merged with its ctx-helper closure."""
    reads = dict(run.ctx_reads)
    writes = dict(run.ctx_writes)
    seen: set[str] = set()
    frontier = list(run.ctx_calls)
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        helper = module.functions.get(name)
        if helper is None:
            continue
        for attr, lineno in helper.ctx_reads.items():
            reads.setdefault(attr, run.lineno if lineno else run.lineno)
        for attr in helper.ctx_writes:
            writes.setdefault(attr, run.lineno)
        frontier.extend(helper.ctx_calls)
    return reads, writes


class StageDataflow(ProjectRule):
    rule_id = "RL104"
    summary = "pipeline stages must declare kinds and respect stage dataflow"
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        context_fields, context_properties = self._context_surface(model)

        # Pass 1: find every stage class, its kind, and its dataflow.
        kinds: dict[str, str] = {}  # "module:Class" -> kind
        flows: list[
            tuple[ModuleSummary, ClassInfo, str, dict[str, int], dict[str, int]]
        ] = []
        min_writer: dict[str, int] = {}
        for module in model.modules.values():
            for info in module.classes.values():
                if module.name == STAGE_BASE_MODULE:
                    continue
                if not _is_stage_class(model, module, info):
                    continue
                kind = _stage_kind(model, module, info)
                if kind is None:
                    yield self.finding(
                        module.path,
                        info.lineno,
                        1,
                        f"`{info.name}` subclasses PipelineStage but resolves "
                        "to no stage kind; inherit one of CalibrateStage/"
                        "EmbedStage/BlockStage/CandidateStage/VerifyStage/"
                        "ClassifyStage or declare `kind` from that vocabulary",
                    )
                    continue
                kinds[f"{module.name}:{info.name}"] = kind
                run = info.methods.get("run")
                if run is None or run.ctx_param is None:
                    continue
                reads, writes = _effective_dataflow(module, run)
                flows.append((module, info, kind, reads, writes))
                for attr in writes:
                    rank = KIND_ORDER[kind]
                    if rank < min_writer.get(attr, len(KIND_ORDER)):
                        min_writer[attr] = rank

        # Pass 2: stage-list ordering.
        yield from self._check_stage_lists(model, kinds)

        # Pass 3: per-stage reads against the write catalogue.
        if context_fields is None:
            return
        for module, info, kind, reads, writes in flows:
            rank = KIND_ORDER[kind]
            for attr in sorted(set(reads) | set(writes)):
                if (
                    attr not in context_fields
                    and attr not in context_properties
                ):
                    lineno = reads.get(attr) or writes.get(attr) or info.lineno
                    yield self.finding(
                        module.path,
                        int(lineno),
                        1,
                        f"`{info.name}.run` touches `ctx.{attr}`, which is "
                        "not a PipelineContext field (typo?)",
                    )
            for attr, lineno in sorted(reads.items()):
                if attr in RUNNER_PROVIDED or attr in context_properties:
                    continue
                if attr not in context_fields:
                    continue  # already reported as a typo above
                if attr in writes:
                    continue  # the stage produces it itself
                if min_writer.get(attr, len(KIND_ORDER)) <= rank:
                    continue
                yield self.finding(
                    module.path,
                    int(lineno),
                    1,
                    f"`{info.name}` (kind `{kind}`) reads `ctx.{attr}`, but "
                    "no stage of an earlier-or-equal kind writes it — the "
                    "attribute would still hold the runner's default",
                )

    def _context_surface(
        self, model: ProjectModel
    ) -> tuple[set[str] | None, set[str]]:
        """(fields, properties) of PipelineContext, if it is in the model."""
        for module in model.modules.values():
            info = module.classes.get("PipelineContext")
            if info is not None and info.fields:
                return set(info.fields), set(info.properties)
        return None, set()

    def _check_stage_lists(
        self, model: ProjectModel, kinds: dict[str, str]
    ) -> Iterable[Finding]:
        for module in model.modules.values():
            for stage_list in module.stage_lists:
                resolved: list[tuple[str, str, int]] = []
                complete = True
                for name, lineno in stage_list.elements:
                    found = model.resolve_class(module.name, str(name))
                    if found is None:
                        complete = False
                        break
                    owner, info = found
                    kind = kinds.get(f"{owner.name}:{info.name}")
                    if kind is None:
                        complete = False
                        break
                    resolved.append((info.name, kind, int(lineno)))
                if not complete or len(resolved) < 2:
                    continue  # not (provably) a stage list; stay silent
                for (prev_name, prev_kind, _), (name, kind, lineno) in zip(
                    resolved, resolved[1:]
                ):
                    if KIND_ORDER[kind] < KIND_ORDER[prev_kind]:
                        yield self.finding(
                            module.path,
                            lineno,
                            1,
                            f"stage list in `{stage_list.scope}` runs "
                            f"`{name}` (kind `{kind}`) after `{prev_name}` "
                            f"(kind `{prev_kind}`); stages must be ordered "
                            "calibrate -> embed -> block -> candidates -> "
                            "verify -> classify",
                        )
