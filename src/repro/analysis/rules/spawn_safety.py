"""RL205 -- spawn-safe initializers: no lambdas or nested defs.

``repro.perf.parallel_map`` promises byte-identical results for every
backend and start method — including ``"spawn"``, which pickles the
worker, the initializer and every initializer argument into the child
process.  A lambda or a nested ``def`` cannot be pickled, so a config
that works under ``fork`` (or the thread backend) crashes the moment
someone flips ``start_method="spawn"``; that is precisely the class of
latent divergence the parallel layer exists to rule out.

RL103 already audits the *body* of resolvable workers and initializers
through the project model.  RL205 covers the complementary, per-file,
flow-sensitive half: at every ``ParallelConfig(...)`` /
``parallel_map(...)`` call site, the ``initializer=`` callable and each
element of ``initargs=`` must not be a lambda / generator expression
written inline *or a name currently bound to one*.  "Currently bound"
is the flow-sensitive part — a name rebound from a lambda to a
module-level callable before the call site is legal, and the rule
tracks that through branches with a forward dataflow pass (a name is
flagged only when *every* analysis fact agrees it holds an unpicklable
value; merged branches that disagree stay silent).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.cfg import CFG, CFGNode, evaluated
from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.engine import FileContext, Finding, FlowRule
from repro.analysis.rules.common import dotted_name

#: Environment: sorted (name, "lambda" | "nested def") pairs.
_Env = tuple[tuple[str, str], ...]


def _env_get(env: _Env, name: str) -> str | None:
    for key, value in env:
        if key == name:
            return value
    return None


class _UnpicklableBindings(DataflowAnalysis[_Env]):
    """Forward tracking of names bound to lambdas / nested defs."""

    def boundary(self) -> _Env:
        return ()

    def join(self, states: Sequence[_Env]) -> _Env:
        first = dict(states[0])
        for state in states[1:]:
            other = dict(state)
            first = {
                name: value
                for name, value in first.items()
                if other.get(name) == value
            }
        return tuple(sorted(first.items()))

    def transfer(self, node: CFGNode, state: _Env) -> _Env:
        stmt = node.stmt
        env = dict(state)
        for part in evaluated(node):
            for sub in ast.walk(part):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    env.pop(sub.id, None)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = "nested def"
        elif (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Lambda)
        ):
            env[stmt.targets[0].id] = "lambda"
        return tuple(sorted(env.items()))


class SpawnSafety(FlowRule):
    rule_id = "RL205"
    summary = "ParallelConfig/parallel_map initializers must be picklable"
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_function(
        self,
        graph: CFG,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterable[Finding]:
        states = solve(graph, _UnpicklableBindings())
        reported: set[tuple[int, int, str]] = set()
        for cfg_node in graph.nodes:
            env = states.get(cfg_node.index)
            if env is None:
                continue
            for part in evaluated(cfg_node):
                for sub in ast.walk(part):
                    if not isinstance(sub, ast.Call):
                        continue
                    name = dotted_name(sub.func)
                    if name is None:
                        continue
                    tail = name.split(".")[-1]
                    if tail not in ("ParallelConfig", "parallel_map"):
                        continue
                    for finding in self._check_call(sub, env, ctx):
                        key = (finding.line, finding.col, finding.message)
                        if key not in reported:
                            reported.add(key)
                            yield finding

    def _check_call(
        self, call: ast.Call, env: _Env, ctx: FileContext
    ) -> Iterable[Finding]:
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                yield from self._check_callable(
                    keyword.value, env, ctx, "initializer"
                )
            elif keyword.arg == "initargs":
                value = keyword.value
                if isinstance(value, (ast.Tuple, ast.List)):
                    for element in value.elts:
                        yield from self._check_payload(element, env, ctx)

    def _check_callable(
        self, expr: ast.expr, env: _Env, ctx: FileContext, role: str
    ) -> Iterable[Finding]:
        if isinstance(expr, ast.Lambda):
            yield self.make_finding(
                expr,
                ctx,
                f"{role} is a lambda; spawn start methods pickle the "
                f"{role}, so it must be a module-level callable",
            )
            return
        if isinstance(expr, ast.Name):
            bound = _env_get(env, expr.id)
            if bound is not None:
                yield self.make_finding(
                    expr,
                    ctx,
                    f"{role} `{expr.id}` is bound to a {bound} here; spawn "
                    f"start methods pickle the {role}, so it must be a "
                    "module-level callable",
                )

    def _check_payload(
        self, expr: ast.expr, env: _Env, ctx: FileContext
    ) -> Iterable[Finding]:
        if isinstance(expr, (ast.Lambda, ast.GeneratorExp)):
            what = (
                "a lambda"
                if isinstance(expr, ast.Lambda)
                else "a generator expression"
            )
            yield self.make_finding(
                expr,
                ctx,
                f"initargs element is {what}, which cannot be pickled to "
                "spawn-started workers; pass module-level, picklable values",
            )
            return
        if isinstance(expr, ast.Name):
            bound = _env_get(env, expr.id)
            if bound is not None:
                yield self.make_finding(
                    expr,
                    ctx,
                    f"initargs element `{expr.id}` is bound to a {bound} "
                    "here, which cannot be pickled to spawn-started "
                    "workers; pass module-level, picklable values",
                )
