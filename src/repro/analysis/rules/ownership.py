"""RL305 -- ownership of handles returned by helpers.

RL201 tracks *direct* acquisitions (``open``, ``mmap.mmap``, ...)
inside one function.  But this codebase wraps acquisition in factories
— a helper that opens a segment file and returns the handle, a loader
that returns an mmap-backed reader — and the caller, not the helper,
owns the close.  A caller that binds such a result and lets it fall
out of scope leaks the descriptor; one that discards it outright leaks
it immediately.

The returns-handle set is an interprocedural closure: a function is in
it when some return value is an acquirer call, or the traced binding
of one, or a call to another returns-handle function.  On the caller
side, phase-1 extraction runs an RL201-style may-analysis over bound
call results (``with``/``.close()`` release, rebind/``del`` kill, any
escaping use transfers ownership) and records what survives to an
exit.  This rule joins the two: a surviving binding, or a bare
expression-statement call, whose callee is in the closure is a leak.
Direct acquirer bindings are excluded from the summaries — those stay
RL201's, with its richer per-path anchor.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.engine import Finding, InterContext, InterRule
from repro.analysis.project import ModuleSummary


class HelperHandleOwnership(InterRule):
    rule_id = "RL305"
    summary = "handles returned by helpers must be closed or handed on"
    default_severity = "error"

    def check_module(
        self, module: ModuleSummary, ctx: InterContext
    ) -> Iterable[Finding]:
        for fnode in ctx.graph.module_nodes(module.name):
            info = fnode.info
            for callee, var, line, col in info.leaks:
                target = ctx.graph.resolve_call(
                    module.name, fnode.qualname, callee
                )
                if target is None:
                    continue
                if target in ctx.effects.returns_handle():
                    yield self.finding(
                        module.path,
                        line,
                        col,
                        f"`{var}` holds an open handle returned by "
                        f"`{callee}` and is neither closed nor handed on "
                        "before the function exits",
                    )
            for name, line, col, use in info.call_sites:
                if use != "stmt":
                    continue
                target = ctx.graph.resolve_call(
                    module.name, fnode.qualname, name
                )
                if target is None:
                    continue
                if target in ctx.effects.returns_handle():
                    yield self.finding(
                        module.path,
                        line,
                        col,
                        f"`{name}` returns an open handle that is "
                        "discarded here; bind it and close it (or use "
                        "`with`)",
                    )
