"""RL304 -- parallel purity and determinism through the call graph.

RL103 checks the function handed to ``parallel_map`` directly; a worker
that *delegates* its impurity (``worker`` calls ``_accumulate`` which
appends to a module-level list, or ``_score`` which draws from the
process-global RNG) passed silently.  This rule closes that hole: it
resolves each ``parallel_map`` worker/initializer to its call-graph
node and walks every function reachable from it, flagging helpers that
declare ``global``, mutate non-local state, or draw unseeded
randomness.

The per-role semantics mirror RL103 exactly: helpers reached from a
*worker* are checked for mutation and randomness; helpers reached from
an *initializer* only for randomness (pinning module globals is an
initializer chain's documented job).  The worker function itself is
skipped here — RL103 already reports it, at its definition, with the
better anchor.  Findings anchor at the ``parallel_map`` call site of
the checked module and name the call chain, so the report stays
actionable when the impure helper lives three modules away.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.analysis.engine import Finding, InterContext, InterRule
from repro.analysis.project import CallableRef, ModuleSummary, ParallelCall

_Seen = set[tuple[str, str, str, str]]


class InterproceduralParallelPurity(InterRule):
    rule_id = "RL304"
    summary = "helpers reached from parallel workers must stay pure and seeded"
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_module(
        self, module: ModuleSummary, ctx: InterContext
    ) -> Iterable[Finding]:
        seen: _Seen = set()
        for pcall in module.parallel_calls:
            for ref, role in (
                (pcall.worker, "worker"),
                (pcall.initializer, "initializer"),
            ):
                if ref is None:
                    continue
                yield from self._check_ref(ctx, module, pcall, ref, role, seen)

    def _check_ref(
        self,
        ctx: InterContext,
        module: ModuleSummary,
        pcall: ParallelCall,
        ref: CallableRef,
        role: str,
        seen: _Seen,
    ) -> Iterator[Finding]:
        if ref.kind == "name":
            target = ctx.graph.resolve_call(module.name, pcall.scope, ref.name)
            if target is not None:
                yield from self._walk(
                    ctx, module, pcall, role, target, (ref.name,), seen,
                    check_start=False,
                )
        elif ref.kind == "inline" and ref.inline is not None:
            resolved: set[str] = set()
            for name, _, _, _ in ref.inline.call_sites:
                target = ctx.graph.resolve_call(
                    module.name, ref.inline.qualname, name
                )
                if target is None or target in resolved:
                    continue
                resolved.add(target)
                yield from self._walk(
                    ctx, module, pcall, role, target,
                    (f"<{role}>", ctx.graph.nodes[target].qualname), seen,
                    check_start=True,
                )

    def _walk(
        self,
        ctx: InterContext,
        module: ModuleSummary,
        pcall: ParallelCall,
        role: str,
        start: str,
        base_chain: tuple[str, ...],
        seen: _Seen,
        *,
        check_start: bool,
    ) -> Iterator[Finding]:
        visited: dict[str, tuple[str, ...]] = {start: base_chain}
        queue = [start]
        while queue:
            node_id = queue.pop(0)
            chain = visited[node_id]
            if node_id != start or check_start:
                yield from self._check_helper(
                    ctx, module, pcall, role, node_id, chain, seen
                )
            for callee in sorted(ctx.graph.edges.get(node_id, frozenset())):
                if callee not in visited:
                    visited[callee] = chain + (
                        ctx.graph.nodes[callee].qualname,
                    )
                    queue.append(callee)

    def _check_helper(
        self,
        ctx: InterContext,
        module: ModuleSummary,
        pcall: ParallelCall,
        role: str,
        node_id: str,
        chain: tuple[str, ...],
        seen: _Seen,
    ) -> Iterator[Finding]:
        info = ctx.graph.nodes[node_id].info
        via = " -> ".join(chain)
        if role == "worker":
            for name in sorted(set(info.global_decls)):
                key = (node_id, role, "global", name)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    module.path,
                    pcall.lineno,
                    pcall.col,
                    f"parallel worker chain `{via}` reaches "
                    f"`{info.qualname}`, which declares `global {name}`; "
                    "the write never leaves the worker process",
                )
            mutated: set[str] = set()
            for name, _lineno in info.mutations:
                if name in mutated:
                    continue
                mutated.add(name)
                key = (node_id, role, "mutation", name)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    module.path,
                    pcall.lineno,
                    pcall.col,
                    f"parallel worker chain `{via}` reaches "
                    f"`{info.qualname}`, which mutates non-local `{name}`; "
                    "per-process copies diverge from the n_jobs=1 path",
                )
        for call in info.rng_calls:
            key = (node_id, role, "rng", call.name)
            if key in seen:
                continue
            seen.add(key)
            what = (
                "process-global RNG state"
                if call.global_state
                else "an unseeded RNG"
            )
            yield self.finding(
                module.path,
                pcall.lineno,
                pcall.col,
                f"parallel {role} chain `{via}` reaches `{info.qualname}`, "
                f"which draws from {what} (`{call.name}`); results would "
                "depend on the process fan-out",
            )
