"""RL303 -- typestate on snapshot/engine handles: no use after close.

Objects built from snapshot bundles (``ShardedQueryEngine.from_bundle``,
``ShardedIndex.open``, loaded snapshot indexes) own mmap-backed state:
once ``close()`` runs, a later ``query``/``ingest``/``compact`` call
touches unmapped memory or a half-released WAL.  The lifecycle is a
two-state protocol — *open* until a final method runs, then *closed*
forever — declared in ``[[tool.reprolint.protocols.typestate]]``.

Phase-1 extraction records, for every local bound from a constructor-
style call in a scoped module, the may-set of methods already run on
that local at each later method call (a forward dataflow fixpoint, so
branches and loops are honoured and rebinding the name starts a fresh
trace).  This rule flags any *forbidden* method whose prior-set
contains a *final* method: on some path the object was already closed.
Creator names match the protocol's ``create`` globs as written or
resolved through imports.
"""

from __future__ import annotations

from collections.abc import Iterable
from fnmatch import fnmatch

from repro.analysis.engine import Finding, InterContext, InterRule
from repro.analysis.project import ModuleSummary


class SnapshotTypestate(InterRule):
    rule_id = "RL303"
    summary = "no snapshot/engine method calls after close()"
    default_severity = "error"

    def check_module(
        self, module: ModuleSummary, ctx: InterContext
    ) -> Iterable[Finding]:
        protocols = [
            proto
            for proto in ctx.config.protocols.typestates
            if proto.scoped(module.name)
        ]
        if not protocols:
            return
        for fnode in ctx.graph.module_nodes(module.name):
            for var, creations, calls in fnode.info.receivers:
                for proto in protocols:
                    if not any(
                        self._creates(
                            ctx, module.name, fnode.qualname, creator, proto.create
                        )
                        for creator, _ in creations
                    ):
                        continue
                    suffix = f" — {proto.message}" if proto.message else ""
                    for method, line, col, prior in calls:
                        finals = sorted(set(proto.final) & set(prior))
                        if method in proto.forbidden and finals:
                            closed = "`/`.".join(finals)
                            yield self.finding(
                                module.path,
                                line,
                                col,
                                f"`{var}.{method}()` may run after "
                                f"`{var}.{closed}()` on some path; the "
                                "handle is already released" + suffix,
                            )

    @staticmethod
    def _creates(
        ctx: InterContext,
        module_name: str,
        scope: str,
        creator: str,
        patterns: tuple[str, ...],
    ) -> bool:
        if any(fnmatch(creator, pattern) for pattern in patterns):
            return True
        resolved = ctx.graph.resolve_dotted(module_name, scope, creator)
        return resolved is not None and any(
            fnmatch(resolved, pattern) for pattern in patterns
        )
