"""RL006 -- no ``print()`` in library code.

All user-facing output flows through the reporting layer
(:mod:`repro.evaluation.reporting`), which renders tables/series as
strings and emits them through a single sink.  Stray ``print()`` calls
in library modules bypass that sink, interleave with benchmark output
and cannot be captured or redirected by callers embedding the library.
Scripts whose whole job is printing (``examples/``, ``benchmarks/``) are
excluded via ``[tool.reprolint.rules.RL006].exclude``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule


class PrintCalls(Rule):
    rule_id = "RL006"
    summary = "no print() in library code"
    interests = (ast.Call,)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield self.make_finding(
                node,
                ctx,
                "print() in library code; emit through "
                "repro.evaluation.reporting instead",
            )
