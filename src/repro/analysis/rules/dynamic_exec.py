"""RL002 -- no ``eval``/``exec`` anywhere.

Related PPRL code in the wild parses record files with bare ``eval()``
(see the POPETS DP-for-PPRL scripts), which both executes untrusted
input and hides the record schema from static analysis.  This repo
parses rules with a real tokenizer/parser (:mod:`repro.rules.parser`)
and records with :mod:`csv`; dynamic code execution is never needed and
is banned outright -- there is no sanctioned suppression for this rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import dotted_name

_BANNED = frozenset({"eval", "exec", "builtins.eval", "builtins.exec"})


class DynamicExecution(Rule):
    rule_id = "RL002"
    summary = "no eval/exec anywhere"
    interests = (ast.Call,)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in _BANNED:
            short = name.rsplit(".", 1)[-1]
            yield self.make_finding(
                node,
                ctx,
                f"`{short}()` executes dynamic code; parse input with "
                "csv/ast/repro.rules.parser instead",
            )
