"""RL003 -- no float equality comparisons in probability/distance modules.

The collision probabilities of Defs. 4-6, the Theorem 1 sizing bound and
the evaluation measures are all computed in floating point.  Comparing
such quantities with ``==``/``!=`` silently turns an analytical identity
into a bit-pattern test -- ``p == 1/3`` may hold on one platform and not
another -- so inside the modules that implement the paper's mathematics
this rule flags equality comparisons where either operand *looks like* a
float expression (a float literal, a true division, a ``float()`` call,
or arithmetic over such operands).  Use ``math.isclose`` / tolerance
comparisons, or restructure to integer arithmetic (Hamming distances are
ints; compare those).

Scope: the rule only runs on the modules listed in ``default_include``
(override per-repo via ``[tool.reprolint.rules.RL003].include``).
Integer equality, identity tests and comparisons against ``None`` are
untouched.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import dotted_name

_FLOAT_CALLS = frozenset(
    {
        "float",
        "math.exp",
        "math.log",
        "math.log2",
        "math.log10",
        "math.sqrt",
        "math.pow",
        "np.exp",
        "np.log",
        "np.sqrt",
        "numpy.exp",
        "numpy.log",
        "numpy.sqrt",
    }
)


def _looks_float(node: ast.expr) -> bool:
    """Heuristic: does this expression produce a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _looks_float(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.Mod)):
            return _looks_float(node.left) or _looks_float(node.right)
        return False
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _FLOAT_CALLS
    return False


class FloatEquality(Rule):
    rule_id = "RL003"
    summary = "no float ==/!= in probability/distance modules"
    interests = (ast.Compare,)
    default_include = (
        "rules/probability.py",
        "core/sizing.py",
        "hamming/*",
        "evaluation/metrics.py",
    )

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _looks_float(left) or _looks_float(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.make_finding(
                    node,
                    ctx,
                    f"float `{symbol}` comparison; use math.isclose or an "
                    "explicit tolerance",
                )
                return
