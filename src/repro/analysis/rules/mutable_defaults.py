"""RL005 -- no mutable default arguments.

A mutable default (``def f(xs=[])``) is evaluated once at definition
time and shared across calls.  In a linkage pipeline that reuses
encoder/linker objects across datasets, state leaking between calls
corrupts results silently -- exactly the class of drift this linter
exists to catch.  Use ``None`` plus an in-body default instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class MutableDefaults(Rule):
    rule_id = "RL005"
    summary = "no mutable default arguments"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        args = node.args
        defaults = [*args.defaults, *[d for d in args.kw_defaults if d is not None]]
        for default in defaults:
            if _is_mutable(default):
                label = getattr(node, "name", "<lambda>")
                yield self.make_finding(
                    default,
                    ctx,
                    f"mutable default argument in `{label}`; "
                    "use None and create the value in the body",
                )
