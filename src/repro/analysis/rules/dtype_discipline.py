"""RL202 -- numpy dtype discipline in the packed-Hamming kernels.

The paper's speed claims live and die on the packed ``uint64`` word
arrays staying ``uint64``: a bitwise op between mixed widths, or
arithmetic mixing signed into unsigned, silently promotes (numpy sends
``uint64 + int64`` and ``uint64 / x`` all the way to ``float64``) and
the popcount kernels either crash or go slow-and-wrong.  The existing
per-file rules cannot see this — whether ``xor`` is ``uint64`` at line
40 depends on which assignment reached it.

So RL202 runs an abstract dtype propagation over the function CFG: the
state maps local names to a concrete dtype where every reaching
assignment agrees (``np.uint64(...)`` casts, ``dtype=`` keyword /
positional arguments including ``"<u8"``-style codes, ``.astype`` /
``.view``, subscripts of known arrays, bitwise/arithmetic promotion).
Unknown stays unknown — the rule only fires where both operand dtypes
are positively established, so parameters and untyped intermediates
never produce noise.  Flagged, per operator:

* bitwise ops (``& | ^ << >>``) between two *different* known dtypes
  (a plain-int shift amount or mask literal is fine — numpy keeps the
  array dtype);
* arithmetic mixing a known unsigned with a known signed dtype (numpy
  promotes ``uint64 op int64`` to ``float64``);
* true division with a known unsigned operand (always ``float64``;
  use ``//`` or cast first).

Scoped by default to the kernel-bearing layers (``repro.hamming``,
``repro.core.persist``, ``repro.serve``); widen per-config if another
layer grows numpy kernels.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.cfg import CFG, CFGNode, evaluated
from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.engine import FileContext, Finding, FlowRule
from repro.analysis.rules.common import dotted_name

#: Abstract values: numpy dtype names, plus python scalar literals.
_PY_INT = "python-int"
_PY_FLOAT = "python-float"

_UNSIGNED = frozenset({"uint8", "uint16", "uint32", "uint64"})
_SIGNED = frozenset({"int8", "int16", "int32", "int64"})
_DTYPE_NAMES = _UNSIGNED | _SIGNED | frozenset({"float32", "float64", "bool"})

#: numpy dtype string codes -> canonical names ("<u8", "u8", "=i4", ...).
_DTYPE_CODES = {
    "u1": "uint8",
    "u2": "uint16",
    "u4": "uint32",
    "u8": "uint64",
    "i1": "int8",
    "i2": "int16",
    "i4": "int32",
    "i8": "int64",
    "f4": "float32",
    "f8": "float64",
}

#: Constructors whose dtype is given by a ``dtype=`` kwarg or the
#: positional argument at the mapped index.
_DTYPE_ARG_CONSTRUCTORS = {
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "asfortranarray": 1,
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "arange": -1,  # dtype is keyword-only in practice
    "frombuffer": 1,
    "fromiter": 1,
}

_BITWISE_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.LShift, ast.RShift)
_SHIFT_OPS = (ast.LShift, ast.RShift)
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod, ast.Pow)

#: Environment: tuple of sorted (name, dtype) pairs — hashable, ``==``-able.
_Env = tuple[tuple[str, str], ...]


def _env_get(env: _Env, name: str) -> str | None:
    for key, value in env:
        if key == name:
            return value
    return None


def _dtype_from_expr(expr: ast.expr) -> str | None:
    """Parse an expression *denoting* a dtype: ``np.uint64``, ``"<u8"``."""
    name = dotted_name(expr)
    if name is not None:
        tail = name.split(".")[-1]
        if tail in _DTYPE_NAMES:
            return tail
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        code = expr.value.lstrip("<>=|")
        if code in _DTYPE_CODES:
            return _DTYPE_CODES[code]
        if code in _DTYPE_NAMES:
            return code
    return None


def _call_dtype(call: ast.Call, env: _Env) -> str | None:
    name = dotted_name(call.func)
    if name is not None:
        tail = name.split(".")[-1]
        # ``np.uint64(x)`` and friends: an explicit cast.
        if tail in _DTYPE_NAMES and len(name.split(".")) <= 2:
            return tail
        if tail == "bitwise_count":
            return "uint8"
        position = _DTYPE_ARG_CONSTRUCTORS.get(tail)
        if position is not None:
            for keyword in call.keywords:
                if keyword.arg == "dtype":
                    return _dtype_from_expr(keyword.value)
            if 0 <= position < len(call.args):
                return _dtype_from_expr(call.args[position])
            return None
    if isinstance(call.func, ast.Attribute) and call.func.attr in (
        "astype",
        "view",
    ):
        if call.args:
            return _dtype_from_expr(call.args[0])
        for keyword in call.keywords:
            if keyword.arg == "dtype":
                return _dtype_from_expr(keyword.value)
    return None


def _dtype_of(expr: ast.expr | None, env: _Env) -> str | None:
    """Abstract dtype of an expression, or None when not established."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return None
        if isinstance(expr.value, int):
            return _PY_INT
        if isinstance(expr.value, float):
            return _PY_FLOAT
        return None
    if isinstance(expr, ast.Name):
        return _env_get(env, expr.id)
    if isinstance(expr, ast.Subscript):
        return _dtype_of(expr.value, env)  # a slice/element keeps the dtype
    if isinstance(expr, ast.UnaryOp):
        if isinstance(expr.op, (ast.Invert, ast.UAdd, ast.USub)):
            return _dtype_of(expr.operand, env)
        return None
    if isinstance(expr, ast.Call):
        return _call_dtype(expr, env)
    if isinstance(expr, ast.BinOp):
        return _binop_dtype(expr, env)
    if isinstance(expr, ast.IfExp):
        a = _dtype_of(expr.body, env)
        b = _dtype_of(expr.orelse, env)
        return a if a == b else None
    return None


def _binop_dtype(expr: ast.BinOp, env: _Env) -> str | None:
    left = _dtype_of(expr.left, env)
    right = _dtype_of(expr.right, env)
    if isinstance(expr.op, ast.Div):
        return "float64" if left or right else None
    if isinstance(expr.op, _SHIFT_OPS) and right == _PY_INT:
        return left
    if left == _PY_INT or left == _PY_FLOAT:
        left, right = right, left
    if right in (_PY_INT, _PY_FLOAT):
        if left in _DTYPE_NAMES:
            # Array op python scalar keeps the array dtype (NEP 50), except
            # a float scalar promotes integer arrays.
            if right == _PY_FLOAT and left not in ("float32", "float64"):
                return "float64"
            return left
        if left == right:
            return left
        return None
    if left == right:
        return left
    return None  # mixed known dtypes: promoted — and flagged in the emit pass


class _DtypeEnv(DataflowAnalysis[_Env]):
    """Forward propagation of established dtypes through assignments."""

    def boundary(self) -> _Env:
        return ()

    def join(self, states: Sequence[_Env]) -> _Env:
        first = dict(states[0])
        for state in states[1:]:
            other = dict(state)
            first = {
                name: value
                for name, value in first.items()
                if other.get(name) == value
            }
        return tuple(sorted(first.items()))

    def transfer(self, node: CFGNode, state: _Env) -> _Env:
        stmt = node.stmt
        env = dict(state)
        stored: set[str] = set()
        for part in evaluated(node):
            for sub in ast.walk(part):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    stored.add(sub.id)
        for name in stored:
            env.pop(name, None)
        target: str | None = None
        value_dtype: str | None = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            target = stmt.targets[0].id
            value_dtype = _dtype_of(stmt.value, state)
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.value is not None
        ):
            target = stmt.target.id
            value_dtype = _dtype_of(stmt.value, state)
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            target = stmt.target.id
            synthetic = ast.BinOp(
                left=ast.Name(id=target, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            )
            value_dtype = _binop_dtype(synthetic, state)
        if target is not None and value_dtype is not None:
            env[target] = value_dtype
        return tuple(sorted(env.items()))

    def transfer_exception(self, node: CFGNode, state: _Env) -> _Env:
        env = dict(state)
        for part in evaluated(node):
            for sub in ast.walk(part):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    env.pop(sub.id, None)
        return tuple(sorted(env.items()))


class DtypeDiscipline(FlowRule):
    rule_id = "RL202"
    summary = "packed-kernel arrays must not silently promote out of uint64"
    default_include = (
        "src/repro/hamming/*",
        "src/repro/core/persist.py",
        "src/repro/serve/*",
    )

    def check_function(
        self,
        graph: CFG,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterable[Finding]:
        states = solve(graph, _DtypeEnv())
        reported: set[tuple[int, int]] = set()
        for cfg_node in graph.nodes:
            env = states.get(cfg_node.index)
            if env is None:
                continue  # unreachable
            for part in evaluated(cfg_node):
                for sub in ast.walk(part):
                    if not isinstance(sub, ast.BinOp):
                        continue
                    message = self._violation(sub, env)
                    if message is None:
                        continue
                    key = (sub.lineno, sub.col_offset)
                    if key in reported:
                        continue  # finally-copied nodes revisit statements
                    reported.add(key)
                    yield self.make_finding(sub, ctx, message)

    def _violation(self, op: ast.BinOp, env: _Env) -> str | None:
        left = _dtype_of(op.left, env)
        right = _dtype_of(op.right, env)
        if isinstance(op.op, ast.Div):
            for side in (left, right):
                if side in _UNSIGNED:
                    return (
                        f"true division on `{side}` values promotes to "
                        "float64; use `//` or cast explicitly first"
                    )
            return None
        if left not in _DTYPE_NAMES or right not in _DTYPE_NAMES:
            return None  # at least one side not positively established
        if isinstance(op.op, _BITWISE_OPS):
            if left != right:
                return (
                    f"bitwise op mixes `{left}` and `{right}`; mixed-width "
                    "operands promote (or fail) — cast both sides to one "
                    "dtype first"
                )
            return None
        if isinstance(op.op, _ARITH_OPS):
            if (left in _UNSIGNED and right in _SIGNED) or (
                left in _SIGNED and right in _UNSIGNED
            ):
                return (
                    f"arithmetic mixes `{left}` and `{right}`; numpy "
                    "promotes unsigned-with-signed to float64 — cast to a "
                    "common integer dtype first"
                )
        return None
