"""RL301 -- crash-consistency ordering around publish points.

An atomic-publish sequence is only atomic if durability barriers fence
the rename: the payload must be fsynced *before* ``os.replace`` makes
it visible (otherwise a crash can publish a name pointing at
unwritten bytes), and the parent directory must be fsynced *after* it
(otherwise the rename itself may not survive).  The repo's persist and
shard layers route this through helpers (``fsync_file``,
``_fsync_dir``), so a purely syntactic check cannot see the barrier.

This rule checks the ``[[tool.reprolint.protocols.order]]`` contracts:
for every call site matching the protocol's *anchor* event in a scoped
module, some call completed on **every** path into the site must emit
the *before* event (directly or through the may-emit call-graph
closure), and some call on every completing path out of it must emit
the *after* event.  The after-check deliberately ignores paths that
raise: publish-then-crash is the window write-ahead replay repairs,
and the must-after summaries are computed over normal edges only.

Anchors are matched syntactically (written or resolved dotted name
against the anchor event's patterns) — a helper that *contains* a
rename is that helper's own anchor, in its own module.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.engine import Finding, InterContext, InterRule
from repro.analysis.project import ModuleSummary


class CrashConsistencyOrder(InterRule):
    rule_id = "RL301"
    summary = "publish calls must be fenced by durability barriers"
    default_severity = "error"

    def check_module(
        self, module: ModuleSummary, ctx: InterContext
    ) -> Iterable[Finding]:
        protocols = [
            proto
            for proto in ctx.config.protocols.orders
            if proto.scoped(module.name)
        ]
        if not protocols:
            return
        for fnode in ctx.graph.module_nodes(module.name):
            for name, line, col, before, after in fnode.info.call_orders:
                for proto in protocols:
                    anchor_patterns = ctx.effects.patterns(proto.anchor)
                    if not anchor_patterns or not ctx.effects.name_matches(
                        module.name, fnode.qualname, name, anchor_patterns
                    ):
                        continue
                    suffix = f" — {proto.message}" if proto.message else ""
                    if proto.before and not self._any_emits(
                        ctx, module.name, fnode.qualname, before, proto.before
                    ):
                        yield self.finding(
                            module.path,
                            line,
                            col,
                            f"`{name}` (anchor `{proto.anchor}`) is not "
                            f"preceded by `{proto.before}` on every path "
                            "into this site" + suffix,
                        )
                    if (
                        proto.after
                        and after is not None
                        and not self._any_emits(
                            ctx, module.name, fnode.qualname, after, proto.after
                        )
                    ):
                        yield self.finding(
                            module.path,
                            line,
                            col,
                            f"`{name}` (anchor `{proto.anchor}`) is not "
                            f"followed by `{proto.after}` on every "
                            "completing path out of this site" + suffix,
                        )

    @staticmethod
    def _any_emits(
        ctx: InterContext,
        module_name: str,
        scope: str,
        names: list[str],
        event: str,
    ) -> bool:
        return any(
            ctx.effects.site_emits(module_name, scope, name, event)
            for name in names
        )
