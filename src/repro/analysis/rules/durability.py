"""RL302 -- durability before acknowledgement.

The write-ahead log's contract is that a record acknowledged to the
caller survives a crash.  That reduces to a *must* property on a small
set of named functions (``SegmentWriter.sync``, ``truncate_segment``,
``fsync_file``): every control-flow path that reaches a normal return
must emit the ``fsync`` event first.  A path that raises is exempt —
the caller never got the acknowledgement — which is why the check runs
on the must-emit closure (intersection over paths, exception edges
carrying the pre-state) rather than a syntactic grep.

The checked functions are listed in
``[[tool.reprolint.protocols.require]]``; the event propagates
interprocedurally, so ``sync()`` delegating to a helper that fsyncs on
all its own paths still passes.  Functions that never return normally
(always raise) are vacuously durable.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.engine import Finding, InterContext, InterRule
from repro.analysis.project import ModuleSummary


class DurabilityBeforeAck(InterRule):
    rule_id = "RL302"
    summary = "ack paths must fsync on every normal return"
    default_severity = "error"

    def check_module(
        self, module: ModuleSummary, ctx: InterContext
    ) -> Iterable[Finding]:
        for proto in ctx.config.protocols.requires:
            for dotted in proto.functions:
                node_id = ctx.graph.find_function(dotted)
                if node_id is None:
                    continue
                if node_id.split(":", 1)[0] != module.name:
                    continue  # reported by the defining module's run
                info = ctx.graph.nodes[node_id].info
                if not info.returns_normally:
                    continue
                if node_id in ctx.effects.must_emit(proto.event):
                    continue
                suffix = f" — {proto.message}" if proto.message else ""
                yield self.finding(
                    module.path,
                    info.lineno,
                    info.col,
                    f"`{dotted}` can reach a normal return without "
                    f"emitting `{proto.event}`; callers treat its return "
                    "as a durability acknowledgement" + suffix,
                )
