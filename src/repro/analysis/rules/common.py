"""Shared AST helpers for reprolint rules."""

from __future__ import annotations

import ast


def dotted_name(node: ast.expr) -> str | None:
    """Resolve ``a.b.c`` attribute chains to a dotted string, else None."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
