"""RL004 -- public functions must be fully annotated.

Strict ``mypy`` on ``repro.core``/``repro.hamming``/``repro.rules`` is
part of the CI gate; an un-annotated public function anywhere in
``src/repro/`` erodes that guarantee because inference stops at the
boundary.  This rule flags module-level and class-level functions whose
name has no leading underscore when any parameter (beyond ``self``/
``cls``) or the return type is missing an annotation.  Nested functions
are private by construction and skipped.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_nested(node: ast.AST, ctx: FileContext) -> bool:
    for ancestor in ctx.parent_chain(node):
        if isinstance(ancestor, (*_FUNC_NODES, ast.Lambda)):
            return True
    return False


def _is_method(node: ast.AST, ctx: FileContext) -> bool:
    parent = ctx.parents.get(node)
    return isinstance(parent, ast.ClassDef)


def _is_staticmethod(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return True
    return False


class PublicAnnotations(Rule):
    rule_id = "RL004"
    summary = "public functions need complete annotations"
    interests = _FUNC_NODES
    default_include = ("src/repro/*",)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, _FUNC_NODES)
        if node.name.startswith("_") or _is_nested(node, ctx):
            return
        missing: list[str] = []
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        if _is_method(node, ctx) and not _is_staticmethod(node) and positional:
            positional = positional[1:]  # self / cls carry no annotation
        for arg in [*positional, *args.kwonlyargs]:
            if arg.annotation is None:
                missing.append(arg.arg)
        for variadic in (args.vararg, args.kwarg):
            if variadic is not None and variadic.annotation is None:
                missing.append(f"*{variadic.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            yield self.make_finding(
                node,
                ctx,
                f"public function `{node.name}` missing annotations: "
                + ", ".join(missing),
            )
