"""RL101/RL102 -- import cycles and the architecture contract.

docs/architecture.md promises a layered design: lower layers never
import higher ones, and ``repro.perf`` / ``repro.pipeline`` /
``repro.analysis`` are *import-leaf* packages that at module level
import only numpy and the stdlib.  Until now that held by convention.
These rules make it machine-checked:

* **RL101** — no module-level import cycles anywhere in the project.
  Runtime (function-body) imports are the sanctioned escape hatch for
  deliberate re-entrancy (e.g. ``repro.protocol`` <-> ``repro.core``)
  and are not edges here; a cycle among *top-level* imports would make
  module initialisation order-dependent.
* **RL102** — every module-level import crossing a package boundary
  must be declared in ``[tool.reprolint.architecture]``.  The table
  lists, per package unit, which units it may import; ``leaf`` units
  may only be allowed edges to other leaves (validated here too).  With
  no table configured the rule is silent.

A *package unit* is the first two dotted segments of a module name
(``repro.core.linker`` -> ``repro.core``); top-level modules are their
own unit (``repro.cli``).  ``TYPE_CHECKING``-guarded imports are
typing-only and exempt from both rules.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import ImportRecord, ProjectModel


def package_unit(module_name: str) -> str:
    """First two dotted segments: the granularity of the contract."""
    parts = module_name.split(".")
    return ".".join(parts[:2])


def _strongly_connected(
    edges: dict[str, set[str]]
) -> Iterator[list[str]]:
    """Tarjan's SCC over the import graph (iterative, deterministic)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0

    for root in sorted(edges):
        if root in index:
            continue
        # Iterative DFS: (node, iterator over successors).
        work: list[tuple[str, Iterator[str]]] = []
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(sorted(edges.get(root, ())))))
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                yield component


class ImportCycles(ProjectRule):
    rule_id = "RL101"
    summary = "no module-level import cycles"

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        edges: dict[str, set[str]] = {name: set() for name in model.modules}
        records: dict[tuple[str, str], ImportRecord] = {}
        for source, target, record in model.resolved_edges(("module",)):
            if source == target:
                continue  # guessed self-edges from ``from . import x``
            edges[source].add(target)
            records.setdefault((source, target), record)
        for component in _strongly_connected(edges):
            if len(component) < 2:
                continue
            members = sorted(component)
            anchor = members[0]
            in_cycle = set(component)
            record = next(
                records[(anchor, target)]
                for target in sorted(edges[anchor])
                if target in in_cycle
            )
            summary = model.modules[anchor]
            yield self.finding(
                summary.path,
                record.lineno,
                record.col,
                "module-level import cycle among "
                f"{', '.join(members)}; break one edge with a runtime "
                "(function-body) import",
            )


class ArchitectureContract(ProjectRule):
    rule_id = "RL102"
    summary = "module-level imports must follow the architecture contract"
    default_exclude = ("tests/*", "test_*.py", "conftest.py")

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        contract = config.architecture
        if not contract.present:
            return
        # Contract self-consistency: a leaf may only depend on leaves.
        leaves = set(contract.leaf)
        for leaf in sorted(leaves):
            for target in contract.allowed.get(leaf, ()):
                if target not in leaves:
                    yield self.finding(
                        "pyproject.toml",
                        1,
                        1,
                        f"[tool.reprolint.architecture] declares leaf "
                        f"`{leaf}` but allows it to import non-leaf "
                        f"`{target}`",
                    )
        # Only modules under the contract's top-level packages are held
        # to it; unrelated trees (tests, scripts) pass through.
        tops = {unit.split(".")[0] for unit in contract.allowed}
        tops.update(leaf.split(".")[0] for leaf in leaves)
        for source, target, record in model.resolved_edges(("module",)):
            source_unit = package_unit(source)
            target_unit = package_unit(target)
            if source_unit == target_unit:
                continue
            if source_unit.split(".")[0] not in tops:
                continue
            if target_unit in contract.allowed.get(source_unit, ()):
                continue
            summary = model.modules[source]
            leaf_note = (
                " (import-leaf package: move the import into the function "
                "that needs it)"
                if source_unit in leaves
                else ""
            )
            yield self.finding(
                summary.path,
                record.lineno,
                record.col,
                f"`{source}` imports `{target}` at module level, but the "
                f"architecture contract allows `{source_unit}` no edge to "
                f"`{target_unit}`{leaf_note}",
            )
