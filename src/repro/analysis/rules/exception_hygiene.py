"""RL204 -- exception-path hygiene: swallowed SnapshotError, dead code.

Two checks that both need the function's control flow rather than its
syntax:

1. **Swallowed ``SnapshotError``.**  The persistence layer funnels every
   corrupt-bundle condition into :class:`repro.core.persist.SnapshotError`
   (a ``ValueError`` subclass) so serving code can distinguish "bad
   bundle" from "bad query".  A ``try`` whose body does snapshot I/O and
   whose matching handler is broad (bare, ``Exception``,
   ``BaseException`` or ``ValueError``) without re-raising turns a
   corrupt index into a silent empty result.  Handlers that name
   ``SnapshotError`` explicitly, or that contain a ``raise``, are fine.

2. **Unreachable statements.**  Code after a ``raise``/``return``/
   ``break``/``continue`` (or after a ``while True`` with no ``break``)
   never runs; in reviewed serving code this is almost always a
   refactoring leftover silently disabling a cleanup or a fallback.  The
   check is CFG-reachability, so branches merging back in are never
   false-flagged, and only the *first* statement of each dead run is
   reported.  Dynamic terminators the CFG does not model (``sys.exit``,
   ``assert False``) keep their successors "reachable" — conservative in
   the no-false-positives direction.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.cfg import CFG
from repro.analysis.engine import FileContext, Finding, FlowRule
from repro.analysis.rules.common import dotted_name

#: Handler types broad enough to (also) catch SnapshotError.
_BROAD_TYPES = frozenset({"BaseException", "Exception", "ValueError"})

#: Call-name tails that positively indicate snapshot I/O.
_SNAPSHOT_CALLS = frozenset(
    {"load_index_snapshot", "save_index_snapshot", "from_snapshot"}
)


def _own_statements(
    body: list[ast.stmt],
) -> Iterator[tuple[list[ast.stmt], int, ast.stmt]]:
    """Yield (containing block, index, stmt) without entering nested defs."""
    for index, stmt in enumerate(body):
        yield body, index, stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field_body in _stmt_blocks(stmt):
            yield from _own_statements(field_body)


def _stmt_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", []):
        yield handler.body
    for case in getattr(stmt, "cases", []):
        yield case.body


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _raises_snapshot_error(body: list[ast.stmt]) -> bool:
    """Does executing this block plausibly raise SnapshotError?"""
    wrapper = ast.Module(body=body, type_ignores=[])
    for node in _walk_own(wrapper):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            tail = name.split(".")[-1] if name else None
            if tail is None and isinstance(node.func, ast.Attribute):
                tail = node.func.attr
            if tail in _SNAPSHOT_CALLS:
                return True
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = dotted_name(target)
            if name is not None and name.split(".")[-1] == "SnapshotError":
                return True
    return False


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return []
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for expr in types:
        name = dotted_name(expr)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


class ExceptionHygiene(FlowRule):
    rule_id = "RL204"
    summary = "broad handlers must not swallow SnapshotError; no dead code"

    def check_function(
        self,
        graph: CFG,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterable[Finding]:
        yield from self._check_swallowed(node, ctx)
        yield from self._check_unreachable(graph, node, ctx)

    # -- swallowed SnapshotError --------------------------------------

    def _check_swallowed(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, ctx: FileContext
    ) -> Iterable[Finding]:
        for sub in _walk_own(node):
            if not isinstance(sub, ast.Try):
                continue  # (except* groups are out of scope)
            if not _raises_snapshot_error(sub.body):
                continue
            for handler in sub.handlers:
                names = _handler_names(handler)
                if "SnapshotError" in names:
                    break  # explicitly handled before any broad handler
                is_broad = handler.type is None or any(
                    name in _BROAD_TYPES for name in names
                )
                if not is_broad:
                    continue
                reraises = any(
                    isinstance(inner, ast.Raise)
                    for inner in _walk_own(handler)
                )
                if not reraises:
                    yield self.make_finding(
                        handler,
                        ctx,
                        "broad `except` swallows SnapshotError raised by "
                        "snapshot I/O in this `try`; catch SnapshotError "
                        "explicitly or re-raise",
                    )
                break  # exceptions stop at the first matching handler

    # -- unreachable statements ---------------------------------------

    def _check_unreachable(
        self,
        graph: CFG,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterable[Finding]:
        reachable_ids = graph.reachable()
        # A finally-copied statement backs several nodes; it is live if
        # *any* copy is.
        live: set[int] = set()
        dead: set[int] = set()
        for cfg_node in graph.nodes:
            if cfg_node.stmt is None:
                continue
            if cfg_node.index in reachable_ids:
                live.add(id(cfg_node.stmt))
            else:
                dead.add(id(cfg_node.stmt))
        dead -= live
        if not dead:
            return
        for block, index, stmt in _own_statements(node.body):
            if id(stmt) not in dead:
                continue
            prev_dead = index > 0 and id(block[index - 1]) in dead
            if prev_dead:
                continue  # only report the first statement of a dead run
            if index == 0:
                # The whole block is dead because its parent is; the
                # parent (or the run it belongs to) carries the report.
                parent = ctx.parents.get(stmt)
                if parent is not None and id(parent) in dead:
                    continue
            yield self.make_finding(
                stmt,
                ctx,
                "statement is unreachable (every path into it ends in "
                "raise/return/break/continue)",
            )
