"""Rule plugins for reprolint.

Importing this package registers every rule with
:class:`repro.analysis.engine.Rule` /
:class:`repro.analysis.engine.ProjectRule`; the engine discovers them
through ``Rule.registered()`` and ``ProjectRule.registered()``.

Per-file rules (phase 1, one AST at a time):

========  =============================================  =======================
Rule id   Module                                         Guards
========  =============================================  =======================
RL001     :mod:`repro.analysis.rules.randomness`         determinism (seeds)
RL002     :mod:`repro.analysis.rules.dynamic_exec`       no ``eval``/``exec``
RL003     :mod:`repro.analysis.rules.float_equality`     probability comparisons
RL004     :mod:`repro.analysis.rules.annotations`        public API typing
RL005     :mod:`repro.analysis.rules.mutable_defaults`   call-to-call isolation
RL006     :mod:`repro.analysis.rules.print_calls`        output via reporting
========  =============================================  =======================

Whole-program rules (phase 2, over the
:class:`~repro.analysis.project.ProjectModel`):

========  =============================================  =======================
Rule id   Module                                         Guards
========  =============================================  =======================
RL101     :mod:`repro.analysis.rules.architecture`       no import cycles
RL102     :mod:`repro.analysis.rules.architecture`       layering contract
RL103     :mod:`repro.analysis.rules.parallel_safety`    golden parallel parity
RL104     :mod:`repro.analysis.rules.stage_contract`     stage kinds + dataflow
RL105     :mod:`repro.analysis.rules.seeding`            seed propagation
========  =============================================  =======================
"""

# NOTE: no ``from __future__ import annotations`` here -- the future
# statement binds the name ``annotations`` in this namespace and would
# shadow the submodule import below.
from repro.analysis.rules import (  # noqa: F401
    annotations,
    architecture,
    dynamic_exec,
    float_equality,
    mutable_defaults,
    parallel_safety,
    print_calls,
    randomness,
    seeding,
    stage_contract,
)

__all__ = [
    "annotations",
    "architecture",
    "dynamic_exec",
    "float_equality",
    "mutable_defaults",
    "parallel_safety",
    "print_calls",
    "randomness",
    "seeding",
    "stage_contract",
]
