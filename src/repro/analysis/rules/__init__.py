"""Rule plugins for reprolint.

Importing this package registers every rule with
:class:`repro.analysis.engine.Rule`; the engine discovers them through
``Rule.registered()``.  Each module holds one check:

========  =============================================  =======================
Rule id   Module                                         Guards
========  =============================================  =======================
RL001     :mod:`repro.analysis.rules.randomness`         determinism (seeds)
RL002     :mod:`repro.analysis.rules.dynamic_exec`       no ``eval``/``exec``
RL003     :mod:`repro.analysis.rules.float_equality`     probability comparisons
RL004     :mod:`repro.analysis.rules.annotations`        public API typing
RL005     :mod:`repro.analysis.rules.mutable_defaults`   call-to-call isolation
RL006     :mod:`repro.analysis.rules.print_calls`        output via reporting
========  =============================================  =======================
"""

# NOTE: no ``from __future__ import annotations`` here -- the future
# statement binds the name ``annotations`` in this namespace and would
# shadow the submodule import below.
from repro.analysis.rules import (  # noqa: F401
    annotations,
    dynamic_exec,
    float_equality,
    mutable_defaults,
    print_calls,
    randomness,
)

__all__ = [
    "annotations",
    "dynamic_exec",
    "float_equality",
    "mutable_defaults",
    "print_calls",
    "randomness",
]
