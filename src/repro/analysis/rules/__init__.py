"""Rule plugins for reprolint.

Importing this package registers every rule with
:class:`repro.analysis.engine.Rule` /
:class:`repro.analysis.engine.ProjectRule`; the engine discovers them
through ``Rule.registered()`` and ``ProjectRule.registered()``.

Per-file rules (phase 1, one AST at a time):

========  =============================================  =======================
Rule id   Module                                         Guards
========  =============================================  =======================
RL001     :mod:`repro.analysis.rules.randomness`         determinism (seeds)
RL002     :mod:`repro.analysis.rules.dynamic_exec`       no ``eval``/``exec``
RL003     :mod:`repro.analysis.rules.float_equality`     probability comparisons
RL004     :mod:`repro.analysis.rules.annotations`        public API typing
RL005     :mod:`repro.analysis.rules.mutable_defaults`   call-to-call isolation
RL006     :mod:`repro.analysis.rules.print_calls`        output via reporting
========  =============================================  =======================

Whole-program rules (phase 2, over the
:class:`~repro.analysis.project.ProjectModel`):

========  =============================================  =======================
Rule id   Module                                         Guards
========  =============================================  =======================
RL101     :mod:`repro.analysis.rules.architecture`       no import cycles
RL102     :mod:`repro.analysis.rules.architecture`       layering contract
RL103     :mod:`repro.analysis.rules.parallel_safety`    golden parallel parity
RL104     :mod:`repro.analysis.rules.stage_contract`     stage kinds + dataflow
RL105     :mod:`repro.analysis.rules.seeding`            seed propagation
RL203     :mod:`repro.analysis.rules.ctx_refinement`     conditional ctx writes
========  =============================================  =======================

Flow-sensitive rules (phase 3, one CFG + dataflow fixpoint per
function; see :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`):

========  =============================================  =======================
Rule id   Module                                         Guards
========  =============================================  =======================
RL201     :mod:`repro.analysis.rules.resource_lifetime`  handles closed on all paths
RL202     :mod:`repro.analysis.rules.dtype_discipline`   packed-uint64 kernels
RL204     :mod:`repro.analysis.rules.exception_hygiene`  SnapshotError, dead code
RL205     :mod:`repro.analysis.rules.spawn_safety`       picklable initializers
========  =============================================  =======================

(RL203 consumes flow-sensitive ``ctx_maybe_unset`` facts from the model
extractor but joins them *across* stages, so it registers as a phase-2
project rule.)

Interprocedural rules (phase 4, per module over the
:class:`~repro.analysis.callgraph.CallGraph` and the
``[tool.reprolint.protocols]`` table; see
:mod:`repro.analysis.summaries`):

========  ====================================================  =======================
Rule id   Module                                                Guards
========  ====================================================  =======================
RL301     :mod:`repro.analysis.rules.crash_consistency`         fsync fences publishes
RL302     :mod:`repro.analysis.rules.durability`                fsync before ack
RL303     :mod:`repro.analysis.rules.snapshot_typestate`        no use after close
RL304     :mod:`repro.analysis.rules.interprocedural_purity`    pure worker chains
RL305     :mod:`repro.analysis.rules.ownership`                 helper-returned handles
========  ====================================================  =======================

RL007 (unused/unknown suppression comments) has no rule class: the
engine synthesises it from the used-suppression record of every phase.
It is off by default; enable with ``--warn-unused-suppressions``.
"""

# NOTE: no ``from __future__ import annotations`` here -- the future
# statement binds the name ``annotations`` in this namespace and would
# shadow the submodule import below.
from repro.analysis.rules import (  # noqa: F401
    annotations,
    architecture,
    crash_consistency,
    ctx_refinement,
    dtype_discipline,
    durability,
    dynamic_exec,
    exception_hygiene,
    float_equality,
    interprocedural_purity,
    mutable_defaults,
    ownership,
    parallel_safety,
    print_calls,
    randomness,
    resource_lifetime,
    seeding,
    snapshot_typestate,
    spawn_safety,
    stage_contract,
)

__all__ = [
    "annotations",
    "architecture",
    "crash_consistency",
    "ctx_refinement",
    "dtype_discipline",
    "durability",
    "dynamic_exec",
    "exception_hygiene",
    "float_equality",
    "interprocedural_purity",
    "mutable_defaults",
    "ownership",
    "parallel_safety",
    "print_calls",
    "randomness",
    "resource_lifetime",
    "seeding",
    "snapshot_typestate",
    "spawn_safety",
    "stage_contract",
]
