"""RL201 -- file/mmap handles must be closed on every path.

The serving layer keeps snapshot payloads memory-mapped for the life of
a worker process; everything else that opens an OS resource — bundle
files, temporary spill files, sockets — must release it on *every* path
out of the function, exception paths included.  A ``with`` statement or
a ``try/finally`` close is the idiom; a handle that escapes (returned,
passed to another callable, stored on an object) transfers ownership
and is the caller's problem.

The analysis is a forward may-analysis over the function CFG: the state
is the set of ``(name, line, col)`` handles acquired by a plain
``name = open(...)``-style assignment and not yet closed or escaped.
``.close()`` (called or passed as a callback) kills; rebinding, ``del``,
``with name:`` and any other use of the bare name that hands it to
other code kill conservatively — RL201 only flags handles the function
*provably* keeps to itself and then drops.  Exception edges carry the
kill-but-not-gen state, so ``f = open(p)`` raising mid-statement never
leaks a phantom handle, while a raise *after* the assignment does leak
the real one unless a ``finally`` closes it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.cfg import CFG, CFGNode, evaluated
from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.engine import FileContext, Finding, FlowRule
from repro.analysis.rules.common import dotted_name
from repro.analysis.summaries import is_acquirer_name

#: One tracked handle: (variable name, acquisition line, acquisition col).
_Handle = tuple[str, int, int]
_State = frozenset[_Handle]


def _is_acquirer(call: ast.Call) -> bool:
    # The acquirer table lives in repro.analysis.summaries so RL305's
    # returns-handle closure and this rule can never disagree.
    name = dotted_name(call.func)
    return name is not None and is_acquirer_name(name)


def _acquired_name(stmt: ast.AST | None) -> str | None:
    """Variable bound by ``name = <acquirer>(...)``, else None."""
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and isinstance(stmt.value, ast.Call)
        and _is_acquirer(stmt.value)
    ):
        return stmt.targets[0].id
    return None


class _OpenHandles(DataflowAnalysis[_State]):
    """Forward may-analysis of handles acquired but not yet released."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    def boundary(self) -> _State:
        return frozenset()

    def join(self, states: Sequence[_State]) -> _State:
        result = states[0]
        for state in states[1:]:
            result |= state
        return result

    def transfer(self, node: CFGNode, state: _State) -> _State:
        return self._apply(node, state, with_gen=True)

    def transfer_exception(self, node: CFGNode, state: _State) -> _State:
        # A raising statement completes its kills (close was attempted,
        # escape may have happened) but never its own acquisition.
        return self._apply(node, state, with_gen=False)

    def _apply(self, node: CFGNode, state: _State, *, with_gen: bool) -> _State:
        killed = self._killed_names(node)
        if killed:
            state = frozenset(h for h in state if h[0] not in killed)
        if with_gen:
            name = _acquired_name(node.stmt)
            if name is not None:
                stmt = node.stmt
                assert stmt is not None
                # Re-acquisition into the same name replaces the old fact.
                state = frozenset(h for h in state if h[0] != name) | {
                    (name, stmt.lineno, stmt.col_offset + 1)
                }
        return state

    def _killed_names(self, node: CFGNode) -> set[str]:
        """Names this node closes, escapes, rebinds or deletes."""
        killed: set[str] = set()
        stmt = node.stmt
        acquired = _acquired_name(stmt)
        for part in evaluated(node):
            for sub in ast.walk(part):
                if not isinstance(sub, ast.Name):
                    continue
                if isinstance(sub.ctx, (ast.Store, ast.Del)):
                    if sub.id != acquired:
                        killed.add(sub.id)
                    continue
                killed.update(self._use_kills(sub))
        return killed

    def _use_kills(self, name: ast.Name) -> set[str]:
        """Classify one Load of a name: close/escape kill, or neutral."""
        parent = self.ctx.parents.get(name)
        if isinstance(parent, ast.Attribute):
            # ``f.close()`` or ``f.close`` as a callback releases it;
            # any other attribute/method access leaves it open.
            return {name.id} if parent.attr == "close" else set()
        if isinstance(parent, ast.withitem) and parent.context_expr is name:
            return {name.id}  # ``with f:`` manages the release
        if parent is None or isinstance(parent, ast.Expr):
            return set()  # a bare ``f`` statement neither closes nor escapes
        # Anything else — call argument, return/yield value, assignment
        # value, container element, comparison — hands the handle to code
        # we cannot see; ownership conservatively leaves this function.
        return {name.id}


class ResourceLifetime(FlowRule):
    rule_id = "RL201"
    summary = "acquired file/mmap handles must be closed on all paths"

    def check_function(
        self,
        graph: CFG,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterable[Finding]:
        analysis = _OpenHandles(ctx)
        states = solve(graph, analysis)
        findings: dict[_Handle, Finding] = {}
        # Handles still open when the function returns normally.
        for name, line, col in sorted(states.get(graph.exit, frozenset())):
            findings[(name, line, col)] = Finding(
                path=ctx.path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                message=(
                    f"`{name}` acquires a closeable resource that is not "
                    "closed on every path to return; use `with` or close "
                    "it in a `finally`"
                ),
            )
        # Handles leaked only when an exception escapes the function.
        for name, line, col in sorted(states.get(graph.raise_exit, frozenset())):
            findings.setdefault(
                (name, line, col),
                Finding(
                    path=ctx.path,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"`{name}` acquires a closeable resource that leaks "
                        "when an exception escapes; use `with` or close it "
                        "in a `finally`"
                    ),
                ),
            )
        yield from findings.values()
        # Acquirer results dropped on the floor (not bound, returned or
        # passed anywhere) can never be closed.
        reachable = graph.reachable()
        seen: set[tuple[int, int]] = set()
        for cfg_node in graph.nodes:
            if cfg_node.index not in reachable:
                continue
            stmt = cfg_node.stmt
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and _is_acquirer(stmt.value)
            ):
                key = (stmt.lineno, stmt.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield self.make_finding(
                    stmt,
                    ctx,
                    "resource acquired and immediately discarded; bind it "
                    "and close it, or use `with`",
                )
