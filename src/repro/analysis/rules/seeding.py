"""RL105 -- seeds flow in through parameters, not buried literals.

RL001 already rejects *unseeded* RNG construction.  This rule closes
the complementary hole: a function body that calls
``np.random.default_rng(42)`` (or ``random.Random(7)``,
``RandomState(0)``) with a hard-coded literal is "reproducible" but
unconfigurable — the experiment runner cannot vary trials with
``base_seed + i``, and two call sites silently share one stream.
Library functions must receive their seed as a parameter, a ``*Config``
dataclass field, or any other expression the caller controls; literal
seeds belong in defaults, configs, examples and tests.

Module-level constructions are left alone (a module-constant generator
is already a global-state smell RL001-adjacent reviews catch) and so is
every non-literal seed source: names, attributes
(``self.seed``, ``config.seed``) and computed expressions all show the
seed came from outside the body.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import ProjectModel


class SeedPropagation(ProjectRule):
    rule_id = "RL105"
    summary = "RNG seeds must come from parameters or config, not body literals"
    default_exclude = (
        "tests/*",
        "test_*.py",
        "conftest.py",
        "examples/*",
        "benchmarks/*",
    )

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        for module in model.modules.values():
            for construction in module.rng_constructions:
                if construction.scope == "<module>":
                    continue
                if construction.seed_kind != "literal":
                    continue
                yield self.finding(
                    module.path,
                    construction.lineno,
                    construction.col,
                    f"`{construction.name}({construction.seed_repr})` in "
                    f"`{construction.scope}` hard-codes its seed; accept it "
                    "as a parameter or a Config field so callers control "
                    "the stream",
                )
