"""Classification-rule AST (Sections 5.3-5.4).

A matching decision model in the paper is a boolean *classification rule*
over attribute-level distance predicates ``u^(f_i) <= theta^(f_i)``, combined
with AND / OR / NOT.  The same AST drives two things:

* the **matching step** — evaluated against measured per-attribute Hamming
  distances (vectorised over candidate-pair arrays);
* the **blocking step** — compiled into rule-aware blocking structures by
  :mod:`repro.rules.blocking` using the probability bounds of
  :mod:`repro.rules.probability`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

DistanceMap = Mapping[str, "np.ndarray | int | float"]


class RuleError(ValueError):
    """Raised for malformed rules."""


@dataclass(frozen=True)
class Rule:
    """Base class for rule nodes."""

    def evaluate(self, distances: DistanceMap) -> np.ndarray | bool:
        """Evaluate against per-attribute distances (scalar or arrays)."""
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """All attribute names referenced by this rule."""
        raise NotImplementedError

    def comparisons(self) -> tuple["Comparison", ...]:
        """All leaf comparisons, left-to-right."""
        raise NotImplementedError

    def __and__(self, other: "Rule") -> "And":
        return And((self, other))

    def __or__(self, other: "Rule") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Comparison(Rule):
    """A distance predicate ``u^(attribute) <= threshold``."""

    attribute: str
    threshold: float

    def __post_init__(self) -> None:
        if not self.attribute:
            raise RuleError("comparison needs an attribute name")
        if self.threshold < 0:
            raise RuleError(f"threshold must be >= 0, got {self.threshold}")

    def evaluate(self, distances: DistanceMap) -> np.ndarray | bool:
        try:
            value = distances[self.attribute]
        except KeyError:
            raise RuleError(f"no distance supplied for attribute {self.attribute!r}") from None
        return np.asarray(value) <= self.threshold if not np.isscalar(value) else value <= self.threshold

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def comparisons(self) -> tuple["Comparison", ...]:
        return (self,)

    def __str__(self) -> str:
        threshold = int(self.threshold) if float(self.threshold).is_integer() else self.threshold
        return f"({self.attribute} <= {threshold})"


def _as_children(children: Sequence[Rule]) -> tuple[Rule, ...]:
    out = tuple(children)
    if len(out) < 2:
        raise RuleError("AND/OR needs at least two operands")
    for child in out:
        if not isinstance(child, Rule):
            raise RuleError(f"rule operands must be Rule nodes, got {type(child).__name__}")
    return out


@dataclass(frozen=True)
class And(Rule):
    """Conjunction: every child predicate must hold (Definition 4)."""

    children: tuple[Rule, ...]

    def __init__(self, children: Sequence[Rule]):
        object.__setattr__(self, "children", _as_children(children))

    def evaluate(self, distances: DistanceMap) -> np.ndarray | bool:
        result = self.children[0].evaluate(distances)
        for child in self.children[1:]:
            result = result & child.evaluate(distances)
        return result

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(cmp for c in self.children for cmp in c.comparisons())

    def __str__(self) -> str:
        return "[" + " & ".join(str(c) for c in self.children) + "]"


@dataclass(frozen=True)
class Or(Rule):
    """Disjunction: at least one child predicate must hold (Definition 5)."""

    children: tuple[Rule, ...]

    def __init__(self, children: Sequence[Rule]):
        object.__setattr__(self, "children", _as_children(children))

    def evaluate(self, distances: DistanceMap) -> np.ndarray | bool:
        result = self.children[0].evaluate(distances)
        for child in self.children[1:]:
            result = result | child.evaluate(distances)
        return result

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(cmp for c in self.children for cmp in c.comparisons())

    def __str__(self) -> str:
        return "[" + " | ".join(str(c) for c in self.children) + "]"


@dataclass(frozen=True)
class Not(Rule):
    """Negation: the child predicate must *not* hold (Definition 6)."""

    child: Rule

    def __post_init__(self) -> None:
        if not isinstance(self.child, Rule):
            raise RuleError(f"NOT operand must be a Rule node, got {type(self.child).__name__}")

    def evaluate(self, distances: DistanceMap) -> np.ndarray | bool:
        result = self.child.evaluate(distances)
        return ~result if isinstance(result, np.ndarray) else not result

    def attributes(self) -> frozenset[str]:
        return self.child.attributes()

    def comparisons(self) -> tuple[Comparison, ...]:
        return self.child.comparisons()

    def __str__(self) -> str:
        return f"!{self.child}"


def comparison(attribute: str, threshold: float) -> Comparison:
    """Shorthand constructor: ``comparison('f1', 4)`` is ``u^(f1) <= 4``."""
    return Comparison(attribute, threshold)


def conjunction(thresholds: Mapping[str, float]) -> Rule:
    """AND of one comparison per mapping entry (a common rule shape).

    >>> str(conjunction({'f1': 4, 'f2': 8}))
    '[(f1 <= 4) & (f2 <= 8)]'
    """
    if not thresholds:
        raise RuleError("thresholds must be non-empty")
    comparisons = [Comparison(a, t) for a, t in thresholds.items()]
    return comparisons[0] if len(comparisons) == 1 else And(comparisons)
