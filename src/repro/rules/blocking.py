"""Attribute-level, rule-aware LSH blocking (Section 5.4).

The standard HB mechanism samples bits uniformly from the whole
record-level c-vector and is therefore blind to the classification rule
applied during matching.  The rule-aware blocker compiles the rule AST into
*blocking structures*:

* an **AND** group of comparisons becomes one structure whose composite
  keys concatenate ``K^(f_i)`` bits sampled *within each attribute's bit
  range*, with ``L`` from Equation (2) using the product bound
  (Definition 4) — e.g. L=178 for the paper's NCVR rule C1;
* an **OR** builds an independent structure per arm (``L x n_c`` hash
  tables), with the shared ``L`` from the inclusion-exclusion bound
  (Definition 5); a pair is formulated when it appears in *any* arm;
* a **NOT** keeps its child's structure unmodified — only the outcome is
  inverted ("we just change what we consider as a true outcome"): a pair
  passes when it is *not* formulated there.  NOT therefore cannot generate
  candidates and is only valid alongside a positive conjunct;
* compound rules (paper's C1-C3 compositions) nest these plans; AND over
  sub-plans intersects their formulated-pair sets, OR unions them.

After blocking, the matching step evaluates the *actual* rule on measured
per-attribute Hamming distances of the candidate pairs (Algorithm 2 with
the rule as the classification function).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.encoder import RecordEncoder
from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.lsh import BlockingGroup, CompositeHash
from repro.rules.ast import And, Comparison, Not, Or, Rule, RuleError
from repro.rules.probability import (
    AttributeParams,
    rule_collision_probability,
    rule_table_count,
)


@dataclass(frozen=True)
class StructureInfo:
    """Descriptive summary of one compiled blocking structure."""

    rule: str
    attributes: tuple[str, ...]
    n_tables: int
    collision_probability: float


class _Structure:
    """One blocking structure: ``L`` groups with compound attribute-level keys."""

    def __init__(
        self,
        comparisons: tuple[Comparison, ...],
        encoder: RecordEncoder,
        params: Mapping[str, AttributeParams],
        n_tables: int,
        rng: np.random.Generator,
    ):
        if not comparisons:
            raise RuleError("blocking structure needs at least one comparison")
        self.comparisons = comparisons
        self.groups: list[BlockingGroup] = []
        for __ in range(n_tables):
            positions: list[int] = []
            for cmp in comparisons:
                layout = encoder.layout(cmp.attribute)
                k = params[cmp.attribute].k
                sampled = rng.integers(layout.offset, layout.stop, size=k)
                positions.extend(int(b) for b in sampled)
            self.groups.append(BlockingGroup(CompositeHash(tuple(positions))))

    @property
    def n_tables(self) -> int:
        return len(self.groups)

    def index(self, matrix: BitMatrix) -> None:
        for group in self.groups:
            group.insert_matrix(matrix)

    def members(self, matrix_b: BitMatrix) -> np.ndarray:
        """Sorted unique encoded pairs ``a * n_B + b`` formulated in any table."""
        n_b = matrix_b.n_rows
        parts: list[np.ndarray] = []
        for group in self.groups:
            keys_b = group.composite.keys_for(matrix_b)
            order = np.argsort(keys_b, kind="stable")
            sorted_keys = keys_b[order]
            boundaries = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
            for i, start in enumerate(boundaries):
                stop = boundaries[i + 1] if i + 1 < len(boundaries) else len(sorted_keys)
                key = sorted_keys[start].item() if sorted_keys.dtype != object else sorted_keys[start]
                ids_a = group.bucket(key)
                if not ids_a:
                    continue
                rows_b = order[start:stop]
                rows_a = np.asarray(ids_a, dtype=np.int64)
                parts.append(
                    (np.repeat(rows_a, len(rows_b)) * n_b + np.tile(rows_b, len(rows_a)))
                )
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))


class _Plan:
    """Base class of compiled blocking plans."""

    structures: list[_Structure]

    def members(self, matrix_b: BitMatrix) -> np.ndarray:
        raise NotImplementedError


class _LeafPlan(_Plan):
    def __init__(self, structure: _Structure):
        self.structure = structure
        self.structures = [structure]

    def members(self, matrix_b: BitMatrix) -> np.ndarray:
        return self.structure.members(matrix_b)


class _OrPlan(_Plan):
    def __init__(self, children: list[_Plan]):
        self.children = children
        self.structures = [s for child in children for s in child.structures]

    def members(self, matrix_b: BitMatrix) -> np.ndarray:
        out = self.children[0].members(matrix_b)
        for child in self.children[1:]:
            out = np.union1d(out, child.members(matrix_b))
        return out


class _AndPlan(_Plan):
    def __init__(self, positives: list[_Plan], negatives: list[_Plan]):
        if not positives:
            raise RuleError("a conjunction needs at least one positive (non-NOT) operand")
        self.positives = positives
        self.negatives = negatives
        self.structures = [
            s for plan in (*positives, *negatives) for s in plan.structures
        ]

    def members(self, matrix_b: BitMatrix) -> np.ndarray:
        out = self.positives[0].members(matrix_b)
        for plan in self.positives[1:]:
            out = np.intersect1d(out, plan.members(matrix_b), assume_unique=True)
        for plan in self.negatives:
            out = np.setdiff1d(out, plan.members(matrix_b), assume_unique=True)
        return out


class RuleAwareBlocker:
    """Rule-aware attribute-level LSH blocking/matching (cBV-HB, Section 5.4).

    Parameters
    ----------
    rule:
        The classification rule (AST from :mod:`repro.rules.ast` or
        :func:`repro.rules.parser.parse_rule`).
    encoder:
        The calibrated :class:`~repro.core.encoder.RecordEncoder`; attribute
        names of the rule must match the encoder's.
    k:
        ``K^(f_i)`` per attribute appearing in the rule.
    delta:
        Miss probability for Equation (2).
    n_tables:
        Explicit per-structure table budget, overriding Equation (2) for
        the positive structures (NOT exclusion structures keep their
        Definition 6 sizing).  Used by equal-budget comparisons such as
        the Figure 6 benchmark.
    seed:
        Seed for sampling the base-hash bit positions.

    Examples
    --------
    >>> from repro.core.cvector import CVectorEncoder
    >>> from repro.rules.parser import parse_rule
    >>> enc = RecordEncoder([CVectorEncoder(15, seed=0), CVectorEncoder(15, seed=1),
    ...                      CVectorEncoder(68, seed=2)])
    >>> blocker = RuleAwareBlocker(parse_rule('(f1<=4) & (f2<=4) & (f3<=8)'),
    ...                            enc, k={'f1': 5, 'f2': 5, 'f3': 10}, seed=9)
    >>> blocker.total_tables
    178
    """

    def __init__(
        self,
        rule: Rule,
        encoder: RecordEncoder,
        k: Mapping[str, int],
        delta: float = 0.1,
        n_tables: int | None = None,
        seed: int | None = None,
    ):
        self.rule = rule
        self.encoder = encoder
        self.delta = delta
        self._n_tables_override = n_tables
        self.params: dict[str, AttributeParams] = {}
        for attribute in sorted(rule.attributes()):
            if attribute not in k:
                raise RuleError(f"no K supplied for attribute {attribute!r}")
            layout = encoder.layout(attribute)
            self.params[attribute] = AttributeParams(m=layout.width, k=k[attribute])
        for cmp in rule.comparisons():
            if cmp.threshold > encoder.layout(cmp.attribute).width:
                raise RuleError(
                    f"threshold {cmp.threshold} exceeds attribute width "
                    f"{encoder.layout(cmp.attribute).width} for {cmp.attribute!r}"
                )
        self._rng = np.random.default_rng(seed)
        self._infos: list[StructureInfo] = []
        self._plan = self._compile(rule)
        self._matrix_a: BitMatrix | None = None

    # -- compilation -----------------------------------------------------------

    def _build_structure(self, comparisons: tuple[Comparison, ...], n_tables: int) -> _LeafPlan:
        structure = _Structure(comparisons, self.encoder, self.params, n_tables, self._rng)
        sub_rule = comparisons[0] if len(comparisons) == 1 else And(comparisons)
        self._infos.append(
            StructureInfo(
                rule=str(sub_rule),
                attributes=tuple(cmp.attribute for cmp in comparisons),
                n_tables=n_tables,
                collision_probability=rule_collision_probability(sub_rule, self.params),
            )
        )
        return _LeafPlan(structure)

    def _compile(self, rule: Rule, n_tables: int | None = None) -> _Plan:
        """Compile ``rule`` into a plan.

        ``n_tables`` overrides Equation (2) for structures below an OR node
        (the OR's shared L, per Definition 5).
        """
        if n_tables is None:
            n_tables = self._n_tables_override
        if isinstance(rule, Comparison):
            tables = n_tables or rule_table_count(rule, self.params, self.delta)
            return self._build_structure((rule,), tables)
        if isinstance(rule, And):
            flat = _flatten_and(rule)
            comparisons = tuple(c for c in flat if isinstance(c, Comparison))
            others = [c for c in flat if isinstance(c, (Or, And))]
            nots = [c for c in flat if isinstance(c, Not)]
            positives: list[_Plan] = []
            if comparisons:
                sub_rule = comparisons[0] if len(comparisons) == 1 else And(comparisons)
                tables = n_tables or rule_table_count(sub_rule, self.params, self.delta)
                positives.append(self._build_structure(comparisons, tables))
            positives.extend(self._compile(child) for child in others)
            # Definition 6: a NOT operand keeps its child's (unmodified)
            # blocking structure, but its L comes from substituting
            # p_not = 1 - p_child into Equation (2) — a small number of
            # tables, which limits false exclusions of borderline pairs.
            negatives = [
                self._compile(
                    child.child,
                    n_tables=rule_table_count(child, self.params, self.delta),
                )
                for child in nots
            ]
            if not positives:
                raise RuleError(
                    "rule has no positive predicate to block on (NOT-only conjunction)"
                )
            if len(positives) == 1 and not negatives:
                return positives[0]
            return _AndPlan(positives, negatives)
        if isinstance(rule, Or):
            # Definition 5: one structure per arm, all sharing the OR's L.
            shared = n_tables or rule_table_count(rule, self.params, self.delta)
            children = [self._compile(child, n_tables=shared) for child in rule.children]
            return _OrPlan(children)
        if isinstance(rule, Not):
            raise RuleError(
                "a NOT operand cannot generate candidates on its own; "
                "combine it with a positive predicate via AND"
            )
        raise RuleError(f"unknown rule node {type(rule).__name__}")

    # -- public API ------------------------------------------------------------------

    @property
    def structures(self) -> list[StructureInfo]:
        """Summaries of the compiled blocking structures."""
        return list(self._infos)

    @property
    def total_tables(self) -> int:
        """Total number of hash tables across all structures."""
        return sum(info.n_tables for info in self._infos)

    def index(self, matrix_a: BitMatrix) -> None:
        """Hash dataset A's record-level c-vectors into every structure."""
        if matrix_a.n_bits != self.encoder.total_bits:
            raise RuleError(
                f"matrix width {matrix_a.n_bits} != encoder width {self.encoder.total_bits}"
            )
        for structure in self._plan.structures:
            structure.index(matrix_a)
        self._matrix_a = matrix_a

    def candidate_pairs(self, matrix_b: BitMatrix) -> tuple[np.ndarray, np.ndarray]:
        """Formulated pairs according to the rule-aware plan semantics."""
        if self._matrix_a is None:
            raise RuleError("call index(matrix_a) before candidate_pairs")
        encoded = self._plan.members(matrix_b)
        n_b = matrix_b.n_rows
        return encoded // n_b, encoded % n_b

    def match(
        self, matrix_b: BitMatrix
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """Block, then apply the classification rule to measured distances.

        Returns ``(rows_a, rows_b, distances)`` of the *accepted* pairs,
        with ``distances`` the per-attribute distance arrays restricted to
        the accepted pairs.
        """
        rows_a, rows_b = self.candidate_pairs(matrix_b)
        if rows_a.size == 0:
            return rows_a, rows_b, {}
        assert self._matrix_a is not None
        distances = self.encoder.attribute_distances(self._matrix_a, rows_a, matrix_b, rows_b)
        accepted = np.asarray(self.rule.evaluate(distances))
        kept = {name: dist[accepted] for name, dist in distances.items()}
        return rows_a[accepted], rows_b[accepted], kept


def _flatten_and(rule: And) -> tuple[Rule, ...]:
    """Flatten nested ANDs: ``(a & b) & c -> (a, b, c)``."""
    out: list[Rule] = []
    for child in rule.children:
        if isinstance(child, And):
            out.extend(_flatten_and(child))
        else:
            out.append(child)
    return tuple(out)
