"""A small parser for textual classification rules.

Grammar (``|`` binds loosest, then ``&``, then ``!``)::

    rule        := or_expr
    or_expr     := and_expr (('|' | 'or')  and_expr)*
    and_expr    := unary    (('&' | 'and') unary)*
    unary       := ('!' | 'not') unary | atom
    atom        := '(' or_expr ')' | '[' or_expr ']' | comparison
    comparison  := NAME '<=' NUMBER

Examples accepted (paper rules C1-C3)::

    (f1 <= 4) & (f2 <= 4) & (f3 <= 8)
    [(f1 <= 4) & (f2 <= 4)] | (f3 <= 8)
    (f1 <= 4) & !(f2 <= 4)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.rules.ast import And, Comparison, Not, Or, Rule, RuleError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>[\(\[])|(?P<rparen>[\)\]])|(?P<le><=)|"
    r"(?P<and>&+|\band\b|∧)|(?P<or>\|+|\bor\b|∨)|(?P<not>!|\bnot\b|¬|~)|"
    r"(?P<number>\d+(?:\.\d+)?)|(?P<name>[A-Za-z_][A-Za-z0-9_]*))",
    flags=re.IGNORECASE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise RuleError(f"cannot tokenise rule at position {pos}: {remainder[:20]!r}")
        kind = match.lastgroup
        assert kind is not None
        tokens.append(_Token(kind, match.group(kind), match.start(kind)))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> _Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RuleError(f"unexpected end of rule: {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise RuleError(
                f"expected {kind} at position {token.position} in {self._source!r}, "
                f"got {token.text!r}"
            )
        return token

    def parse(self) -> Rule:
        rule = self._or_expr()
        trailing = self._peek()
        if trailing is not None:
            raise RuleError(
                f"trailing input at position {trailing.position} in {self._source!r}: "
                f"{trailing.text!r}"
            )
        return rule

    def _or_expr(self) -> Rule:
        children = [self._and_expr()]
        while (token := self._peek()) is not None and token.kind == "or":
            self._next()
            children.append(self._and_expr())
        return children[0] if len(children) == 1 else Or(children)

    def _and_expr(self) -> Rule:
        children = [self._unary()]
        while (token := self._peek()) is not None and token.kind == "and":
            self._next()
            children.append(self._unary())
        return children[0] if len(children) == 1 else And(children)

    def _unary(self) -> Rule:
        token = self._peek()
        if token is not None and token.kind == "not":
            self._next()
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Rule:
        token = self._peek()
        if token is None:
            raise RuleError(f"unexpected end of rule: {self._source!r}")
        if token.kind == "lparen":
            self._next()
            inner = self._or_expr()
            self._expect("rparen")
            return inner
        return self._comparison()

    def _comparison(self) -> Comparison:
        name = self._expect("name")
        self._expect("le")
        number = self._expect("number")
        value = float(number.text)
        return Comparison(name.text, int(value) if value.is_integer() else value)


def parse_rule(text: str) -> Rule:
    """Parse a textual classification rule into a :class:`Rule` AST.

    >>> str(parse_rule('(f1 <= 4) & !(f2 <= 8)'))
    '[(f1 <= 4) & !(f2 <= 8)]'
    >>> str(parse_rule('[(f1<=4) and (f2<=4)] or (f3<=8)'))
    '[[(f1 <= 4) & (f2 <= 4)] | (f3 <= 8)]'
    """
    tokens = _tokenize(text)
    if not tokens:
        raise RuleError("empty rule")
    return _Parser(tokens, text).parse()
