"""Collision-probability bounds for rule-aware blocking (Definitions 4-6).

For a record-level c-vector pair whose attribute-level distances satisfy
``u^(f_i) <= theta^(f_i)``, the attribute-level success probability of one
base hash function on attribute ``f_i`` is

    p^(f_i) = 1 - theta^(f_i) / m_opt^(f_i)

and a composite hash over that attribute agrees with probability at least
``(p^(f_i))^(K^(f_i))``.  Rules compose (assuming attribute independence):

* **AND** (Definition 4): the compound blocking key agrees iff every
  attribute's part agrees — the product of the per-attribute bounds.
* **OR**  (Definition 5): the pair collides in at least one per-attribute
  table — inclusion-exclusion, i.e. ``1 - prod(1 - p_arm)`` under
  independence (identical to Equation (11) for two arms).
* **NOT** (Definition 6): the pair does not collide — ``1 - p_child``.

Substituting these bounds for ``p^K`` in Equation (2) yields the number of
blocking groups each structure needs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.hamming.theory import optimal_table_count
from repro.rules.ast import And, Comparison, Not, Or, Rule, RuleError


@dataclass(frozen=True)
class AttributeParams:
    """Blocking parameters of one attribute: c-vector width and ``K^(f_i)``."""

    m: int
    k: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise RuleError(f"attribute width m must be >= 1, got {self.m}")
        if self.k < 1:
            raise RuleError(f"attribute K must be >= 1, got {self.k}")


def attribute_success_probability(threshold: float, m: int) -> float:
    """``p^(f_i) = 1 - theta^(f_i) / m_opt^(f_i)``.

    >>> attribute_success_probability(4, 15)  # doctest: +ELLIPSIS
    0.733...
    """
    if m < 1:
        raise RuleError(f"m must be >= 1, got {m}")
    if not 0 <= threshold <= m:
        raise RuleError(f"threshold must be in [0, {m}], got {threshold}")
    return 1.0 - threshold / m


def comparison_collision_probability(cmp: Comparison, params: Mapping[str, AttributeParams]) -> float:
    """``(p^(f_i))^(K^(f_i))`` for one comparison leaf."""
    try:
        attr = params[cmp.attribute]
    except KeyError:
        raise RuleError(f"no blocking parameters for attribute {cmp.attribute!r}") from None
    return attribute_success_probability(cmp.threshold, attr.m) ** attr.k


def rule_collision_probability(rule: Rule, params: Mapping[str, AttributeParams]) -> float:
    """Lower bound on the per-blocking-group collision probability of ``rule``.

    Recursively applies Definitions 4-6.  For the paper's rule
    ``C1 = (f1<=4) & (f2<=4) & (f3<=8)`` with the NCVR parameters of
    Table 3 this evaluates to ~0.0129, giving L = 178 via Equation (2).

    >>> from repro.rules.parser import parse_rule
    >>> params = {'f1': AttributeParams(15, 5), 'f2': AttributeParams(15, 5),
    ...           'f3': AttributeParams(68, 10)}
    >>> rule = parse_rule('(f1<=4) & (f2<=4) & (f3<=8)')
    >>> round(rule_collision_probability(rule, params), 4)
    0.0129
    """
    if isinstance(rule, Comparison):
        return comparison_collision_probability(rule, params)
    if isinstance(rule, And):
        prob = 1.0
        for child in rule.children:
            prob *= rule_collision_probability(child, params)
        return prob
    if isinstance(rule, Or):
        miss = 1.0
        for child in rule.children:
            miss *= 1.0 - rule_collision_probability(child, params)
        return 1.0 - miss
    if isinstance(rule, Not):
        return 1.0 - rule_collision_probability(rule.child, params)
    raise RuleError(f"unknown rule node {type(rule).__name__}")


def rule_table_count(
    rule: Rule, params: Mapping[str, AttributeParams], delta: float = 0.1
) -> int:
    """Equation (2) with the rule-aware bound substituted for ``p^K``.

    Reproduces the paper's block-group counts for scheme PH / rule C1:

    >>> from repro.rules.parser import parse_rule
    >>> ncvr = {'f1': AttributeParams(15, 5), 'f2': AttributeParams(15, 5),
    ...         'f3': AttributeParams(68, 10)}
    >>> rule_table_count(parse_rule('(f1<=4) & (f2<=4) & (f3<=8)'), ncvr)
    178
    >>> dblp = {'f1': AttributeParams(14, 5), 'f2': AttributeParams(19, 5),
    ...         'f3': AttributeParams(226, 12)}
    >>> rule_table_count(parse_rule('(f1<=4) & (f2<=4) & (f3<=8)'), dblp)
    62
    """
    return optimal_table_count(rule_collision_probability(rule, params), delta)
