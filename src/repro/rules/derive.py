"""Deriving Hamming thresholds from an error model (Section 5.1's payoff).

The whole point of the compact Hamming embedding is that thresholds stop
being empirical: because distances in H-hat correspond to *types of
errors* — a substitution moves at most ``2q`` bits, an insert/delete at
most ``2q - 1`` — the threshold for "at most ``e`` errors" is simply the
worst-case bit budget of those errors.  This module turns a perturbation
model (how many errors of which kinds each attribute may carry) into the
attribute-level thresholds, the record-level threshold, and the full
classification rule, so nothing is ever "set after experimenting
exhaustively" (the paper's description of every baseline's thresholds).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.data.perturb import ALL_OPERATIONS, Operation
from repro.rules.ast import And, Comparison, Rule


def operation_bit_cost(operation: Operation, q: int = 2) -> int:
    """Worst-case Hamming movement of one edit operation on q-gram vectors.

    Section 5.1: a substitution replaces ``q`` q-grams on each side
    (``<= 2q`` differing positions); an insert or delete replaces ``q``
    q-grams on one side and ``q - 1`` on the other (``<= 2q - 1``).

    >>> operation_bit_cost(Operation.SUBSTITUTE)
    4
    >>> operation_bit_cost(Operation.DELETE)
    3
    """
    if q < 2:
        raise ValueError(f"the Section 5.1 bounds need q >= 2, got {q}")
    if operation is Operation.SUBSTITUTE:
        return 2 * q
    return 2 * q - 1


def error_budget(
    n_errors: int, operations: Iterable[Operation] = ALL_OPERATIONS, q: int = 2
) -> int:
    """Worst-case bit budget of ``n_errors`` edits drawn from ``operations``.

    >>> error_budget(1)   # any single edit: the substitution bound
    4
    >>> error_budget(2)   # the paper's theta for the doubly-edited Address
    8
    """
    if n_errors < 0:
        raise ValueError(f"n_errors must be >= 0, got {n_errors}")
    ops = tuple(operations)
    if not ops:
        raise ValueError("operations must be non-empty")
    worst = max(operation_bit_cost(op, q) for op in ops)
    return n_errors * worst


@dataclass(frozen=True)
class DerivedThresholds:
    """The outcome: per-attribute and record-level Hamming thresholds."""

    attribute_thresholds: dict[str, int]
    q: int

    @property
    def record_threshold(self) -> int:
        """The loosest record-level distance a conforming pair can reach."""
        return sum(self.attribute_thresholds.values())

    def rule(self) -> Rule:
        """The conjunctive classification rule these thresholds induce."""
        comparisons = [
            Comparison(name, threshold)
            for name, threshold in self.attribute_thresholds.items()
            if threshold > 0
        ]
        if not comparisons:
            raise ValueError("error model constrains no attribute")
        return comparisons[0] if len(comparisons) == 1 else And(comparisons)


def derive_thresholds(
    errors_per_attribute: Mapping[str, int],
    operations: Iterable[Operation] = ALL_OPERATIONS,
    q: int = 2,
) -> DerivedThresholds:
    """Thresholds for "attribute ``f`` carries at most ``e`` edits".

    The paper's PH model — one edit on the two name fields, two on the
    address — derives to exactly the experiment's thresholds:

    >>> derived = derive_thresholds({'f1': 1, 'f2': 1, 'f3': 2})
    >>> derived.attribute_thresholds
    {'f1': 4, 'f2': 4, 'f3': 8}
    >>> derived.record_threshold
    16
    >>> str(derived.rule())
    '[(f1 <= 4) & (f2 <= 4) & (f3 <= 8)]'

    And PL — one edit somewhere in the record — gives the record-level
    theta = 4 used throughout Section 6:

    >>> error_budget(1)
    4
    """
    if not errors_per_attribute:
        raise ValueError("errors_per_attribute must be non-empty")
    thresholds = {
        name: error_budget(errors, operations, q)
        for name, errors in errors_per_attribute.items()
    }
    return DerivedThresholds(attribute_thresholds=thresholds, q=q)
