"""Classification rules: AST, parser, probability bounds and rule-aware blocking."""

from repro.rules.ast import (
    And,
    Comparison,
    Not,
    Or,
    Rule,
    RuleError,
    comparison,
    conjunction,
)
from repro.rules.blocking import RuleAwareBlocker, StructureInfo
from repro.rules.derive import (
    DerivedThresholds,
    derive_thresholds,
    error_budget,
    operation_bit_cost,
)
from repro.rules.parser import parse_rule
from repro.rules.probability import (
    AttributeParams,
    attribute_success_probability,
    comparison_collision_probability,
    rule_collision_probability,
    rule_table_count,
)

__all__ = [
    "And",
    "AttributeParams",
    "Comparison",
    "DerivedThresholds",
    "derive_thresholds",
    "error_budget",
    "operation_bit_cost",
    "Not",
    "Or",
    "Rule",
    "RuleAwareBlocker",
    "RuleError",
    "StructureInfo",
    "attribute_success_probability",
    "comparison",
    "comparison_collision_probability",
    "conjunction",
    "parse_rule",
    "rule_collision_probability",
    "rule_table_count",
]
