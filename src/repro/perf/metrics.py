"""Fixed log-scale histograms for latency and size distributions.

Serving performance is a *distribution* story: the sums the engines
already accumulate (``time_query_s`` and friends) recover the mean, but
tail latency — the p99 a serving SLO is written against — needs the
shape.  :class:`LogHistogram` records values into a fixed geometric
bucket grid, so it is O(1) per observation, bounded in memory, mergeable
across shards/processes, and its snapshot serialises into benchmark JSON
from which any percentile is derivable offline.

The grid is deterministic (no sampling, no reservoir randomness):
bucket ``i`` covers ``(bound[i-1], bound[i]]`` with bounds spaced
``buckets_per_decade`` per power of ten between ``lo`` and ``hi``, plus
an underflow bucket at or below ``lo`` and an overflow bucket above
``hi``.  Percentiles are conservative: they report the upper bound of
the bucket containing the requested rank, so a reported p99 is never
below the true p99 by more than one bucket's resolution.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil


class LogHistogram:
    """Log-scale bucket histogram with deterministic percentiles.

    Parameters
    ----------
    lo:
        Upper bound of the underflow bucket — values at or below ``lo``
        land there.  Must be positive.
    hi:
        Lower bound of the overflow bucket — values above ``hi`` land
        there.
    buckets_per_decade:
        Grid resolution: bounds per power of ten.  The default 8 gives
        ~33% relative bucket width, ample for percentile reporting.

    Examples
    --------
    >>> hist = LogHistogram.latency()
    >>> for ms in (1, 1, 2, 50):
    ...     hist.record(ms / 1e3)
    >>> hist.count
    4
    >>> hist.percentile(0.5) <= hist.percentile(0.99)
    True
    """

    def __init__(
        self, lo: float = 1e-6, hi: float = 1e3, buckets_per_decade: int = 8
    ):
        if lo <= 0 or hi <= lo:
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        bounds: list[float] = []
        step = 10.0 ** (1.0 / buckets_per_decade)
        edge = self.lo
        while edge < self.hi:
            edge *= step
            bounds.append(min(edge, self.hi))
        #: Upper bucket edges between the underflow and overflow buckets.
        self.bounds: tuple[float, ...] = tuple(bounds)
        #: Per-bucket counts: ``[underflow, *bounds buckets, overflow]``.
        self.counts: list[int] = [0] * (len(bounds) + 2)
        self.count = 0
        self.total = 0.0

    @classmethod
    def latency(cls) -> "LogHistogram":
        """The latency grid: 1 µs .. 1000 s in seconds."""
        return cls(lo=1e-6, hi=1e3, buckets_per_decade=8)

    @classmethod
    def sizes(cls) -> "LogHistogram":
        """A count grid (batch sizes, queue depths): 1 .. 10^7."""
        return cls(lo=1.0, hi=1e7, buckets_per_decade=8)

    def record(self, value: float) -> None:
        """Record one observation (O(log buckets))."""
        if value <= self.lo:
            bucket = 0
        elif value > self.hi:
            bucket = len(self.counts) - 1
        else:
            bucket = 1 + bisect_left(self.bounds, value)
        self.counts[bucket] += 1
        self.count += 1
        self.total += value

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram recorded on the same grid into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket grids")
        for bucket, n in enumerate(other.counts):
            self.counts[bucket] += n
        self.count += other.count
        self.total += other.total

    @property
    def mean(self) -> float:
        """Exact mean of the recorded values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile rank.

        ``q`` is a fraction in ``[0, 1]``.  Returns 0.0 when empty; the
        underflow bucket reports ``lo`` and the overflow bucket ``hi``
        (the grid cannot resolve beyond its edges).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, min(self.count, ceil(q * self.count)))
        seen = 0
        for bucket, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if bucket == 0:
                    return self.lo
                if bucket == len(self.counts) - 1:
                    return self.hi
                return self.bounds[bucket - 1]
        return self.hi

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable state: grid, sparse counts, count/sum.

        Buckets are keyed by their upper edge (underflow as ``lo``,
        overflow as ``inf``) and zero buckets are omitted, so snapshots
        stay small; any percentile is derivable offline from the counts.
        """
        edges: dict[str, int] = {}
        for bucket, n in enumerate(self.counts):
            if not n:
                continue
            if bucket == 0:
                edges[repr(self.lo)] = n
            elif bucket == len(self.counts) - 1:
                edges["inf"] = n
            else:
                edges[repr(self.bounds[bucket - 1])] = n
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "count": self.count,
            "sum": self.total,
            "buckets": edges,
        }
