"""Deterministic process/thread fan-out (``ParallelConfig`` + ``parallel_map``).

The contract that makes parallelism safe for a reproduction:

* ``n_jobs=1`` is **exactly** the single-process path — a plain loop in
  the calling process, no executor, no pickling.
* Results come back in submission order, so any decomposition of work
  into ordered shards produces bit-identical output regardless of
  ``n_jobs`` or backend.

Workers must be module-level callables (picklable) for the process
backend; the thread backend accepts anything and suits workloads that
spend their time in GIL-releasing NumPy kernels.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("process", "thread")
_START_METHODS = (None, "fork", "spawn", "forkserver")


def resolve_n_jobs(n_jobs: int) -> int:
    """Effective worker count: ``0`` (or negative) means "all CPU cores"."""
    if n_jobs >= 1:
        return n_jobs
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """How to shard and fan out hot-path work.

    Parameters
    ----------
    n_jobs:
        Worker count; ``1`` keeps the exact single-process code path and
        ``0`` resolves to all CPU cores.
    chunk_size:
        Records per embedding shard / preferred work-item granularity.
        ``None`` splits evenly into ``n_jobs`` shards.
    backend:
        ``"process"`` (default; true multi-core for Python-bound work) or
        ``"thread"`` (cheaper startup; fine for GIL-releasing kernels).
    start_method:
        Process start method (``"fork"``, ``"spawn"``, ``"forkserver"``;
        ``None`` keeps the platform default).  Workers and initializers
        must be module-level callables, so every start method — including
        ``"spawn"``, which pickles everything — produces identical
        results.
    initializer / initargs:
        Default per-worker initializer hook.  It runs once per worker
        (and once inline on the single-process path) before any work
        item; this is how serving attaches a read-only memory-mapped
        snapshot in each worker instead of pickling embeddings per task.
        An explicit ``initializer`` passed to :func:`parallel_map` takes
        precedence.
    """

    n_jobs: int = 1
    chunk_size: int | None = None
    backend: str = "process"
    start_method: str | None = None
    initializer: Callable[..., None] | None = None
    initargs: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.n_jobs < 0:
            raise ValueError(f"n_jobs must be >= 0, got {self.n_jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, got {self.start_method!r}"
            )
        if self.initializer is None and self.initargs:
            raise ValueError("initargs given without an initializer")

    @property
    def effective_jobs(self) -> int:
        """``n_jobs`` with ``0`` resolved to the machine's core count."""
        return resolve_n_jobs(self.n_jobs)

    def shard_ranges(self, n_items: int) -> list[tuple[int, int]]:
        """Contiguous ``[start, stop)`` ranges covering ``0 .. n_items``.

        Shard size is ``chunk_size`` when set, otherwise an even split
        into ``effective_jobs`` shards.  Ranges are returned in order, so
        concatenating per-shard results reproduces the unsharded output.
        """
        if n_items <= 0:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = (n_items + self.effective_jobs - 1) // self.effective_jobs
        size = max(1, size)
        return [(lo, min(lo + size, n_items)) for lo in range(0, n_items, size)]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    With one effective worker (or at most one item) this is a plain loop
    in the calling process — the exact single-process path.  Otherwise the
    items are dispatched to a process or thread pool per
    ``config.backend``; ``initializer(*initargs)`` runs once per worker
    (and once inline on the single-process path), which is how large
    read-only arrays are shipped to workers exactly once instead of once
    per work item.  When no explicit initializer is given the config's
    ``initializer`` / ``initargs`` hook applies; ``config.start_method``
    selects how worker processes are started (``"spawn"`` requires
    module-level, picklable workers — which all of ours are).
    """
    work = list(items)
    jobs = min(config.effective_jobs, len(work))
    if initializer is None and config.initializer is not None:
        initializer = config.initializer
        initargs = config.initargs
    if jobs <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in work]
    if config.backend == "process":
        context = (
            multiprocessing.get_context(config.start_method)
            if config.start_method is not None
            else None
        )
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=initializer,
            initargs=tuple(initargs),
            mp_context=context,
        ) as pool:
            return list(pool.map(fn, work))
    with ThreadPoolExecutor(
        max_workers=jobs, initializer=initializer, initargs=tuple(initargs)
    ) as pool:
        return list(pool.map(fn, work))
