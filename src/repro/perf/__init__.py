"""Multi-core fan-out utilities for the hot-path linkage engine.

The paper's headline claim is runtime: compact embeddings plus Hamming
LSH must stay fast at the 1M-record scale of its Figures 8(b) and 12(b).
This package provides the process/thread fan-out used by
:class:`repro.core.encoder.RecordEncoder` (embedding sharded over record
ranges) and the stage pipeline's ``ThresholdVerifyStage`` (candidate
verification sharded over pair chunks).  The :class:`ParallelConfig` is
routed once at the :class:`repro.pipeline.LinkagePipeline` runner and
reaches every stage through the pipeline context.

Like :mod:`repro.analysis` and :mod:`repro.evaluation`, this package sits
beside the numeric stack: it imports nothing from the layers it serves,
so ``core`` and ``hamming`` may depend on it freely.
"""

from repro.perf.metrics import LogHistogram
from repro.perf.parallel import ParallelConfig, parallel_map, resolve_n_jobs

__all__ = ["LogHistogram", "ParallelConfig", "parallel_map", "resolve_n_jobs"]
