"""Hamming LSH blocking/matching — the HB mechanism (Section 4.2).

``HB`` maintains ``L`` independent blocking groups (hash tables ``T_l``).
Each group owns a composite hash function ``h_l`` made of ``K`` base hash
functions; a base hash function returns the value of one uniformly sampled
bit position of the input vector.  The concatenated ``K`` bits form the
blocking key, which addresses a bucket holding record identifiers.

Matching (Algorithm 2) scans, for each query vector, the buckets it hashes
to across all groups, de-duplicates the retrieved identifiers, and hands
each unique pair to a classification rule (here: a distance threshold or a
:mod:`repro.rules` AST).

The implementation is vectorised: blocking keys for a whole
:class:`~repro.hamming.bitmatrix.BitMatrix` are produced per group with one
column gather, bulk-indexed groups store their ids sorted by key (no
Python dict of buckets), matching buckets are found with a sort-merge
join (two binary searches per distinct probe key) and expanded with
gather arithmetic, and the candidate-pair stream is de-duplicated over
encoded pair ids — semantically identical to Algorithm 2's
``UniqueCollection`` but dataset-at-a-time.

De-duplication is *memory-bounded*: instead of materialising every
bucket's cross-product before a single global ``numpy.unique`` (which
blows up on skewed buckets), :meth:`HammingLSH.candidate_chunks` buffers
raw products only up to a configurable ``max_chunk_pairs`` budget, then
flushes a chunk — de-duplicated against everything already emitted via a
vectorised sorted merge.  Peak transient memory is ``O(max_chunk_pairs +
n_unique_candidates)`` rather than ``O(sum of raw cross-products)``.

Within the stage pipeline (``repro.pipeline``), :meth:`HammingLSH.index`
backs the shared ``BlockerIndexStage`` and :meth:`candidate_chunks` /
:meth:`candidate_pairs` feed the ``ChunkedCandidateStage`` /
``MaterializedCandidateStage`` pair — the same blocker serves cBV-HB,
BfH and the streaming linker.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.bitvector import BitVector
from repro.hamming.theory import hamming_lsh_parameters


def _split_out_fresh(chunk: np.ndarray, seen: np.ndarray) -> np.ndarray:
    """Elements of sorted ``chunk`` absent from sorted ``seen``."""
    if not seen.size:
        return chunk
    pos = np.searchsorted(seen, chunk)
    in_range = pos < seen.size
    dup = in_range.copy()
    dup[in_range] = seen[pos[in_range]] == chunk[in_range]
    return chunk[~dup]


def _sorted_merge(seen: np.ndarray, fresh: np.ndarray) -> np.ndarray:
    """Merge two sorted, disjoint int64 arrays in ``O(n)`` without re-sorting."""
    if not seen.size:
        return fresh
    if not fresh.size:
        return seen
    out = np.empty(seen.size + fresh.size, dtype=np.int64)
    at = np.searchsorted(seen, fresh) + np.arange(fresh.size, dtype=np.int64)
    mask = np.zeros(out.size, dtype=bool)
    mask[at] = True
    out[mask] = fresh
    out[~mask] = seen
    return out


def _generation_stats() -> dict[str, float]:
    """Fresh zeroed candidate-generation counters."""
    return {
        "pairs_generated": 0.0,
        "pairs_unique": 0.0,
        "pairs_duplicates": 0.0,
        "n_chunks": 0.0,
        "peak_chunk_pairs": 0.0,
        "max_bucket_product": 0.0,
    }


def _sliced_product(
    rows_a: np.ndarray, rows_b: np.ndarray, n_b: int, budget: int
) -> Iterator[np.ndarray]:
    """Cross-product of one oversized bucket in slices of ``<= budget`` pairs."""
    a_step = min(int(rows_a.size), budget)
    for a_lo in range(0, int(rows_a.size), a_step):
        sub_a = rows_a[a_lo : a_lo + a_step]
        b_step = max(1, budget // int(sub_a.size))
        for b_lo in range(0, int(rows_b.size), b_step):
            sub_b = rows_b[b_lo : b_lo + b_step]
            yield np.repeat(sub_a, sub_b.size) * n_b + np.tile(sub_b, sub_a.size)


def _join_products(
    keys_a: np.ndarray,
    ids_a: np.ndarray,
    sorted_keys_b: np.ndarray,
    order_b: np.ndarray,
    boundaries_b: np.ndarray,
    n_b: int,
    budget: int | None,
    stats: dict[str, float],
) -> Iterator[np.ndarray]:
    """Sort-merge join of one group's bulk index against the ``B`` keys.

    Matching buckets are located with two binary searches per distinct
    ``B`` key, then their cross-products are expanded with pure gather
    arithmetic — no per-bucket Python loop.  Consecutive buckets are
    emitted together in segments whose total product fits the budget; a
    single bucket larger than the budget is emitted in slices.
    """
    if boundaries_b.size == 0:
        return
    unique_b = sorted_keys_b[boundaries_b]
    run_ends = np.r_[boundaries_b[1:], sorted_keys_b.size]
    lo = np.searchsorted(keys_a, unique_b, side="left")
    hi = np.searchsorted(keys_a, unique_b, side="right")
    matched = hi > lo
    if not bool(matched.any()):
        return
    count_a = (hi - lo)[matched]
    start_a = lo[matched]
    start_b = boundaries_b[matched]
    count_b = (run_ends - boundaries_b)[matched]
    products = count_a * count_b
    stats["pairs_generated"] += float(products.sum())
    stats["max_bucket_product"] = max(stats["max_bucket_product"], float(products.max()))

    def expand(s: int, e: int) -> np.ndarray:
        """Concatenated cross-products of buckets ``s..e`` (a-major order)."""
        p = products[s:e]
        total = int(p.sum())
        offsets = np.cumsum(p) - p
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, p)
        cb = np.repeat(count_b[s:e], p)
        a_off = within // cb
        b_off = within - a_off * cb
        rows_a = ids_a[np.repeat(start_a[s:e], p) + a_off]
        rows_b = order_b[np.repeat(start_b[s:e], p) + b_off]
        return rows_a * n_b + rows_b

    n_buckets = int(products.size)
    if budget is None:
        yield expand(0, n_buckets)
        return
    cumulative = np.cumsum(products)
    start = 0
    floor = 0
    while start < n_buckets:
        end = int(np.searchsorted(cumulative, floor + budget, side="right"))
        if end > start:
            yield expand(start, end)
        else:
            rows_a = ids_a[start_a[start] : start_a[start] + count_a[start]]
            rows_b = order_b[start_b[start] : start_b[start] + count_b[start]]
            yield from _sliced_product(rows_a, rows_b, n_b, budget)
            end = start + 1
        floor = int(cumulative[end - 1])
        start = end


def _pack_keys(bit_columns: np.ndarray) -> np.ndarray:
    """Collapse an ``(n, K)`` 0/1 array into one hashable key per row.

    Keys are the rows packed into bytes via ``numpy.packbits``, then viewed
    as a void dtype so ``np.unique``/dict grouping treat each row as one
    scalar.  For ``K <= 64`` a plain integer key is used instead, which is
    faster to group.
    """
    n, k = bit_columns.shape
    if k <= 64:
        weights = (np.uint64(1) << np.arange(k, dtype=np.uint64))[None, :]
        return (bit_columns.astype(np.uint64) * weights).sum(axis=1)
    # packbits preserves the input's memory order; a column gather can be
    # F-ordered, and the void view below needs a contiguous last axis.
    packed = np.ascontiguousarray(np.packbits(bit_columns, axis=1))
    return packed.view([("", packed.dtype)] * packed.shape[1]).ravel()


@dataclass(frozen=True)
class CompositeHash:
    """A composite hash function ``h_l``: ``K`` sampled bit positions."""

    positions: tuple[int, ...]

    def key_for(self, vector: BitVector) -> int:
        """Blocking key of a single vector (low-endian packed sample bits)."""
        key = 0
        for rank, pos in enumerate(self.positions):
            key |= vector[pos] << rank
        return key

    def keys_for(self, matrix: BitMatrix) -> np.ndarray:
        """Blocking keys for every row of ``matrix`` (vectorised)."""
        return _pack_keys(matrix.columns(list(self.positions)))


class BlockingGroup:
    """One blocking group ``T_l``: a composite hash plus its bucket table.

    Bulk inserts (:meth:`insert_matrix`) are stored column-oriented — the
    row ids sorted by blocking key next to the sorted key array — which
    is exactly what the sort-merge candidate join consumes, and avoids
    materialising a Python dict with one entry per bucket.  Streaming
    inserts (:meth:`insert`) go to a dict overlay; :meth:`bucket` merges
    both representations.
    """

    def __init__(self, composite: CompositeHash):
        self.composite = composite
        self._keys: np.ndarray | None = None  # sorted blocking keys (bulk inserts)
        self._ids: np.ndarray | None = None  # row ids, parallel to _keys
        self._bounds: np.ndarray | None = None  # cached run starts of _keys
        self._buckets: dict[object, list[int]] = {}  # streaming overlay

    def insert_matrix(self, matrix: BitMatrix) -> None:
        """Hash every row of ``matrix`` into the group (ids are row indices)."""
        keys = self.composite.keys_for(matrix)
        ids = np.arange(matrix.n_rows, dtype=np.int64)
        if self._keys is not None and self._ids is not None:
            keys = np.concatenate([self._keys, keys])
            ids = np.concatenate([self._ids, ids])
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._ids = ids[order]
        self._bounds = None

    def insert(self, vector: BitVector, record_id: int) -> None:
        """Insert a single vector (streaming API)."""
        self._buckets.setdefault(self.composite.key_for(vector), []).append(record_id)

    def _bulk_range(self, key: object) -> tuple[int, int]:
        """Half-open slice of ``_ids`` holding ``key`` (empty when absent)."""
        if self._keys is None or self._keys.size == 0:
            return 0, 0
        try:
            probe = np.asarray(key, dtype=self._keys.dtype)
        except (TypeError, ValueError):
            return 0, 0
        lo = int(np.searchsorted(self._keys, probe, side="left"))
        hi = int(np.searchsorted(self._keys, probe, side="right"))
        return lo, hi

    def _bulk_boundaries(self) -> np.ndarray:
        """Start offsets of the distinct-key runs in the bulk arrays (cached)."""
        if self._bounds is not None:
            return self._bounds
        keys = self._keys
        if keys is None or keys.size == 0:
            self._bounds = np.empty(0, dtype=np.int64)
        else:
            self._bounds = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
        return self._bounds

    # -- snapshot state --------------------------------------------------------

    def _empty_key_dtype(self) -> "np.dtype[Any]":
        """The key dtype :func:`_pack_keys` produces for this composite."""
        k = len(self.composite.positions)
        if k <= 64:
            return np.dtype(np.uint64)
        return np.dtype([("", np.uint8)] * ((k + 7) // 8))

    def _overlay_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Streaming-overlay entries as parallel (keys, ids) arrays.

        Overlay keys are the low-endian packed integers of
        :meth:`CompositeHash.key_for`; for ``K > 64`` they are re-packed
        into the byte representation :func:`_pack_keys` uses so both
        stores share one dtype.
        """
        k = len(self.composite.positions)
        key_list = list(self._buckets)
        counts = np.asarray([len(self._buckets[key]) for key in key_list], dtype=np.int64)
        flat_ids = np.asarray(
            [rid for key in key_list for rid in self._buckets[key]], dtype=np.int64
        )
        if k <= 64:
            keys = np.asarray([int(key) for key in key_list], dtype=np.uint64)  # type: ignore[call-overload]
        else:
            bits = np.zeros((len(key_list), k), dtype=np.uint8)
            for row, key in enumerate(key_list):
                value = int(key)  # type: ignore[call-overload]
                for rank in range(k):
                    bits[row, rank] = (value >> rank) & 1
            keys = _pack_keys(bits)
        return np.repeat(keys, counts), flat_ids

    def export_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bulk state ``(sorted_keys, ids, run_starts)`` with the overlay folded in.

        Any streaming-overlay entries are merged into the sorted bulk
        representation *here*, at export time — a snapshot loaded from
        these arrays never needs to re-sort.  Within one key, bulk ids
        keep preceding overlay ids (the :meth:`bucket` order).
        """
        keys, ids = self._keys, self._ids
        if self._buckets:
            over_keys, over_ids = self._overlay_arrays()
            if keys is None or ids is None:
                keys, ids = over_keys, over_ids
            else:
                keys = np.concatenate([keys, over_keys])
                ids = np.concatenate([ids, over_ids])
            order = np.argsort(keys, kind="stable")
            keys, ids = keys[order], ids[order]
        if keys is None or ids is None:
            keys = np.empty(0, dtype=self._empty_key_dtype())
            ids = np.empty(0, dtype=np.int64)
        if keys.size:
            bounds = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
        else:
            bounds = np.empty(0, dtype=np.int64)
        return keys, ids, bounds

    @classmethod
    def from_arrays(
        cls,
        composite: CompositeHash,
        keys: np.ndarray,
        ids: np.ndarray,
        bounds: np.ndarray,
    ) -> "BlockingGroup":
        """Adopt pre-sorted bulk arrays (snapshot load: no hashing, no sort).

        ``keys``/``ids``/``bounds`` must be the output of
        :meth:`export_arrays`; they may be read-only memory-mapped views
        — nothing here copies or mutates them.
        """
        group = cls(composite)
        group._keys = keys
        group._ids = ids
        group._bounds = bounds
        return group

    def bucket(self, key: object) -> list[int]:
        """The id list stored under ``key`` (empty when absent)."""
        lo, hi = self._bulk_range(key)
        out = self._ids[lo:hi].tolist() if self._ids is not None and hi > lo else []
        extra = self._buckets.get(key)
        if extra:
            out = out + extra
        return out

    def probe(self, vector: BitVector) -> list[int]:
        """Ids sharing this group's bucket with ``vector``."""
        return self.bucket(self.composite.key_for(vector))

    @property
    def n_buckets(self) -> int:
        n = int(self._bulk_boundaries().size)
        for key in self._buckets:
            lo, hi = self._bulk_range(key)
            if lo == hi:
                n += 1
        return n

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of all buckets — used for selectivity diagnostics."""
        bounds = self._bulk_boundaries()
        if bounds.size and self._keys is not None:
            ends = np.r_[bounds[1:], self._keys.size]
            sizes = (ends - bounds).astype(np.int64)
        else:
            sizes = np.empty(0, dtype=np.int64)
        extra: list[int] = []
        for key, ids in self._buckets.items():
            lo, hi = self._bulk_range(key)
            if lo == hi:
                extra.append(len(ids))
            else:
                run = int(np.searchsorted(bounds, lo, side="right")) - 1
                sizes[run] += len(ids)
        if extra:
            sizes = np.concatenate([sizes, np.asarray(extra, dtype=np.int64)])
        return sizes


class HammingLSH:
    """The HB blocking/matching mechanism over a compact Hamming space.

    Parameters
    ----------
    n_bits:
        Width of the embedded vectors.
    k:
        Number of base hash functions per composite hash (``K``).
    threshold:
        Hamming distance ``theta`` defining "similar".  Used to derive the
        optimal ``L`` via Equation (2) unless ``n_tables`` overrides it.
    delta:
        Allowed miss probability (``1 - delta`` recall guarantee).
    n_tables:
        Explicit ``L``; when ``None`` it is computed from Equation (2).
    seed:
        Seed for sampling the base hash positions.
    max_chunk_pairs:
        Candidate-generation memory budget: raw bucket cross-products are
        buffered up to this many encoded pairs before being de-duplicated
        and emitted as one chunk.  ``None`` (default) buffers everything
        and emits a single chunk.  The candidate *set* is identical for
        every budget; only peak memory and chunking change.

    Examples
    --------
    >>> lsh = HammingLSH(n_bits=120, k=30, threshold=4, delta=0.1, seed=7)
    >>> lsh.n_tables
    6
    """

    def __init__(
        self,
        n_bits: int,
        k: int,
        threshold: int | None = None,
        delta: float = 0.1,
        n_tables: int | None = None,
        seed: int | None = None,
        max_chunk_pairs: int | None = None,
    ):
        if k < 1:
            raise ValueError(f"K must be >= 1, got {k}")
        if threshold is None and n_tables is None:
            raise ValueError("provide threshold (for Equation 2) or an explicit n_tables")
        if max_chunk_pairs is not None and max_chunk_pairs < 1:
            raise ValueError(f"max_chunk_pairs must be >= 1, got {max_chunk_pairs}")
        self.n_bits = n_bits
        self.k = k
        self.threshold = threshold
        self.delta = delta
        self.max_chunk_pairs = max_chunk_pairs
        if n_tables is None:
            __, n_tables = hamming_lsh_parameters(threshold, n_bits, k, delta)
        if n_tables < 1:
            raise ValueError(f"L must be >= 1, got {n_tables}")
        rng = np.random.default_rng(seed)
        self.groups = [
            BlockingGroup(
                CompositeHash(tuple(int(b) for b in rng.integers(0, n_bits, size=k)))
            )
            for __ in range(n_tables)
        ]

    @property
    def n_tables(self) -> int:
        return len(self.groups)

    @classmethod
    def from_state(
        cls,
        n_bits: int,
        k: int,
        positions: Sequence[Sequence[int]],
        threshold: int | None = None,
        delta: float = 0.1,
        max_chunk_pairs: int | None = None,
    ) -> "HammingLSH":
        """Rebuild an LSH from explicit per-table sampled bit positions.

        This is the snapshot-load constructor: instead of drawing fresh
        base hash functions from a seed, every table's ``K`` positions
        are adopted verbatim, so a persisted index keeps producing the
        exact blocking keys it was built with.  The groups come back
        empty; attach their bulk arrays via
        :meth:`BlockingGroup.from_arrays`.
        """
        if not positions:
            raise ValueError("positions must name at least one table")
        for table, pos in enumerate(positions):
            if len(pos) != k:
                raise ValueError(
                    f"table {table} has {len(pos)} positions, expected K={k}"
                )
            for p in pos:
                if not 0 <= int(p) < n_bits:
                    raise ValueError(
                        f"table {table} samples bit {p}, out of range for width {n_bits}"
                    )
        lsh = cls(
            n_bits=n_bits,
            k=k,
            threshold=threshold,
            delta=delta,
            n_tables=len(positions),
            seed=0,
            max_chunk_pairs=max_chunk_pairs,
        )
        lsh.groups = [
            BlockingGroup(CompositeHash(tuple(int(p) for p in pos))) for pos in positions
        ]
        return lsh

    # -- indexing ---------------------------------------------------------------

    def index(self, matrix: BitMatrix) -> None:
        """Store every row of ``matrix`` (dataset A) in all blocking groups."""
        if matrix.n_bits != self.n_bits:
            raise ValueError(f"width mismatch: matrix {matrix.n_bits} vs LSH {self.n_bits}")
        for group in self.groups:
            group.insert_matrix(matrix)

    def insert(self, vector: BitVector, record_id: int) -> None:
        """Streaming insert of a single record."""
        if vector.n_bits != self.n_bits:
            raise ValueError(f"width mismatch: vector {vector.n_bits} vs LSH {self.n_bits}")
        for group in self.groups:
            group.insert(vector, record_id)

    # -- candidate generation ------------------------------------------------------

    def query(self, vector: BitVector) -> list[int]:
        """Unique indexed ids co-bucketed with ``vector`` in any group.

        This is Algorithm 2's outer loop for one query record, including
        its ``UniqueCollection`` de-duplication.
        """
        seen: set[int] = set()
        out: list[int] = []
        for group in self.groups:
            for rid in group.probe(vector):
                if rid not in seen:
                    seen.add(rid)
                    out.append(rid)
        return out

    def candidate_pairs(
        self, matrix_b: BitMatrix, counters: dict[str, float] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """De-duplicated candidate pairs between the indexed dataset and ``matrix_b``.

        Returns parallel arrays ``(rows_a, rows_b)``, sorted by encoded
        pair id.  Pairs co-bucketed in several groups appear once
        (Algorithm 2's de-duplication).  Generation runs through the
        memory-bounded chunk stream when ``max_chunk_pairs`` is set; the
        result is identical either way.
        """
        n_b = matrix_b.n_rows
        chunks = list(self._encoded_chunks(matrix_b, self.max_chunk_pairs, counters))
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # Chunks are mutually disjoint and each is sorted; a final sort
        # restores the historical global np.unique order.
        encoded = np.sort(np.concatenate(chunks), kind="stable")
        return encoded // n_b, encoded % n_b

    def candidate_chunks(
        self,
        matrix_b: BitMatrix,
        max_chunk_pairs: int | None = None,
        counters: dict[str, float] | None = None,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Stream globally de-duplicated candidate chunks of bounded size.

        Each yielded ``(rows_a, rows_b)`` chunk holds at most
        ``max_chunk_pairs`` pairs (the instance's setting when the
        argument is ``None``), and no pair ever appears in two chunks:
        every flush is checked against all previously emitted pairs with a
        sorted merge.  ``counters``, when given, receives generation
        diagnostics (see :meth:`_encoded_chunks`).
        """
        budget = self.max_chunk_pairs if max_chunk_pairs is None else max_chunk_pairs
        n_b = matrix_b.n_rows
        for encoded in self._encoded_chunks(matrix_b, budget, counters):
            yield encoded // n_b, encoded % n_b

    def _encoded_chunks(
        self,
        matrix_b: BitMatrix,
        budget: int | None,
        counters: dict[str, float] | None = None,
    ) -> Iterator[np.ndarray]:
        """Sorted, mutually disjoint chunks of encoded pairs ``a * n_B + b``.

        The accumulator buffers raw bucket cross-products until the budget
        would overflow, then flushes: de-duplicate the buffer
        (``np.unique``), drop pairs already emitted (binary search into
        the sorted ``seen`` array), emit the fresh remainder and merge it
        into ``seen``.  Counters recorded: ``pairs_generated`` (raw
        products), ``pairs_unique`` (emitted), ``pairs_duplicates``,
        ``n_chunks``, ``peak_chunk_pairs`` and ``max_bucket_product``.
        """
        if matrix_b.n_bits != self.n_bits:
            raise ValueError(f"width mismatch: matrix {matrix_b.n_bits} vs LSH {self.n_bits}")
        stats = _generation_stats()
        seen = np.empty(0, dtype=np.int64)
        buffer: list[np.ndarray] = []
        buffered = 0
        for part in self._encoded_products(matrix_b, budget, stats):
            if budget is not None and buffered and buffered + part.size > budget:
                fresh = _split_out_fresh(np.unique(np.concatenate(buffer)), seen)
                seen = _sorted_merge(seen, fresh)
                buffer, buffered = [], 0
                if fresh.size:
                    stats["pairs_unique"] += fresh.size
                    stats["n_chunks"] += 1
                    stats["peak_chunk_pairs"] = max(stats["peak_chunk_pairs"], fresh.size)
                    yield fresh
            buffer.append(part)
            buffered += part.size
        if buffer:
            fresh = _split_out_fresh(np.unique(np.concatenate(buffer)), seen)
            if fresh.size:
                stats["pairs_unique"] += fresh.size
                stats["n_chunks"] += 1
                stats["peak_chunk_pairs"] = max(stats["peak_chunk_pairs"], fresh.size)
                yield fresh
        stats["pairs_duplicates"] = stats["pairs_generated"] - stats["pairs_unique"]
        if counters is not None:
            counters.update(stats)

    def _encoded_products(
        self, matrix_b: BitMatrix, budget: int | None, stats: dict[str, float]
    ) -> Iterator[np.ndarray]:
        """Raw (un-deduplicated) bucket cross-products, each ``<= budget``."""
        for group in self.groups:
            yield from self._group_products(group, matrix_b, budget, stats)

    def _group_products(
        self,
        group: BlockingGroup,
        matrix_b: BitMatrix,
        budget: int | None,
        stats: dict[str, float],
    ) -> Iterator[np.ndarray]:
        """One group's raw cross-products, no materialised array ``> budget``.

        Bulk-only groups run through the vectorised sort-merge join; a
        group holding streaming inserts falls back to a per-bucket loop
        over :meth:`BlockingGroup.bucket` (which merges both stores).
        """
        n_b = matrix_b.n_rows
        keys_b = group.composite.keys_for(matrix_b)
        order = np.argsort(keys_b, kind="stable")
        sorted_keys = keys_b[order]
        boundaries = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
        if not group._buckets and group._keys is not None and group._ids is not None:
            yield from _join_products(
                group._keys, group._ids, sorted_keys, order, boundaries, n_b, budget, stats
            )
            return
        for i, start in enumerate(boundaries):
            stop = boundaries[i + 1] if i + 1 < len(boundaries) else len(sorted_keys)
            key = (
                sorted_keys[start].item()
                if sorted_keys.dtype != object
                else sorted_keys[start]
            )
            ids_a = group.bucket(key)
            if not ids_a:
                continue
            rows_b = order[start:stop]
            rows_a = np.asarray(ids_a, dtype=np.int64)
            product = rows_a.size * rows_b.size
            stats["pairs_generated"] += product
            stats["max_bucket_product"] = max(stats["max_bucket_product"], product)
            if budget is None or product <= budget:
                yield (
                    np.repeat(rows_a, rows_b.size) * n_b
                    + np.tile(rows_b, rows_a.size)
                )
                continue
            yield from _sliced_product(rows_a, rows_b, n_b, budget)

    def candidate_pairs_per_group(
        self, matrix_b: BitMatrix
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Per-group candidate pairs (no cross-group de-duplication).

        Used by iterative baselines (HARRA) that block and match one table
        at a time.
        """
        n_b = matrix_b.n_rows
        for pairs in self._pairs_per_group(matrix_b):
            yield pairs // n_b, pairs % n_b

    def _pairs_per_group(self, matrix_b: BitMatrix) -> Iterator[np.ndarray]:
        """Encoded pairs ``a * n_B + b`` for each blocking group in turn."""
        stats = _generation_stats()
        for group in self.groups:
            parts = list(self._group_products(group, matrix_b, None, stats))
            yield np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    # -- matching ------------------------------------------------------------------

    def match(
        self,
        matrix_a: BitMatrix,
        matrix_b: BitMatrix,
        threshold: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Block ``matrix_b`` against the index and verify with ``d_H <= threshold``.

        ``matrix_a`` must be the matrix previously passed to :meth:`index`.
        Returns ``(rows_a, rows_b, distances)`` for the accepted pairs.
        """
        if threshold is None:
            threshold = self.threshold
        if threshold is None:
            raise ValueError("no matching threshold available")
        rows_a, rows_b = self.candidate_pairs(matrix_b)
        if rows_a.size == 0:
            return rows_a, rows_b, np.empty(0, dtype=np.int64)
        distances = matrix_a.hamming_rows(rows_a, matrix_b, rows_b)
        keep = distances <= threshold
        return rows_a[keep], rows_b[keep], distances[keep]

    # -- diagnostics -----------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Bucket statistics across groups (selectivity diagnostics)."""
        sizes = np.concatenate([g.bucket_sizes() for g in self.groups]) if self.groups else np.empty(0)
        if sizes.size == 0:
            return {"n_tables": float(self.n_tables), "n_buckets": 0.0, "mean_bucket": 0.0, "max_bucket": 0.0}
        return {
            "n_tables": float(self.n_tables),
            "n_buckets": float(sizes.size),
            "mean_bucket": float(sizes.mean()),
            "max_bucket": float(sizes.max()),
        }


def sample_positions(n_bits: int, k: int, rng: np.random.Generator) -> tuple[int, ...]:
    """Sample ``K`` base-hash bit positions uniformly (with replacement)."""
    return tuple(int(b) for b in rng.integers(0, n_bits, size=k))
