"""Hamming LSH blocking/matching — the HB mechanism (Section 4.2).

``HB`` maintains ``L`` independent blocking groups (hash tables ``T_l``).
Each group owns a composite hash function ``h_l`` made of ``K`` base hash
functions; a base hash function returns the value of one uniformly sampled
bit position of the input vector.  The concatenated ``K`` bits form the
blocking key, which addresses a bucket holding record identifiers.

Matching (Algorithm 2) scans, for each query vector, the buckets it hashes
to across all groups, de-duplicates the retrieved identifiers, and hands
each unique pair to a classification rule (here: a distance threshold or a
:mod:`repro.rules` AST).

The implementation is vectorised: blocking keys for a whole
:class:`~repro.hamming.bitmatrix.BitMatrix` are produced per group with one
column gather, and the candidate-pair stream is de-duplicated with one
``numpy.unique`` over encoded pair ids — semantically identical to
Algorithm 2's ``UniqueCollection`` but dataset-at-a-time.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.bitvector import BitVector
from repro.hamming.theory import hamming_lsh_parameters


def _pack_keys(bit_columns: np.ndarray) -> np.ndarray:
    """Collapse an ``(n, K)`` 0/1 array into one hashable key per row.

    Keys are the rows packed into bytes via ``numpy.packbits``, then viewed
    as a void dtype so ``np.unique``/dict grouping treat each row as one
    scalar.  For ``K <= 64`` a plain integer key is used instead, which is
    faster to group.
    """
    n, k = bit_columns.shape
    if k <= 64:
        weights = (np.uint64(1) << np.arange(k, dtype=np.uint64))[None, :]
        return (bit_columns.astype(np.uint64) * weights).sum(axis=1)
    packed = np.packbits(bit_columns, axis=1)
    return packed.view([("", packed.dtype)] * packed.shape[1]).ravel()


@dataclass(frozen=True)
class CompositeHash:
    """A composite hash function ``h_l``: ``K`` sampled bit positions."""

    positions: tuple[int, ...]

    def key_for(self, vector: BitVector) -> int:
        """Blocking key of a single vector (low-endian packed sample bits)."""
        key = 0
        for rank, pos in enumerate(self.positions):
            key |= vector[pos] << rank
        return key

    def keys_for(self, matrix: BitMatrix) -> np.ndarray:
        """Blocking keys for every row of ``matrix`` (vectorised)."""
        return _pack_keys(matrix.columns(list(self.positions)))


class BlockingGroup:
    """One blocking group ``T_l``: a composite hash plus its bucket table."""

    def __init__(self, composite: CompositeHash):
        self.composite = composite
        self._buckets: dict[object, list[int]] = {}

    def insert_matrix(self, matrix: BitMatrix) -> None:
        """Hash every row of ``matrix`` into the buckets (ids are row indices)."""
        keys = self.composite.keys_for(matrix)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
        for b, start in enumerate(boundaries):
            stop = boundaries[b + 1] if b + 1 < len(boundaries) else len(sorted_keys)
            key = sorted_keys[start].item() if sorted_keys.dtype != object else sorted_keys[start]
            self._buckets.setdefault(key, []).extend(order[start:stop].tolist())

    def insert(self, vector: BitVector, record_id: int) -> None:
        """Insert a single vector (streaming API)."""
        self._buckets.setdefault(self.composite.key_for(vector), []).append(record_id)

    def bucket(self, key: object) -> list[int]:
        """The id list stored under ``key`` (empty when absent)."""
        return self._buckets.get(key, [])

    def probe(self, vector: BitVector) -> list[int]:
        """Ids sharing this group's bucket with ``vector``."""
        return self.bucket(self.composite.key_for(vector))

    @property
    def n_buckets(self) -> int:
        return len(self._buckets)

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of all buckets — used for selectivity diagnostics."""
        return np.asarray([len(ids) for ids in self._buckets.values()], dtype=np.int64)


class HammingLSH:
    """The HB blocking/matching mechanism over a compact Hamming space.

    Parameters
    ----------
    n_bits:
        Width of the embedded vectors.
    k:
        Number of base hash functions per composite hash (``K``).
    threshold:
        Hamming distance ``theta`` defining "similar".  Used to derive the
        optimal ``L`` via Equation (2) unless ``n_tables`` overrides it.
    delta:
        Allowed miss probability (``1 - delta`` recall guarantee).
    n_tables:
        Explicit ``L``; when ``None`` it is computed from Equation (2).
    seed:
        Seed for sampling the base hash positions.

    Examples
    --------
    >>> lsh = HammingLSH(n_bits=120, k=30, threshold=4, delta=0.1, seed=7)
    >>> lsh.n_tables
    6
    """

    def __init__(
        self,
        n_bits: int,
        k: int,
        threshold: int | None = None,
        delta: float = 0.1,
        n_tables: int | None = None,
        seed: int | None = None,
    ):
        if k < 1:
            raise ValueError(f"K must be >= 1, got {k}")
        if threshold is None and n_tables is None:
            raise ValueError("provide threshold (for Equation 2) or an explicit n_tables")
        self.n_bits = n_bits
        self.k = k
        self.threshold = threshold
        self.delta = delta
        if n_tables is None:
            __, n_tables = hamming_lsh_parameters(threshold, n_bits, k, delta)
        if n_tables < 1:
            raise ValueError(f"L must be >= 1, got {n_tables}")
        rng = np.random.default_rng(seed)
        self.groups = [
            BlockingGroup(
                CompositeHash(tuple(int(b) for b in rng.integers(0, n_bits, size=k)))
            )
            for __ in range(n_tables)
        ]

    @property
    def n_tables(self) -> int:
        return len(self.groups)

    # -- indexing ---------------------------------------------------------------

    def index(self, matrix: BitMatrix) -> None:
        """Store every row of ``matrix`` (dataset A) in all blocking groups."""
        if matrix.n_bits != self.n_bits:
            raise ValueError(f"width mismatch: matrix {matrix.n_bits} vs LSH {self.n_bits}")
        for group in self.groups:
            group.insert_matrix(matrix)

    def insert(self, vector: BitVector, record_id: int) -> None:
        """Streaming insert of a single record."""
        if vector.n_bits != self.n_bits:
            raise ValueError(f"width mismatch: vector {vector.n_bits} vs LSH {self.n_bits}")
        for group in self.groups:
            group.insert(vector, record_id)

    # -- candidate generation ------------------------------------------------------

    def query(self, vector: BitVector) -> list[int]:
        """Unique indexed ids co-bucketed with ``vector`` in any group.

        This is Algorithm 2's outer loop for one query record, including
        its ``UniqueCollection`` de-duplication.
        """
        seen: set[int] = set()
        out: list[int] = []
        for group in self.groups:
            for rid in group.probe(vector):
                if rid not in seen:
                    seen.add(rid)
                    out.append(rid)
        return out

    def candidate_pairs(self, matrix_b: BitMatrix) -> tuple[np.ndarray, np.ndarray]:
        """De-duplicated candidate pairs between the indexed dataset and ``matrix_b``.

        Returns parallel arrays ``(rows_a, rows_b)``.  Pairs co-bucketed in
        several groups appear once (Algorithm 2's de-duplication).
        """
        if matrix_b.n_bits != self.n_bits:
            raise ValueError(f"width mismatch: matrix {matrix_b.n_bits} vs LSH {self.n_bits}")
        chunks: list[np.ndarray] = []
        n_b = matrix_b.n_rows
        for pairs in self._pairs_per_group(matrix_b):
            chunks.append(pairs)
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        encoded = np.unique(np.concatenate(chunks))
        return encoded // n_b, encoded % n_b

    def candidate_pairs_per_group(
        self, matrix_b: BitMatrix
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Per-group candidate pairs (no cross-group de-duplication).

        Used by iterative baselines (HARRA) that block and match one table
        at a time.
        """
        n_b = matrix_b.n_rows
        for pairs in self._pairs_per_group(matrix_b):
            yield pairs // n_b, pairs % n_b

    def _pairs_per_group(self, matrix_b: BitMatrix) -> Iterator[np.ndarray]:
        """Encoded pairs ``a * n_B + b`` for each blocking group in turn."""
        n_b = matrix_b.n_rows
        for group in self.groups:
            keys_b = group.composite.keys_for(matrix_b)
            order = np.argsort(keys_b, kind="stable")
            sorted_keys = keys_b[order]
            boundaries = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
            parts: list[np.ndarray] = []
            for i, start in enumerate(boundaries):
                stop = boundaries[i + 1] if i + 1 < len(boundaries) else len(sorted_keys)
                key = sorted_keys[start].item() if sorted_keys.dtype != object else sorted_keys[start]
                ids_a = group.bucket(key)
                if not ids_a:
                    continue
                rows_b = order[start:stop]
                rows_a = np.asarray(ids_a, dtype=np.int64)
                grid_a = np.repeat(rows_a, len(rows_b))
                grid_b = np.tile(rows_b, len(rows_a))
                parts.append(grid_a * n_b + grid_b)
            yield np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    # -- matching ------------------------------------------------------------------

    def match(
        self,
        matrix_a: BitMatrix,
        matrix_b: BitMatrix,
        threshold: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Block ``matrix_b`` against the index and verify with ``d_H <= threshold``.

        ``matrix_a`` must be the matrix previously passed to :meth:`index`.
        Returns ``(rows_a, rows_b, distances)`` for the accepted pairs.
        """
        if threshold is None:
            threshold = self.threshold
        if threshold is None:
            raise ValueError("no matching threshold available")
        rows_a, rows_b = self.candidate_pairs(matrix_b)
        if rows_a.size == 0:
            return rows_a, rows_b, np.empty(0, dtype=np.int64)
        distances = matrix_a.hamming_rows(rows_a, matrix_b, rows_b)
        keep = distances <= threshold
        return rows_a[keep], rows_b[keep], distances[keep]

    # -- diagnostics -----------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Bucket statistics across groups (selectivity diagnostics)."""
        sizes = np.concatenate([g.bucket_sizes() for g in self.groups]) if self.groups else np.empty(0)
        if sizes.size == 0:
            return {"n_tables": float(self.n_tables), "n_buckets": 0.0, "mean_bucket": 0.0, "max_bucket": 0.0}
        return {
            "n_tables": float(self.n_tables),
            "n_buckets": float(sizes.size),
            "mean_bucket": float(sizes.mean()),
            "max_bucket": float(sizes.max()),
        }


def sample_positions(n_bits: int, k: int, rng: np.random.Generator) -> tuple[int, ...]:
    """Sample ``K`` base-hash bit positions uniformly (with replacement)."""
    return tuple(int(b) for b in rng.integers(0, n_bits, size=k))
