"""Hamming space substrate: bit vectors, packed matrices and LSH blocking."""

from repro.hamming.bitmatrix import BitMatrix, concat_matrices, scatter_bits
from repro.hamming.bitvector import BitVector
from repro.hamming.distance import (
    hamming,
    hamming_int,
    hamming_packed,
    jaccard_distance_sets,
    normalized_hamming,
)
from repro.hamming.lsh import BlockingGroup, CompositeHash, HammingLSH, sample_positions
from repro.hamming.sketch import (
    VerifyConfig,
    partial_hamming_rows,
    sketch_word_order,
    verify_pairs,
    verify_pairs_topk,
)
from repro.hamming.theory import (
    base_success_probability,
    composite_collision_probability,
    hamming_lsh_parameters,
    optimal_table_count,
    recall_lower_bound,
)

__all__ = [
    "BitMatrix",
    "BitVector",
    "BlockingGroup",
    "CompositeHash",
    "HammingLSH",
    "VerifyConfig",
    "base_success_probability",
    "composite_collision_probability",
    "concat_matrices",
    "hamming",
    "hamming_int",
    "hamming_lsh_parameters",
    "hamming_packed",
    "jaccard_distance_sets",
    "normalized_hamming",
    "optimal_table_count",
    "partial_hamming_rows",
    "recall_lower_bound",
    "sample_positions",
    "scatter_bits",
    "sketch_word_order",
    "verify_pairs",
    "verify_pairs_topk",
]
