"""Batched threshold / top-k queries against an indexed :class:`HammingLSH`.

The real-time setting of Section 1 indexes a reference dataset once and
matches query streams against it continuously.  Answering one query per
call leaves most of the work in Python bookkeeping; this module is the
shared *batch* kernel: a whole block of query vectors is blocked with the
sort-merge candidate join, verified in one packed ``bitwise_count``
sweep, and grouped back per query with gather arithmetic — no per-query
Python loop anywhere.

Both front doors build on it: :class:`repro.serve.QueryEngine` (snapshot
serving) and :meth:`repro.core.linker.StreamingLinker.query_batch`.

Top-k selection is a partial sort (``numpy.argpartition``) over a
composite ``(distance, id)`` key, so ties at the cut-off are broken
deterministically by the smaller record id — byte-identical results for
every batch size and worker count.
"""

from __future__ import annotations

import numpy as np

from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.distance import hamming_packed
from repro.hamming.lsh import HammingLSH
from repro.hamming.sketch import VerifyConfig, verify_pairs, verify_pairs_topk

_EMPTY = np.empty(0, dtype=np.int64)


def top_k_smallest(distances: np.ndarray, ids: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest distances, ties broken by smaller id.

    Selection runs as a partial sort (``argpartition``) over the packed
    composite key ``distance * (max_id + 1) + id``, which makes the
    boundary deterministic: among equal distances the smaller record ids
    win.  The returned index array is ordered by ``(distance, id)``.
    """
    if k < 1:
        raise ValueError(f"top_k must be >= 1, got {k}")
    distances = np.asarray(distances, dtype=np.int64)
    ids = np.asarray(ids, dtype=np.int64)
    if distances.shape != ids.shape:
        raise ValueError(
            f"distances and ids must be parallel arrays, got "
            f"{distances.shape} vs {ids.shape}"
        )
    if distances.size == 0:
        return _EMPTY
    base = int(ids.max()) + 1
    composite = distances * base + ids
    if distances.size <= k:
        return np.argsort(composite, kind="stable")
    selected = np.argpartition(composite, k - 1)[:k]
    return selected[np.argsort(composite[selected], kind="stable")]


def batch_query(
    lsh: HammingLSH,
    words_a: np.ndarray,
    matrix_b: BitMatrix,
    threshold: int,
    top_k: int | None = None,
    verify: VerifyConfig | None = None,
    counters: dict[str, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Match every row of ``matrix_b`` against the indexed dataset at once.

    ``words_a`` is the packed ``uint64`` word array of the indexed
    matrix (it may be a read-only memory map — only the candidate rows
    are ever gathered).  Returns parallel ``(query, id, distance)``
    arrays grouped by query index: threshold mode orders each query's
    matches by record id, ``top_k`` mode keeps at most ``top_k`` per
    query ordered by ``(distance, id)``.

    The pipeline is Algorithm 2 dataset-at-a-time: de-duplicated
    candidates from the sort-merge bucket join, one vectorised Hamming
    sweep, one grouping sort — identical output to looping
    ``lsh.query`` + verify per record, at a fraction of the overhead.

    An enabled ``verify`` config swaps the exact sweep for the sketch
    prefilter (:mod:`repro.hamming.sketch`): threshold mode early-rejects
    on partial distances, top-k mode additionally tightens each query's
    rejection threshold to its running k-th-distance bound.  Results stay
    byte-identical; tier counters are summed into ``counters`` when
    given.
    """
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    cand_a, cand_b = lsh.candidate_pairs(matrix_b)
    if cand_a.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    prefilter = verify is not None and verify.enabled
    n_a = int(words_a.shape[0])
    if prefilter:
        assert verify is not None
        if top_k is None:
            ids, queries, distances = verify_pairs(
                words_a, cand_a, matrix_b.words, cand_b, threshold, verify, counters
            )
        else:
            ids, queries, distances = verify_pairs_topk(
                words_a,
                cand_a,
                matrix_b.words,
                cand_b,
                threshold,
                top_k,
                verify,
                counters,
            )
    else:
        distances = hamming_packed(words_a[cand_a], matrix_b.words[cand_b])
        keep = distances <= threshold
        ids, queries, distances = cand_a[keep], cand_b[keep], distances[keep]
    if ids.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    if top_k is None:
        order = np.argsort(queries * n_a + ids, kind="stable")
        return queries[order], ids[order], distances[order]
    # Group by (query, distance, id) in one composite sort, then keep the
    # first top_k of every query segment via segment-relative ranks.  The
    # prefilter hands back an unordered superset of each query's top-k;
    # this sort-and-cut reduces both paths to the same byte-identical
    # selection.
    composite = (queries * (lsh.n_bits + 1) + distances) * n_a + ids
    order = np.argsort(composite, kind="stable")
    queries, ids, distances = queries[order], ids[order], distances[order]
    starts = np.flatnonzero(np.r_[True, queries[1:] != queries[:-1]])
    counts = np.diff(np.r_[starts, queries.size])
    ranks = np.arange(queries.size, dtype=np.int64) - np.repeat(starts, counts)
    head = ranks < top_k
    return queries[head], ids[head], distances[head]


def group_matches(
    queries: np.ndarray, ids: np.ndarray, distances: np.ndarray, n_queries: int
) -> list[list[tuple[int, int]]]:
    """Per-query ``(id, distance)`` lists from grouped batch-query arrays."""
    out: list[list[tuple[int, int]]] = [[] for __ in range(n_queries)]
    for query, rid, dist in zip(queries, ids, distances):
        out[int(query)].append((int(rid), int(dist)))
    return out
