"""Packed bit matrices: a whole dataset of Hamming-space embeddings.

The LSH blocking step hashes every record of both datasets, and the
matching step computes Hamming distances for every candidate pair.  Doing
this one Python object at a time is too slow at realistic dataset sizes, so
a :class:`BitMatrix` stores ``n`` vectors of width ``n_bits`` as a
``(n, ceil(n_bits / 64))`` array of little-endian ``uint64`` words and
offers vectorised column extraction (for LSH base hash functions) and
vectorised Hamming distances (via ``numpy.bitwise_count``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.hamming.bitvector import BitVector


class BitMatrix:
    """``n`` fixed-width bit vectors packed into ``uint64`` words.

    Row ``i`` is record ``i``'s embedding; bit ``j`` of a row lives in word
    ``j // 64`` at in-word offset ``j % 64``.
    """

    __slots__ = ("_words", "_n_bits")

    def __init__(self, words: np.ndarray, n_bits: int):
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {words.shape}")
        expected = (n_bits + 63) // 64
        if words.shape[1] != expected:
            raise ValueError(
                f"width mismatch: {n_bits} bits needs {expected} words, got {words.shape[1]}"
            )
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        self._words = words
        self._n_bits = n_bits

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zeros(cls, n_rows: int, n_bits: int) -> "BitMatrix":
        n_words = (n_bits + 63) // 64
        return cls(np.zeros((n_rows, n_words), dtype=np.uint64), n_bits)

    @classmethod
    def from_vectors(cls, vectors: Sequence[BitVector]) -> "BitMatrix":
        """Stack :class:`BitVector` rows (all must share one width)."""
        if not vectors:
            raise ValueError("vectors must be non-empty")
        n_bits = vectors[0].n_bits
        n_words = (n_bits + 63) // 64
        words = np.empty((len(vectors), n_words), dtype=np.uint64)
        for i, vec in enumerate(vectors):
            if vec.n_bits != n_bits:
                raise ValueError(f"row {i} has width {vec.n_bits}, expected {n_bits}")
            words[i] = vec.to_packed()
        return cls(words, n_bits)

    @classmethod
    def from_index_sets(cls, index_sets: Iterable[Iterable[int]], n_bits: int) -> "BitMatrix":
        """Build from per-row iterables of set-bit positions."""
        rows = [BitVector.from_indices(n_bits, idx) for idx in index_sets]
        if not rows:
            raise ValueError("index_sets must be non-empty")
        return cls.from_vectors(rows)

    # -- accessors --------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._words.shape[0]

    @property
    def n_bits(self) -> int:
        return self._n_bits

    @property
    def words(self) -> np.ndarray:
        """The underlying packed array (do not mutate)."""
        return self._words

    def __len__(self) -> int:
        return self.n_rows

    def row(self, i: int) -> BitVector:
        """Row ``i`` as a :class:`BitVector`."""
        return BitVector.from_packed(self._words[i], self._n_bits)

    def get_bit(self, row: int, bit: int) -> int:
        if not 0 <= bit < self._n_bits:
            raise IndexError(f"bit {bit} out of range for width {self._n_bits}")
        word, offset = divmod(bit, 64)
        return int((self._words[row, word] >> np.uint64(offset)) & np.uint64(1))

    def set_bit(self, row: int, bit: int) -> None:
        if not 0 <= bit < self._n_bits:
            raise IndexError(f"bit {bit} out of range for width {self._n_bits}")
        word, offset = divmod(bit, 64)
        self._words[row, word] |= np.uint64(1) << np.uint64(offset)

    # -- vectorised operations ----------------------------------------------------

    def columns(self, bits: Sequence[int]) -> np.ndarray:
        """Extract bit columns for all rows: shape ``(n_rows, len(bits))``.

        This is the core of an LSH composite hash function ``h_l``: each
        base hash function reads one uniformly chosen bit position, so
        ``columns(sampled_bits)`` yields every record's blocking key at once.
        """
        bits_arr = np.asarray(bits, dtype=np.int64)
        if bits_arr.size and (bits_arr.min() < 0 or bits_arr.max() >= self._n_bits):
            raise IndexError(f"bit positions out of range for width {self._n_bits}")
        word_idx = bits_arr // 64
        offsets = (bits_arr % 64).astype(np.uint64)
        # (n_rows, K) gather then shift+mask per column.
        gathered = self._words[:, word_idx]
        return ((gathered >> offsets) & np.uint64(1)).astype(np.uint8)

    def hamming_to(self, vector: BitVector) -> np.ndarray:
        """Hamming distance from every row to ``vector`` (shape ``(n_rows,)``)."""
        if vector.n_bits != self._n_bits:
            raise ValueError(f"width mismatch: {vector.n_bits} vs {self._n_bits}")
        xor = self._words ^ vector.to_packed()[None, :]
        return np.bitwise_count(xor).sum(axis=1).astype(np.int64)

    def hamming_rows(self, rows_a: np.ndarray, other: "BitMatrix", rows_b: np.ndarray) -> np.ndarray:
        """Pairwise distances ``d(self[rows_a[i]], other[rows_b[i]])``.

        ``rows_a`` and ``rows_b`` are parallel index arrays; this evaluates
        an entire batch of candidate pairs in one vectorised sweep.
        """
        if other._n_bits != self._n_bits:
            raise ValueError(f"width mismatch: {self._n_bits} vs {other._n_bits}")
        xor = self._words[rows_a] ^ other._words[rows_b]
        return np.bitwise_count(xor).sum(axis=1).astype(np.int64)

    def popcounts(self) -> np.ndarray:
        """Hamming weight of every row."""
        return np.bitwise_count(self._words).sum(axis=1).astype(np.int64)

    def concat(self, other: "BitMatrix") -> "BitMatrix":
        """Column-wise concatenation (record-level vectors from attribute-level).

        ``self`` keeps the low bit positions; ``other`` is appended after
        position ``self.n_bits - 1``.  Implemented row-by-row via the
        integer representation, which is exact for any widths (including
        non-word-aligned boundaries).
        """
        if other.n_rows != self.n_rows:
            raise ValueError(f"row count mismatch: {self.n_rows} vs {other.n_rows}")
        rows = [self.row(i).concat(other.row(i)) for i in range(self.n_rows)]
        return BitMatrix.from_vectors(rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self._n_bits == other._n_bits and np.array_equal(self._words, other._words)

    def __repr__(self) -> str:
        return f"BitMatrix(n_rows={self.n_rows}, n_bits={self._n_bits})"


def scatter_bits(n_rows: int, n_bits: int, rows: np.ndarray, bits: np.ndarray) -> BitMatrix:
    """Build a matrix by setting ``(rows[i], bits[i])`` positions to 1.

    Fully vectorised (``np.bitwise_or.at``), so encoders can embed an entire
    dataset without a per-record Python loop.  Duplicate positions are
    idempotent, matching q-gram-set semantics.
    """
    rows = np.asarray(rows, dtype=np.int64)
    bits = np.asarray(bits, dtype=np.int64)
    if rows.shape != bits.shape:
        raise ValueError(f"rows and bits must be parallel arrays, got {rows.shape} vs {bits.shape}")
    if bits.size and (bits.min() < 0 or bits.max() >= n_bits):
        raise IndexError(f"bit positions out of range for width {n_bits}")
    if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
        raise IndexError(f"row indices out of range for {n_rows} rows")
    n_words = (n_bits + 63) // 64
    words = np.zeros((n_rows, n_words), dtype=np.uint64)
    word_idx = bits // 64
    masks = np.uint64(1) << (bits % 64).astype(np.uint64)
    np.bitwise_or.at(words, (rows, word_idx), masks)
    return BitMatrix(words, n_bits)


def concat_matrices(parts: Sequence[BitMatrix]) -> BitMatrix:
    """Concatenate attribute-level matrices into a record-level matrix.

    Uses word-level shifts when every part except the last is 64-bit
    aligned would be an optimisation; for generality and correctness the
    integer path of :meth:`BitMatrix.concat` is used, part by part.
    """
    if not parts:
        raise ValueError("parts must be non-empty")
    out = parts[0]
    for part in parts[1:]:
        out = out.concat(part)
    return out
