"""Fixed-width binary vectors in the Hamming space.

A :class:`BitVector` is an element of ``{0, 1}^n``.  The implementation is
backed by a single Python integer, which makes XOR + popcount Hamming
distances (``int.bit_count``) both simple and fast, and keeps the structure
"lightweight in terms of size" exactly as the paper's compact embeddings
intend.  Bulk, dataset-level operations live in
:mod:`repro.hamming.bitmatrix`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np


class BitVector:
    """An immutable fixed-width bit vector.

    Bits are addressed ``0 .. n_bits-1``; bit ``j`` corresponds to position
    ``j`` of the paper's q-gram vectors and c-vectors.

    Examples
    --------
    >>> v = BitVector.from_indices(8, [1, 3])
    >>> v.count()
    2
    >>> v.hamming(BitVector.from_indices(8, [3, 5]))
    2
    """

    __slots__ = ("_bits", "_n")

    def __init__(self, n_bits: int, value: int = 0):
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        if value < 0:
            raise ValueError("bit value must be non-negative")
        if value >> n_bits:
            raise ValueError(f"value has bits beyond position {n_bits - 1}")
        self._n = n_bits
        self._bits = value

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_indices(cls, n_bits: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector with exactly the given positions set to 1."""
        value = 0
        for idx in indices:
            if not 0 <= idx < n_bits:
                raise IndexError(f"bit index {idx} out of range for width {n_bits}")
            value |= 1 << idx
        return cls(n_bits, value)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build a vector from an explicit 0/1 sequence (index order)."""
        value = 0
        n = 0
        for n, bit in enumerate(bits, start=1):
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit!r}")
            if bit:
                value |= 1 << (n - 1)
        if n == 0:
            raise ValueError("bits must be non-empty")
        return cls(n, value)

    @classmethod
    def zeros(cls, n_bits: int) -> "BitVector":
        return cls(n_bits, 0)

    # -- accessors ----------------------------------------------------------

    @property
    def n_bits(self) -> int:
        return self._n

    @property
    def value(self) -> int:
        """The underlying integer (bit ``j`` of the int is position ``j``)."""
        return self._bits

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(f"bit index {index} out of range for width {self._n}")
        return (self._bits >> index) & 1

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        for __ in range(self._n):
            yield bits & 1
            bits >>= 1

    def indices(self) -> list[int]:
        """Sorted positions that are set to 1."""
        out = []
        bits = self._bits
        idx = 0
        while bits:
            if bits & 1:
                out.append(idx)
            bits >>= 1
            idx += 1
        return out

    def count(self) -> int:
        """Number of set positions (the vector's Hamming weight)."""
        return self._bits.bit_count()

    # -- algebra ------------------------------------------------------------

    def _check_width(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if other._n != self._n:
            raise ValueError(f"width mismatch: {self._n} vs {other._n}")

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._n, self._bits ^ other._bits)

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._n, self._bits & other._bits)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._n, self._bits | other._bits)

    def hamming(self, other: "BitVector") -> int:
        """Hamming distance: the number of differing positions (``d_H``)."""
        self._check_width(other)
        return (self._bits ^ other._bits).bit_count()

    def set(self, index: int) -> "BitVector":
        """Return a copy with position ``index`` set to 1."""
        if not 0 <= index < self._n:
            raise IndexError(f"bit index {index} out of range for width {self._n}")
        return BitVector(self._n, self._bits | (1 << index))

    def concat(self, other: "BitVector") -> "BitVector":
        """Concatenate: ``self`` occupies the low positions, ``other`` follows.

        This is the paper's record-level construction: attribute-level
        vectors concatenated into one vector of size ``sum(m^(f_i))``.
        """
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        return BitVector(self._n + other._n, self._bits | (other._bits << self._n))

    def slice(self, start: int, stop: int) -> "BitVector":
        """Positions ``start .. stop-1`` as a new vector."""
        if not 0 <= start < stop <= self._n:
            raise ValueError(f"invalid slice [{start}, {stop}) for width {self._n}")
        width = stop - start
        mask = (1 << width) - 1
        return BitVector(width, (self._bits >> start) & mask)

    # -- conversion ----------------------------------------------------------

    def to_array(self) -> np.ndarray:
        """Dense ``uint8`` array of the bits, index order."""
        return np.fromiter(iter(self), dtype=np.uint8, count=self._n)

    def to_packed(self) -> np.ndarray:
        """Little-endian packed ``uint64`` words (bit ``j`` -> word ``j // 64``).

        One ``int.to_bytes`` call instead of a per-word Python loop.
        """
        n_words = (self._n + 63) // 64
        raw = self._bits.to_bytes(n_words * 8, "little")
        return np.frombuffer(raw, dtype="<u8").astype(np.uint64)

    @classmethod
    def from_packed(cls, words: np.ndarray, n_bits: int) -> "BitVector":
        """Inverse of :meth:`to_packed` (one ``int.from_bytes`` call)."""
        raw = np.ascontiguousarray(words, dtype="<u8").tobytes()
        mask = (1 << n_bits) - 1
        return cls(n_bits, int.from_bytes(raw, "little") & mask)

    # -- dunder housekeeping --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._n == other._n and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._n, self._bits))

    def __repr__(self) -> str:
        shown = "".join(str(b) for b in self)
        if self._n > 64:
            shown = shown[:61] + "..."
        return f"BitVector({self._n}, bits={shown})"
