"""Sketch-prefiltered Hamming verification (word-subset early rejection).

The threshold test of Algorithm 2 only needs to know *whether*
``d_H <= theta`` — the exact distance matters for the accepted minority,
not for the rejected bulk.  A partial XOR popcount over any subset of the
packed ``uint64`` words is an **exact lower bound** on the full distance
(the remaining words can only add set bits), so a candidate whose partial
distance already exceeds the threshold is rejected with zero error
margin.  This is the spirit of Kopelowitz & Porat's sampled-position
Hamming sketches, specialised to the packed-word layout: the "sample" is
a deterministic, seeded subset of whole 64-bit words, which keeps the
sketch pass a plain (gather, XOR, popcount) kernel.

:func:`verify_pairs` runs a tiered refinement: tier 1 popcounts a few
permuted words for every pair, later tiers add words for the survivors
only, and the final exact sweep popcounts just the *remaining* words —
the accumulated partial already covers the rest, so an accepted pair
costs exactly one full-width popcount no matter how many tiers ran.
Work is processed in cache-sized row blocks (``VerifyConfig.block_rows``)
so gathered candidate rows stream through the popcount kernels instead
of thrashing, and every output is byte-identical to the plain full-width
sweep (enforced by the golden-parity suite and ``bench_verify.py``).

:func:`verify_pairs_topk` extends the idea to top-k queries with a
running k-th-distance bound: the k candidates with the smallest tier-1
partials are verified exactly per query, the k-th of those exact
distances upper-bounds the final k-th distance, and every other
candidate whose partial exceeds that bound provably cannot enter the
top-k (strictly greater distance loses every ``(distance, id)``
tie-break).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Default words popcounted per tier (cumulative prefix sizes of the
#: seeded word permutation); clipped to the matrix width at run time.
DEFAULT_TIERS = (3, 8)

#: Default candidate rows per cache block: 32768 pairs x a handful of
#: sketch words x 8 B keeps both gathered operands inside L2.
DEFAULT_BLOCK_ROWS = 1 << 15

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class VerifyConfig:
    """How candidate verification prefilters before the exact sweep.

    Parameters
    ----------
    enabled:
        Master switch; a disabled config routes callers to the plain
        full-width sweep (handy for CLI ablations).
    tiers:
        Strictly increasing cumulative word counts per refinement tier.
        Tier ``i`` has popcounted the first ``tiers[i]`` words of the
        seeded permutation; pairs whose accumulated partial distance
        exceeds the threshold are rejected there.  Values are clipped to
        the packed width, so a config tuned for wide embeddings degrades
        gracefully (and exactly) on narrow ones.
    block_rows:
        Candidate pairs per cache block for every gather/popcount pass.
    seed:
        Seed of the word permutation that defines the sketch subsets.
        Any seed is *correct* (rejection is an exact lower-bound test);
        it only decorrelates the sketch from the attribute layout, where
        leading words would all come from the first attribute.
    """

    enabled: bool = True
    tiers: tuple[int, ...] = DEFAULT_TIERS
    block_rows: int = DEFAULT_BLOCK_ROWS
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("tiers must name at least one sketch width")
        previous = 0
        for width in self.tiers:
            if width <= previous:
                raise ValueError(
                    f"tiers must be strictly increasing positive word counts, "
                    f"got {self.tiers}"
                )
            previous = width
        if self.block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {self.block_rows}")


@lru_cache(maxsize=64)
def _word_order_cached(n_words: int, seed: int) -> tuple[int, ...]:
    rng = np.random.default_rng(seed)
    return tuple(int(w) for w in rng.permutation(n_words))


def sketch_word_order(n_words: int, seed: int) -> np.ndarray:
    """The seeded permutation of word indices the sketch tiers prefix.

    Deterministic in ``(n_words, seed)`` — the same config always samples
    the same words, so results are reproducible across processes, shards
    and snapshot reloads.
    """
    if n_words < 1:
        raise ValueError(f"n_words must be >= 1, got {n_words}")
    return np.asarray(_word_order_cached(n_words, int(seed)), dtype=np.int64)


def _tier_widths(tiers: tuple[int, ...], n_words: int) -> list[int]:
    """Cumulative tier widths clipped to the packed width, deduplicated."""
    widths: list[int] = []
    previous = 0
    for width in tiers:
        width = min(width, n_words)
        if width > previous:
            widths.append(width)
            previous = width
    return widths


def partial_hamming_rows(
    words_a: np.ndarray,
    rows_a: np.ndarray,
    words_b: np.ndarray,
    rows_b: np.ndarray,
    cols: np.ndarray,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Partial Hamming distance over the word subset ``cols``, blocked.

    The result is an exact lower bound of the full row-wise distance for
    any subset, and equals it when ``cols`` covers every word.  Rows are
    gathered ``block_rows`` pairs at a time so the transient XOR block
    stays cache-sized even for multi-million-pair candidate chunks.
    """
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    if rows_a.shape != rows_b.shape:
        raise ValueError(
            f"rows_a and rows_b must be parallel arrays, got "
            f"{rows_a.shape} vs {rows_b.shape}"
        )
    cols = np.asarray(cols, dtype=np.int64)
    out = np.empty(rows_a.size, dtype=np.int64)
    gather = cols[None, :]
    for lo in range(0, rows_a.size, block_rows):
        hi = min(lo + block_rows, rows_a.size)
        xor = words_a[rows_a[lo:hi, None], gather] ^ words_b[rows_b[lo:hi, None], gather]
        out[lo:hi] = np.bitwise_count(xor).sum(axis=1).astype(np.int64)
    return out


def _bump(counters: dict[str, float] | None, key: str, amount: float) -> None:
    if counters is not None:
        counters[key] = counters.get(key, 0.0) + amount


def reject_rate(counters: dict[str, float]) -> float:
    """Fraction of prefiltered pairs rejected before the exact sweep."""
    total = counters.get("pairs_prefiltered", 0.0)
    if not total:
        return 0.0
    rejected = total - counters.get("pairs_exact", 0.0)
    return rejected / total


def verify_pairs(
    words_a: np.ndarray,
    rows_a: np.ndarray,
    words_b: np.ndarray,
    rows_b: np.ndarray,
    threshold: int | np.ndarray,
    config: VerifyConfig,
    counters: dict[str, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thresholded Hamming verification with tiered sketch prefiltering.

    Returns ``(kept_a, kept_b, distances)`` — byte-identical (same pairs,
    same order, same exact distances) to the plain full-width sweep

    >>> # xor = words_a[rows_a] ^ words_b[rows_b]
    >>> # dist = np.bitwise_count(xor).sum(axis=1); keep = dist <= threshold

    because a pair is only rejected when its *lower bound* already
    exceeds the threshold, and survivors accumulate the popcount of
    every word exactly once.  ``threshold`` may be a scalar or a
    per-pair array (the top-k path passes per-query running bounds).

    Counters (summed into ``counters`` when given): ``pairs_prefiltered``
    (total pairs seen), ``pairs_rejected_t<i>`` per tier and
    ``pairs_exact`` (survivors whose exact distance was completed).
    """
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    if rows_a.shape != rows_b.shape:
        raise ValueError(
            f"rows_a and rows_b must be parallel arrays, got "
            f"{rows_a.shape} vs {rows_b.shape}"
        )
    n_words = int(words_a.shape[-1])
    if int(words_b.shape[-1]) != n_words:
        raise ValueError(
            f"packed widths differ: {n_words} vs {int(words_b.shape[-1])} words"
        )
    n_pairs = rows_a.size
    _bump(counters, "pairs_prefiltered", float(n_pairs))
    if n_pairs == 0:
        return _EMPTY, _EMPTY, _EMPTY

    order = sketch_word_order(n_words, config.seed)
    widths = _tier_widths(config.tiers, n_words)
    per_pair = isinstance(threshold, np.ndarray)
    bound = threshold if per_pair else int(threshold)

    parts_a: list[np.ndarray] = []
    parts_b: list[np.ndarray] = []
    parts_d: list[np.ndarray] = []
    rejected = [0] * len(widths)
    n_exact = 0
    for lo in range(0, n_pairs, config.block_rows):
        hi = min(lo + config.block_rows, n_pairs)
        ra = rows_a[lo:hi]
        rb = rows_b[lo:hi]
        th = bound[lo:hi] if per_pair else bound
        partial = np.zeros(hi - lo, dtype=np.int64)
        previous = 0
        for tier, width in enumerate(widths):
            cols = order[previous:width][None, :]
            xor = words_a[ra[:, None], cols] ^ words_b[rb[:, None], cols]
            partial += np.bitwise_count(xor).sum(axis=1).astype(np.int64)
            keep = partial <= th
            n_kept = int(np.count_nonzero(keep))
            rejected[tier] += partial.size - n_kept
            if n_kept < partial.size:
                ra, rb, partial = ra[keep], rb[keep], partial[keep]
                if per_pair:
                    th = th[keep]
            previous = width
            if not partial.size:
                break
        if not partial.size:
            continue
        n_exact += partial.size
        rest = order[previous:]
        if rest.size:
            cols = rest[None, :]
            xor = words_a[ra[:, None], cols] ^ words_b[rb[:, None], cols]
            partial = partial + np.bitwise_count(xor).sum(axis=1).astype(np.int64)
        keep = partial <= th
        parts_a.append(ra[keep])
        parts_b.append(rb[keep])
        parts_d.append(partial[keep])
    for tier, count in enumerate(rejected, start=1):
        _bump(counters, f"pairs_rejected_t{tier}", float(count))
    _bump(counters, "pairs_exact", float(n_exact))
    if not parts_a:
        return _EMPTY, _EMPTY, _EMPTY
    return np.concatenate(parts_a), np.concatenate(parts_b), np.concatenate(parts_d)


def verify_pairs_topk(
    words_a: np.ndarray,
    rows_a: np.ndarray,
    words_b: np.ndarray,
    rows_b: np.ndarray,
    threshold: int,
    top_k: int,
    config: VerifyConfig,
    counters: dict[str, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Top-k-aware prefiltered verification, grouped by ``rows_b``.

    ``rows_b`` is the query index of each candidate (the grouping key);
    the returned ``(kept_a, kept_b, distances)`` contains every pair with
    exact distance ``<= threshold`` that *could* appear in its query's
    top-k — a superset of the final selection that the caller's ordinary
    top-k cut reduces to a byte-identical result.

    The rejection threshold per query is the **running k-th-distance
    bound**: the ``top_k`` candidates with the smallest tier-1 partial
    distances are verified exactly first, and the largest of those exact
    distances (an upper bound on the query's final k-th distance, once
    the query has more than ``top_k`` candidates) replaces the plain
    threshold for the rest.  Rejection stays provably safe: a discarded
    pair's exact distance is strictly greater than the bound, so at
    least ``top_k`` candidates beat it regardless of id tie-breaks.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    if rows_a.shape != rows_b.shape:
        raise ValueError(
            f"rows_a and rows_b must be parallel arrays, got "
            f"{rows_a.shape} vs {rows_b.shape}"
        )
    n_pairs = rows_a.size
    if n_pairs == 0:
        _bump(counters, "pairs_prefiltered", 0.0)
        return _EMPTY, _EMPTY, _EMPTY
    n_words = int(words_a.shape[-1])
    order = sketch_word_order(n_words, config.seed)
    widths = _tier_widths(config.tiers, n_words)
    tier1 = widths[0]

    partial = partial_hamming_rows(
        words_a, rows_a, words_b, rows_b, order[:tier1], config.block_rows
    )
    # Group candidates per query with the smallest partials first; ties
    # broken by record id so the seed set is deterministic.
    max_partial = 64 * tier1 + 1
    n_a = int(words_a.shape[0])
    composite = (rows_b * max_partial + partial) * n_a + rows_a
    grouping = np.argsort(composite, kind="stable")
    g_a, g_b, g_partial = rows_a[grouping], rows_b[grouping], partial[grouping]
    starts = np.flatnonzero(np.r_[True, g_b[1:] != g_b[:-1]])
    counts = np.diff(np.r_[starts, g_b.size])
    ranks = np.arange(g_b.size, dtype=np.int64) - np.repeat(starts, counts)
    is_seed = ranks < top_k

    # Exact distances for the seeds: accumulated tier-1 partial plus the
    # popcount of every remaining word.
    seed_exact = g_partial[is_seed] + partial_hamming_rows(
        words_a, g_a[is_seed], words_b, g_b[is_seed], order[tier1:], config.block_rows
    )
    # Per-query bound: queries with more than top_k candidates tighten
    # the threshold to the largest seed exact distance (the k-th smallest
    # of the seed set, which has exactly top_k members there).  Seeds are
    # contiguous at each sorted segment's head, so a reduceat per
    # seed-segment reads them off directly.
    seed_counts = np.minimum(counts, top_k)
    seed_starts = np.concatenate(([0], np.cumsum(seed_counts)[:-1]))
    seed_max = np.maximum.reduceat(seed_exact, seed_starts)
    bounds = np.where(counts > top_k, np.minimum(threshold, seed_max), threshold)

    rest_bound = np.repeat(bounds, counts)[~is_seed]
    rest_a, rest_b, rest_partial = g_a[~is_seed], g_b[~is_seed], g_partial[~is_seed]
    _bump(counters, "pairs_prefiltered", float(n_pairs))
    keep = rest_partial <= rest_bound
    _bump(counters, "pairs_rejected_t1", float(rest_partial.size - np.count_nonzero(keep)))
    rest_a, rest_b = rest_a[keep], rest_b[keep]
    rest_partial, rest_bound = rest_partial[keep], rest_bound[keep]

    # Later tiers + exact remainder for the survivors, against their
    # per-pair running bounds; tier-1 work is already accumulated.
    previous = tier1
    rejected: list[int] = []
    for width in widths[1:]:
        cols = order[previous:width]
        rest_partial = rest_partial + partial_hamming_rows(
            words_a, rest_a, words_b, rest_b, cols, config.block_rows
        )
        keep = rest_partial <= rest_bound
        rejected.append(int(rest_partial.size - np.count_nonzero(keep)))
        rest_a, rest_b = rest_a[keep], rest_b[keep]
        rest_partial, rest_bound = rest_partial[keep], rest_bound[keep]
        previous = width
    for tier, count in enumerate(rejected, start=2):
        _bump(counters, f"pairs_rejected_t{tier}", float(count))
    rest_exact = rest_partial + partial_hamming_rows(
        words_a, rest_a, words_b, rest_b, order[previous:], config.block_rows
    )
    _bump(counters, "pairs_exact", float(is_seed.sum() + rest_exact.size))

    keep_seed = seed_exact <= threshold
    keep_rest = rest_exact <= threshold
    kept_a = np.concatenate([g_a[is_seed][keep_seed], rest_a[keep_rest]])
    kept_b = np.concatenate([g_b[is_seed][keep_seed], rest_b[keep_rest]])
    kept_d = np.concatenate([seed_exact[keep_seed], rest_exact[keep_rest]])
    return kept_a, kept_b, kept_d
