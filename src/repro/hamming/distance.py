"""Hamming distance helpers.

The Hamming distance between two binary sequences is the number of
positions in which they differ; it is the metric ``d_H`` on the embedding
spaces H and H-hat throughout the paper.
"""

from __future__ import annotations

import numpy as np

from repro.hamming.bitvector import BitVector


def hamming(v1: BitVector, v2: BitVector) -> int:
    """Hamming distance between two equal-width bit vectors."""
    return v1.hamming(v2)


def hamming_int(x: int, y: int) -> int:
    """Hamming distance between two non-negative integers' bit patterns.

    >>> hamming_int(0b1010, 0b0110)
    2
    """
    if x < 0 or y < 0:
        raise ValueError("hamming_int expects non-negative integers")
    return (x ^ y).bit_count()

def hamming_packed(words_a: np.ndarray, words_b: np.ndarray) -> np.ndarray:
    """Row-wise Hamming distance between two packed ``uint64`` arrays.

    Both arguments must have the same shape ``(n, n_words)``; broadcasting a
    single row against many is allowed (shape ``(n_words,)`` vs
    ``(n, n_words)``).
    """
    xor = np.asarray(words_a, dtype=np.uint64) ^ np.asarray(words_b, dtype=np.uint64)
    return np.bitwise_count(xor).sum(axis=-1).astype(np.int64)


def masked_hamming_rows(
    words_a: np.ndarray,
    rows_a: np.ndarray,
    words_b: np.ndarray,
    rows_b: np.ndarray,
    start: int,
    stop: int,
) -> np.ndarray:
    """Hamming distance restricted to bit positions ``[start, stop)``.

    Operates on packed ``uint64`` word arrays of two matrices and parallel
    row-index arrays: XOR the touched words, mask the partial words at the
    range boundaries, popcount.  This is how attribute-level distances are
    read out of concatenated record-level vectors.
    """
    if not 0 <= start < stop:
        raise ValueError(f"invalid bit range [{start}, {stop})")
    packed_bits = 64 * int(min(words_a.shape[-1], words_b.shape[-1]))
    if stop > packed_bits:
        raise ValueError(
            f"bit range [{start}, {stop}) exceeds the packed width "
            f"({packed_bits} bits)"
        )
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    if rows_a.shape != rows_b.shape:
        raise ValueError(
            f"rows_a and rows_b must be parallel arrays, got "
            f"{rows_a.shape} vs {rows_b.shape}"
        )
    w_lo, o_lo = divmod(start, 64)
    w_hi, o_hi = divmod(stop, 64)
    last_word = w_hi if o_hi else w_hi - 1
    xor = words_a[rows_a, w_lo : last_word + 1] ^ words_b[rows_b, w_lo : last_word + 1]
    if xor.ndim == 1:
        xor = xor[:, None]
    xor = xor.copy()
    if o_lo:
        xor[:, 0] &= ~np.uint64((1 << o_lo) - 1)
    if o_hi and last_word == w_hi:
        xor[:, -1] &= np.uint64((1 << o_hi) - 1)
    return np.bitwise_count(xor).sum(axis=1).astype(np.int64)


def normalized_hamming(v1: BitVector, v2: BitVector) -> float:
    """Hamming distance divided by the vector width (a value in ``[0, 1]``)."""
    return v1.hamming(v2) / v1.n_bits


def jaccard_distance_sets(set_a: frozenset | set, set_b: frozenset | set) -> float:
    """Jaccard distance ``1 - |A ∩ B| / |A ∪ B|`` between two index sets.

    Used by Section 5.1's comparison against the Jaccard space J (the space
    of q-gram index sets ``U_s``) and by the HARRA baseline.  The distance
    between two empty sets is defined as 0.
    """
    if not set_a and not set_b:
        return 0.0
    inter = len(set_a & set_b)
    union = len(set_a | set_b)
    return 1.0 - inter / union
