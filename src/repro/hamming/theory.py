"""Analytical guarantees of Hamming LSH blocking (Section 4.2).

These functions implement the quantitative backbone of the paper:

* the success probability ``p = 1 - theta / m`` of a single base hash
  function for vectors within Hamming distance ``theta`` (Definition 3);
* the composite collision probability ``p^K``;
* Equation (2), the optimal number of blocking groups
  ``L = ceil(ln(delta) / ln(1 - p^K))`` that guarantees each similar pair
  is identified with probability at least ``1 - delta``;
* the resulting recall lower bound ``1 - (1 - p^K)^L``.

The same machinery is reused by the rule-aware blocking of Section 5.4 by
substituting the AND/OR/NOT collision probabilities (Definitions 4-6) for
``p^K`` — see :mod:`repro.rules.probability`.
"""

from __future__ import annotations

import math


def base_success_probability(threshold: int, n_bits: int) -> float:
    """``p = 1 - theta / m``: probability that one uniformly sampled bit agrees.

    For two vectors at Hamming distance at most ``threshold`` out of
    ``n_bits`` positions, a uniformly chosen position matches with at least
    this probability (Definition 3).

    >>> base_success_probability(4, 120)  # doctest: +ELLIPSIS
    0.966...
    """
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    if not 0 <= threshold <= n_bits:
        raise ValueError(f"threshold must be in [0, {n_bits}], got {threshold}")
    return 1.0 - threshold / n_bits


def composite_collision_probability(p: float, k: int) -> float:
    """``p^K``: probability that all ``K`` base hash functions agree.

    >>> round(composite_collision_probability(0.9667, 30), 3)
    0.362
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    if k < 1:
        raise ValueError(f"K must be >= 1, got {k}")
    return p**k


def optimal_table_count(collision_probability: float, delta: float = 0.1) -> int:
    """Equation (2): ``L = ceil(ln(delta) / ln(1 - p_h))``.

    ``collision_probability`` is the per-table probability ``p_h`` that a
    similar pair lands in the same bucket (``p^K`` for record-level HB, or
    the rule-aware bound of Definitions 4-6).  The returned ``L`` makes the
    miss probability at most ``delta``.

    >>> p = base_success_probability(4, 120) ** 30
    >>> optimal_table_count(p, delta=0.1)
    6
    >>> p = base_success_probability(4, 267) ** 30
    >>> optimal_table_count(p, delta=0.1)
    3
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if not 0.0 <= collision_probability <= 1.0:
        raise ValueError(f"collision probability must be in [0, 1], got {collision_probability}")
    if collision_probability >= 1.0:
        return 1
    if collision_probability <= 0.0:
        raise ValueError("collision probability 0 cannot satisfy any recall guarantee")
    return math.ceil(math.log(delta) / math.log(1.0 - collision_probability))


def recall_lower_bound(collision_probability: float, n_tables: int) -> float:
    """``1 - (1 - p_h)^L``: guaranteed probability of finding a similar pair.

    >>> p = base_success_probability(4, 120) ** 30
    >>> recall_lower_bound(p, 6) >= 0.9
    True
    """
    if not 0.0 <= collision_probability <= 1.0:
        raise ValueError(f"collision probability must be in [0, 1], got {collision_probability}")
    if n_tables < 1:
        raise ValueError(f"L must be >= 1, got {n_tables}")
    return 1.0 - (1.0 - collision_probability) ** n_tables


def hamming_lsh_parameters(
    threshold: int, n_bits: int, k: int, delta: float = 0.1
) -> tuple[float, int]:
    """Convenience bundle: ``(p^K, L)`` for a record-level HB configuration."""
    p = base_success_probability(threshold, n_bits)
    p_composite = composite_collision_probability(p, k)
    return p_composite, optimal_table_count(p_composite, delta)
