"""Command-line interface: generate, corrupt, size and link datasets.

The paper's evaluation workflow as shell commands::

    repro generate --family ncvr -n 10000 -o voters.csv
    repro corrupt voters.csv --scheme pl -a a.csv -b b.csv -t truth.csv
    repro sizing a.csv
    repro link a.csv b.csv --threshold 4 -o matches.csv --truth truth.csv
    repro link a.csv b.csv --rule "(FirstName<=4) & (LastName<=4)" \
         --k FirstName=5 --k LastName=5 -o matches.csv
    repro index build a.csv -o idx --threshold 4
    repro index build a.csv -o idx --threshold 4 --shards 4
    repro index query idx b.csv -o matches.csv --top-k 1
    repro index bench idx b.csv --n-jobs 4
    repro index ingest idx more.csv
    repro index compact idx
    repro serve idx --port 8765 --max-batch 256 --max-wait-us 2000
    repro lint src/ --format json

Every command takes ``--seed`` and is fully reproducible; ``repro lint``
runs the reprolint static-analysis pass (see docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.__main__ import build_parser as _build_lint_parser
from repro.analysis.__main__ import run_lint as _cmd_lint
from repro.core.linker import CompactHammingLinker
from repro.pipeline.registry import available_linkers
from repro.data.generators import DBLPGenerator, NCVRGenerator, average_qgram_counts
from repro.data.io import read_dataset, write_dataset, write_matches
from repro.data.perturb import scheme_ph, scheme_pl
from repro.data.schema import Dataset
from repro.core.sizing import size_attribute
from repro.evaluation.metrics import evaluate_linkage
from repro.evaluation.reporting import emit, format_table
from repro.rules.parser import parse_rule


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")


def _add_prefilter_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prefilter",
        action="store_true",
        help="enable sketch-prefiltered verification (identical matches, "
        "early-rejects on partial distances; see docs/performance.md)",
    )
    parser.add_argument(
        "--prefilter-tiers",
        default="3,8",
        metavar="W1,W2,...",
        help="cumulative sketch words per refinement tier (default 3,8)",
    )
    parser.add_argument(
        "--prefilter-block-rows",
        type=int,
        default=None,
        metavar="N",
        help="candidate pairs per cache block (default 32768)",
    )


def _verify_from_args(args: argparse.Namespace):
    """Build the VerifyConfig the ``--prefilter*`` flags describe (or None)."""
    if not getattr(args, "prefilter", False):
        return None
    # Runtime import: the CLI's architecture contract reaches repro.hamming
    # only through repro.core / repro.serve at module level.
    from repro.hamming.sketch import DEFAULT_BLOCK_ROWS, VerifyConfig

    tiers = tuple(int(w) for w in args.prefilter_tiers.split(",") if w.strip())
    block_rows = args.prefilter_block_rows or DEFAULT_BLOCK_ROWS
    return VerifyConfig(tiers=tiers, block_rows=block_rows)


def _emit_prefilter_stats(counters: dict[str, float]) -> None:
    """One reject-rate line for ablation runs (--prefilter)."""
    total = counters.get("pairs_prefiltered", 0.0)
    if not total:
        return
    exact = counters.get("pairs_exact", 0.0)
    tiers = ", ".join(
        f"t{key.rsplit('t', 1)[1]}={int(counters[key])}"
        for key in sorted(key for key in counters if key.startswith("pairs_rejected_t"))
    )
    rate = counters.get("prefilter_reject_rate", (total - exact) / total)
    emit(
        f"prefilter: {int(total)} pairs, rejected {int(total - exact)} "
        f"({rate:.1%}) before the exact sweep [{tiers}]"
    )


def _linker_epilog() -> str:
    """The linkage-method catalogue, straight from the pipeline registry."""
    lines = ["linkage methods (repro.pipeline.registry):"]
    for spec in available_linkers():
        lines.append(f"  {spec.name:<20} {spec.summary}")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Record linkage in a compact Hamming space (EDBT 2016 reproduction)",
        epilog=_linker_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic dataset CSV")
    generate.add_argument("--family", choices=("ncvr", "dblp"), default="ncvr")
    generate.add_argument("-n", type=int, default=10_000, help="number of records")
    generate.add_argument("-o", "--output", required=True, help="output CSV path")
    _add_seed(generate)

    corrupt = sub.add_parser(
        "corrupt", help="split a dataset into a linkage pair A/B with ground truth"
    )
    corrupt.add_argument("input", help="source CSV (header row required)")
    corrupt.add_argument("--scheme", choices=("pl", "ph"), default="pl")
    corrupt.add_argument("--match-prob", type=float, default=0.5)
    corrupt.add_argument("-a", "--output-a", required=True)
    corrupt.add_argument("-b", "--output-b", required=True)
    corrupt.add_argument("-t", "--truth", required=True, help="ground-truth pair CSV")
    _add_seed(corrupt)

    sizing = sub.add_parser(
        "sizing", help="report Theorem 1 c-vector sizes for a dataset (Table 3 style)"
    )
    sizing.add_argument("input", help="CSV to analyse")
    sizing.add_argument("--rho", type=float, default=1.0)
    sizing.add_argument("--r", type=float, default=1 / 3)

    link = sub.add_parser("link", help="link two CSV datasets with cBV-HB")
    link.add_argument("dataset_a")
    link.add_argument("dataset_b")
    link.add_argument("--threshold", type=int, help="record-level Hamming threshold")
    link.add_argument("--rule", help="classification rule, e.g. '(f1<=4) & (f2<=8)'")
    link.add_argument(
        "--k",
        action="append",
        default=[],
        metavar="ATTR=K or K",
        help="K (record-level) or repeated ATTR=K (rule-aware)",
    )
    link.add_argument("-o", "--output", required=True, help="matches CSV path")
    link.add_argument("--truth", help="ground-truth CSV to score against")
    link.add_argument("--delta", type=float, default=0.1)
    _add_prefilter_flags(link)
    _add_seed(link)

    index = sub.add_parser(
        "index", help="build, query and benchmark persistent index snapshots"
    )
    isub = index.add_subparsers(dest="index_command", required=True)

    build = isub.add_parser(
        "build", help="calibrate + index a reference CSV into a snapshot bundle"
    )
    build.add_argument("dataset", help="reference dataset CSV (dataset A)")
    build.add_argument("-o", "--output", required=True, help="bundle directory")
    build.add_argument("--threshold", type=int, required=True)
    build.add_argument("--k", type=int, default=30, help="sampled bits per group")
    build.add_argument("--delta", type=float, default=0.1)
    build.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="write a sharded bundle with N shards (durable ingest + "
        "scatter-gather serving); 0 (default) writes a single bundle",
    )
    _add_seed(build)

    query = isub.add_parser(
        "query", help="match a query CSV against a snapshot bundle"
    )
    query.add_argument("bundle", help="snapshot bundle directory")
    query.add_argument("dataset", help="query dataset CSV (dataset B)")
    query.add_argument("-o", "--output", required=True, help="matches CSV path")
    query.add_argument("--threshold", type=int, help="override the stored threshold")
    query.add_argument("--top-k", type=int, help="keep only the top-k closest matches")
    query.add_argument("--n-jobs", type=int, default=1)
    _add_prefilter_flags(query)

    bench = isub.add_parser(
        "bench", help="time cold load + batched query throughput for a bundle"
    )
    bench.add_argument("bundle", help="snapshot bundle directory")
    bench.add_argument("dataset", help="query dataset CSV")
    bench.add_argument("--repeat", type=int, default=3)
    bench.add_argument("--n-jobs", type=int, default=1)
    _add_prefilter_flags(bench)

    ingest = isub.add_parser(
        "ingest",
        help="durably append a CSV to a sharded bundle (write-ahead logged)",
    )
    ingest.add_argument("bundle", help="sharded bundle directory")
    ingest.add_argument("dataset", help="CSV of records to append")

    compact = isub.add_parser(
        "compact",
        help="fold a sharded bundle's ingest log into new shard snapshots",
    )
    compact.add_argument("bundle", help="sharded bundle directory")

    serve = sub.add_parser(
        "serve",
        help="serve a bundle (or CSV) over HTTP with adaptive micro-batching",
    )
    serve.add_argument(
        "source",
        help="snapshot/sharded bundle directory, or a CSV to index in memory",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 binds an ephemeral port")
    serve.add_argument(
        "--max-batch", type=int, default=256, help="flush when this many requests queue"
    )
    serve.add_argument(
        "--max-wait-us",
        type=float,
        default=2000.0,
        metavar="US",
        help="adaptive flush-window ceiling in microseconds (default 2000)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request queueing deadline (default: none)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=4096,
        help="bounded admission queue; beyond it requests get 503 + Retry-After",
    )
    serve.add_argument("--n-jobs", type=int, default=1)
    serve.add_argument(
        "--threshold", type=int, help="matching threshold (required for CSV input)"
    )
    serve.add_argument("--k", type=int, default=30, help="CSV input: sampled bits per group")
    serve.add_argument("--delta", type=float, default=0.1)
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="CSV input: serve through an in-memory N-shard engine",
    )
    serve.add_argument(
        "--limit-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after answering N requests (deterministic runs, tests)",
    )
    _add_seed(serve)

    lint = sub.add_parser(
        "lint",
        help="run the reprolint static-analysis pass (RL001-RL006, RL101-RL105)",
    )
    _build_lint_parser(lint)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = NCVRGenerator() if args.family == "ncvr" else DBLPGenerator()
    dataset = generator.generate(args.n, seed=args.seed)
    write_dataset(dataset, args.output)
    emit(f"wrote {len(dataset)} {args.family} records to {args.output}")
    return 0


def _cmd_corrupt(args: argparse.Namespace) -> int:
    import csv

    import numpy as np

    from repro.data.schema import Record

    source = read_dataset(args.input)
    scheme = scheme_pl() if args.scheme == "pl" else scheme_ph()
    rng = np.random.default_rng(args.seed)

    # Split the source pool so B's filler records never duplicate an A
    # record: the first half becomes A, the second half feeds the filler.
    order = rng.permutation(len(source))
    half = len(source) // 2
    a_rows = order[:half]
    filler_rows = list(order[half:])

    records_a = [
        Record(f"A{i}", source[int(row)].values) for i, row in enumerate(a_rows)
    ]
    dataset_a = Dataset(source.schema, records_a, name="A")

    records_b: list[Record] = []
    truth: list[tuple[str, str]] = []
    for row_a, record in enumerate(records_a):
        if rng.random() < args.match_prob:
            perturbed, __ = scheme.perturb(
                record, source.schema, rng, new_id=f"B{len(records_b)}"
            )
            records_b.append(perturbed)
            truth.append((record.record_id, perturbed.record_id))
    while len(records_b) < len(records_a) and filler_rows:
        row = filler_rows.pop()
        records_b.append(Record(f"B{len(records_b)}", source[int(row)].values))
    dataset_b = Dataset(source.schema, records_b, name="B")

    write_dataset(dataset_a, args.output_a)
    write_dataset(dataset_b, args.output_b)
    with open(args.truth, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id_a", "id_b"])
        writer.writerows(sorted(truth))
    emit(
        f"wrote A ({len(dataset_a)}) -> {args.output_a}, "
        f"B ({len(dataset_b)}) -> {args.output_b}, "
        f"{len(truth)} true pairs -> {args.truth}"
    )
    return 0


def _cmd_sizing(args: argparse.Namespace) -> int:
    dataset = read_dataset(args.input)
    counts = average_qgram_counts(dataset)
    rows = []
    total = 0
    for name, b in counts.items():
        report = size_attribute(b, rho=args.rho, r=args.r)
        total += report.m_opt
        rows.append(
            [name, round(b, 1), report.m_opt, round(report.expected_collisions, 2)]
        )
    emit(format_table(["attribute", "b", "m_opt", "E[collisions]"], rows))
    emit(f"record-level size: {total} bits")
    return 0


def _parse_k(entries: list[str]) -> int | dict[str, int]:
    if not entries:
        return 30
    if len(entries) == 1 and "=" not in entries[0]:
        return int(entries[0])
    out = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--k {entry!r}: expected ATTR=K with a rule")
        attr, __, value = entry.partition("=")
        out[attr] = int(value)
    return out


def _read_truth(path: str, dataset_a: Dataset, dataset_b: Dataset) -> set[tuple[int, int]]:
    import csv

    truth = set()
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            truth.add(
                (dataset_a.index_of(row["id_a"]), dataset_b.index_of(row["id_b"]))
            )
    return truth


def _cmd_link(args: argparse.Namespace) -> int:
    if (args.threshold is None) == (args.rule is None):
        raise SystemExit("specify exactly one of --threshold or --rule")
    dataset_a = read_dataset(args.dataset_a)
    dataset_b = read_dataset(args.dataset_b)
    if dataset_a.schema.names != dataset_b.schema.names:
        raise SystemExit(
            f"schema mismatch: {dataset_a.schema.names} vs {dataset_b.schema.names}"
        )
    k = _parse_k(args.k)
    verify = _verify_from_args(args)
    if args.rule is not None:
        if verify is not None:
            raise SystemExit("--prefilter applies to --threshold linkage only")
        if not isinstance(k, dict):
            raise SystemExit("rule-aware linkage needs repeated --k ATTR=K options")
        linker = CompactHammingLinker.rule_aware(
            parse_rule(args.rule),
            k=k,
            delta=args.delta,
            attribute_names=list(dataset_a.schema.names),
            seed=args.seed,
        )
    else:
        if not isinstance(k, int):
            raise SystemExit("record-level linkage takes a single --k value")
        linker = CompactHammingLinker.record_level(
            threshold=args.threshold, k=k, delta=args.delta, seed=args.seed,
            verify=verify,
        )

    result = linker.link(dataset_a, dataset_b)
    n_written = write_matches(result.matches, dataset_a, dataset_b, args.output)
    summary = result.summary()
    emit(
        f"linked {len(dataset_a)} x {len(dataset_b)} records in "
        f"{summary['total_time_s']:.2f} s; {n_written} matches -> {args.output}"
    )
    _emit_prefilter_stats(result.counters)
    emit(
        format_table(
            ["metric", "value"],
            [
                [name, value if isinstance(value, int) else f"{value:.4f}"]
                for name, value in summary.items()
            ],
        )
    )
    if args.truth:
        truth = _read_truth(args.truth, dataset_a, dataset_b)
        quality = evaluate_linkage(
            result.matches, truth, result.n_candidates,
            len(dataset_a) * len(dataset_b),
        )
        emit(
            f"PC = {quality.pairs_completeness:.4f}  "
            f"PQ = {quality.pairs_quality:.4f}  "
            f"RR = {quality.reduction_ratio:.4f}  "
            f"precision = {quality.precision:.4f}"
        )
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    import time

    from repro.protocol import value_rows
    from repro.serve import QueryEngine, ShardedQueryEngine

    dataset = read_dataset(args.dataset)
    linker = CompactHammingLinker.record_level(
        threshold=args.threshold, k=args.k, delta=args.delta, seed=args.seed
    )
    encoder = linker.calibrate(dataset)
    started = time.perf_counter()
    if args.shards >= 1:
        sharded = ShardedQueryEngine.build(
            list(value_rows(dataset)),
            encoder,
            n_shards=args.shards,
            threshold=args.threshold,
            k=args.k,
            delta=args.delta,
            seed=args.seed,
        )
        bundle = sharded.save(args.output)
        elapsed = time.perf_counter() - started
        emit(
            f"indexed {sharded.n_indexed} records ({encoder.total_bits} bits) "
            f"across {sharded.n_shards} shards in {elapsed:.2f} s -> {bundle}"
        )
        return 0
    engine = QueryEngine.build(
        list(value_rows(dataset)),
        encoder,
        threshold=args.threshold,
        k=args.k,
        delta=args.delta,
        seed=args.seed,
    )
    bundle = engine.save(args.output)
    elapsed = time.perf_counter() - started
    emit(
        f"indexed {engine.n_indexed} records ({encoder.total_bits} bits, "
        f"{engine.snapshot.lsh.n_tables} tables) in {elapsed:.2f} s -> {bundle}"
    )
    return 0


def _serving_engine(args: argparse.Namespace):
    """The engine matching the bundle's kind (single-shard or sharded)."""
    from repro.perf import ParallelConfig
    from repro.serve import open_serving_engine

    return open_serving_engine(
        args.bundle,
        parallel=ParallelConfig(n_jobs=args.n_jobs),
        verify=_verify_from_args(args),
    )


def _cmd_index_query(args: argparse.Namespace) -> int:
    import csv

    from repro.protocol import value_rows

    dataset = read_dataset(args.dataset)
    engine = _serving_engine(args)
    result = engine.query_batch(
        list(value_rows(dataset)), threshold=args.threshold, top_k=args.top_k
    )
    with open(args.output, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id_query", "row_index", "distance"])
        for query, rid, dist in zip(result.queries, result.ids, result.distances):
            writer.writerow([dataset[int(query)].record_id, int(rid), int(dist)])
    emit(
        f"matched {len(dataset)} queries against {engine.n_indexed} indexed "
        f"records; {result.n_matches} matches -> {args.output}"
    )
    _emit_prefilter_stats(engine.stats)
    return 0


def _cmd_index_bench(args: argparse.Namespace) -> int:
    import time

    from repro.protocol import value_rows
    from repro.serve import ShardedQueryEngine

    dataset = read_dataset(args.dataset)
    rows = list(value_rows(dataset))
    started = time.perf_counter()
    engine = _serving_engine(args)
    load_s = time.perf_counter() - started
    timings = []
    n_matches = 0
    for __ in range(max(1, args.repeat)):
        started = time.perf_counter()
        n_matches = engine.query_batch(rows).n_matches
        timings.append(time.perf_counter() - started)
    best = min(timings)
    table = [
        ["indexed records", engine.n_indexed],
        ["queries", len(rows)],
        ["matches", n_matches],
        ["cold load (s)", f"{load_s:.4f}"],
        ["best batch time (s)", f"{best:.4f}"],
        ["QPS", f"{len(rows) / best:.0f}" if best else "inf"],
    ]
    if isinstance(engine, ShardedQueryEngine):
        table.append(["shards", engine.n_shards])
    batches = engine.stats.get("n_batches", 0.0)
    for key in ("time_embed_s", "time_query_s", "time_fanout_s", "time_merge_s"):
        if key in engine.stats:
            stage = key[len("time_") : -len("_s")]
            table.append(
                [f"{stage} (s/batch)", f"{engine.stats[key] / max(1.0, batches):.4f}"]
            )
    emit(format_table(["metric", "value"], table))
    _emit_prefilter_stats(engine.stats)
    return 0


def _cmd_index_ingest(args: argparse.Namespace) -> int:
    import time

    from repro.core.shards import is_sharded_bundle
    from repro.protocol import value_rows
    from repro.serve import ShardedQueryEngine

    if not is_sharded_bundle(args.bundle):
        raise SystemExit(
            f"{args.bundle} is not a sharded bundle; online ingest needs one "
            "(build with: repro index build ... --shards N)"
        )
    dataset = read_dataset(args.dataset)
    engine = ShardedQueryEngine.from_bundle(args.bundle)
    started = time.perf_counter()
    gids = engine.ingest(list(value_rows(dataset)))
    elapsed = time.perf_counter() - started
    engine.close()
    first = f", ids {gids[0]}..{gids[-1]}" if gids else ""
    emit(
        f"ingested {len(gids)} records into {args.bundle} in {elapsed:.2f} s "
        f"(write-ahead logged, fsync'd{first}); run 'repro index compact' to "
        "fold the log into shard snapshots"
    )
    return 0


def _cmd_index_compact(args: argparse.Namespace) -> int:
    import time

    from repro.core.shards import is_sharded_bundle
    from repro.serve import ShardedQueryEngine

    if not is_sharded_bundle(args.bundle):
        raise SystemExit(f"{args.bundle} is not a sharded bundle; nothing to compact")
    engine = ShardedQueryEngine.from_bundle(args.bundle)
    replayed = int(engine.index.counters.get("wal_replayed_records", 0.0))
    started = time.perf_counter()
    version = engine.compact()
    elapsed = time.perf_counter() - started
    engine.close()
    emit(
        f"compacted {args.bundle} to version {version} in {elapsed:.2f} s "
        f"({replayed} write-ahead records folded into {engine.n_shards} shards)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.perf import ParallelConfig
    from repro.serve import (
        AsyncQueryServer,
        BatcherConfig,
        QueryEngine,
        ShardedQueryEngine,
    )
    from repro.serve.asyncserve import serve_http

    config = BatcherConfig(
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        deadline_ms=args.deadline_ms,
        queue_depth=args.queue_depth,
    )
    parallel = ParallelConfig(n_jobs=args.n_jobs)
    if Path(args.source).is_dir():
        server = AsyncQueryServer.from_bundle(
            args.source, config=config, parallel=parallel
        )
    else:
        if args.threshold is None:
            raise SystemExit(
                f"{args.source} is not a bundle directory; serving a CSV "
                "needs --threshold"
            )
        from repro.protocol import value_rows

        dataset = read_dataset(args.source)
        linker = CompactHammingLinker.record_level(
            threshold=args.threshold, k=args.k, delta=args.delta, seed=args.seed
        )
        encoder = linker.calibrate(dataset)
        rows = list(value_rows(dataset))
        if args.shards >= 1:
            engine: QueryEngine | ShardedQueryEngine = ShardedQueryEngine.build(
                rows,
                encoder,
                n_shards=args.shards,
                threshold=args.threshold,
                k=args.k,
                delta=args.delta,
                seed=args.seed,
                parallel=parallel,
            )
        else:
            engine = QueryEngine.build(
                rows,
                encoder,
                threshold=args.threshold,
                k=args.k,
                delta=args.delta,
                seed=args.seed,
                parallel=parallel,
            )
        server = AsyncQueryServer(engine, config=config)

    async def run() -> dict:
        frontend = await serve_http(
            server,
            host=args.host,
            port=args.port,
            limit_requests=args.limit_requests,
        )
        emit(
            f"serving {server.engine.n_indexed} records on "
            f"http://{frontend.host}:{frontend.port} "
            f"(max-batch {config.max_batch}, max-wait {config.max_wait_us:.0f} us, "
            f"queue depth {config.queue_depth}) — "
            "GET /healthz /stats, POST /query /swap"
        )
        try:
            await frontend.serve_until_done()
        finally:
            stats = server.stats()
            await frontend.stop()
        return stats

    try:
        stats = asyncio.run(run())
    except KeyboardInterrupt:
        return 0
    counters = stats["counters"]
    latency = stats["latency_s"]
    emit(
        f"served {counters.get('n_completed', 0):.0f} requests in "
        f"{counters.get('n_batches', 0):.0f} batches "
        f"(mean size {stats['batch_size']['mean']:.1f}); "
        f"latency p50 {latency['p50'] * 1e3:.2f} ms, "
        f"p95 {latency['p95'] * 1e3:.2f} ms, p99 {latency['p99'] * 1e3:.2f} ms; "
        f"rejected {counters.get('n_rejected', 0):.0f}, "
        f"deadline misses {counters.get('n_deadline_missed', 0):.0f}"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    handler = {
        "build": _cmd_index_build,
        "query": _cmd_index_query,
        "bench": _cmd_index_bench,
        "ingest": _cmd_index_ingest,
        "compact": _cmd_index_compact,
    }[args.index_command]
    return handler(args)


_COMMANDS = {
    "generate": _cmd_generate,
    "corrupt": _cmd_corrupt,
    "sizing": _cmd_sizing,
    "link": _cmd_link,
    "index": _cmd_index,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
