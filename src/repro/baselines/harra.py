"""HARRA h-CC baseline (Kim & Lee, EDBT 2010) — Section 6.1.

HARRA represents *all* attribute values of a record by a single bigram
vector (one shared q-gram space, so identical bigrams from different
attributes land on the same position — the source of its accuracy loss on
DBLP) and links with the Min-Hash LSH mechanism in the Jaccard space.

Its distinguishing trait is the *iterative* blocking/matching: the
blocking groups ``T_l`` are processed one after the other, and records
classified as matched in table ``l`` are *removed* from all subsequent
iterations ("early pruning"), which saves time but misses pairs.

On the shared stage pipeline this is a bigram-set embed stage, the
MinHash index stage, and one fused candidate/verify stage — the
iteration is inherently sequential (each band's matches prune the next
band's buckets), so unlike the other linkers it cannot split candidate
generation from verification.  The non-iterative counterpart is
:class:`repro.baselines.minhash.MinHashLinker`.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.minhash import (
    BigramSetEmbedStage,
    MinHashIndexStage,
    MinHashLSH as MinHashLSH,
    record_bigram_set as record_bigram_set,
)
from repro.core.qgram import QGramScheme
from repro.hamming.distance import jaccard_distance_sets
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stage import VerifyStage
from repro.protocol import DatasetLike
from repro.text.alphabet import TEXT_ALPHABET


class _HarraMatchStage(VerifyStage):
    """h-CC's fused candidate/verify iteration over the blocking groups."""

    def __init__(self, linker: "HarraLinker") -> None:
        self.linker = linker

    def run(self, ctx: PipelineContext) -> None:
        linker = self.linker
        sets_a = ctx.extras["sets_a"]
        sets_b = ctx.extras["sets_b"]
        keys_a = ctx.extras["band_keys_a"]
        keys_b = ctx.extras["band_keys_b"]
        active_a = np.ones(len(ctx.rows_a), dtype=bool)
        active_b = np.ones(len(ctx.rows_b), dtype=bool)
        matched_a: list[int] = []
        matched_b: list[int] = []
        compared: set[tuple[int, int]] = set()
        n_candidates = 0

        for band in range(linker.n_tables):
            buckets: dict[object, list[int]] = {}
            band_a = keys_a[band]
            for i in np.flatnonzero(active_a):
                buckets.setdefault(band_a[i].item(), []).append(int(i))
            band_b = keys_b[band]
            for j in np.flatnonzero(active_b):
                ids_a = buckets.get(band_b[j].item())
                if not ids_a:
                    continue
                j = int(j)
                for i in ids_a:
                    if not active_a[i]:
                        continue
                    pair = (i, j)
                    if pair in compared:
                        continue
                    compared.add(pair)
                    n_candidates += 1
                    distance = jaccard_distance_sets(sets_a[i], sets_b[j])
                    if distance <= linker.threshold:
                        matched_a.append(i)
                        matched_b.append(j)
                        if linker.early_pruning:
                            # h-CC: matched records leave the process.
                            active_a[i] = False
                            active_b[j] = False
                            break

        ctx.out_a = np.asarray(matched_a, dtype=np.int64)
        ctx.out_b = np.asarray(matched_b, dtype=np.int64)
        ctx.n_candidates = n_candidates
        ctx.counters["pairs_verified"] = float(n_candidates)


class HarraLinker:
    """The h-CC linkage algorithm of HARRA.

    Parameters
    ----------
    threshold:
        Jaccard *distance* threshold (paper: 0.35 for PL, 0.45 for PH).
    k:
        MinHash band size (paper: K = 5).
    n_tables:
        Number of blocking groups; HARRA picks these empirically (paper:
        L = 30 for PL, L = 90 for PH — already doubled for better PC).
    early_pruning:
        Remove matched records from later iterations (HARRA's behaviour).
        Disable for the ablation that isolates the cost of pruning.
    permutation_prefix:
        Fraction of each permutation HARRA's implementation examines when
        looking for "the index of the minimum nonzero element" (Section
        6.1) — the paper reports that similar records frequently end up
        in different buckets because the prefix holds only zeros.  The
        default (0.02) reproduces that recall loss; pass ``None`` for an
        exact MinHash (an idealised HARRA, used by the ablation bench).
    """

    def __init__(
        self,
        threshold: float = 0.35,
        k: int = 5,
        n_tables: int = 30,
        scheme: QGramScheme | None = None,
        early_pruning: bool = True,
        permutation_prefix: float | None = 0.02,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"Jaccard distance threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.k = k
        self.n_tables = n_tables
        self.scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)
        self.early_pruning = early_pruning
        self.permutation_prefix = permutation_prefix
        self.seed = seed

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """Iterative blocking/matching over the MinHash blocking groups."""
        pipeline = LinkagePipeline(
            [
                BigramSetEmbedStage(self.scheme),
                MinHashIndexStage(
                    k=self.k,
                    n_tables=self.n_tables,
                    seed=self.seed,
                    prefix_fraction=self.permutation_prefix,
                ),
                _HarraMatchStage(self),
            ]
        )
        return pipeline.run(dataset_a, dataset_b)
