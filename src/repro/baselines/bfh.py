"""BfH baseline [17]: Hamming LSH blocking over Bloom filter embeddings.

Records are embedded into concatenated field-level Bloom filters
(500 bits / 15 hash functions per bigram, Section 6.1) and blocked with
the same HB mechanism as cBV-HB (K = 30, delta = 0.1).  The attribute-level
thresholds (45 / 45 / 90 in the paper) are applied *only during the
matching step*; the blocking threshold over the record-level filter is
their sum, which is the distance a record pair just inside all
attribute thresholds can reach.

On the stage pipeline this is a Bloom embed stage, the shared
``HammingLSH``-backed index/candidate stages, and the shared
attribute-threshold classify stage fed by the Bloom encoder's masked
per-attribute distances.

The paper's criticism of this space — distances depend on the *lengths*
of the original strings, not only on the number of errors — is observable
here: see ``tests/test_bfh.py`` for the 'JOHN'/'JAHN' vs
'SCALABILITY'/'SCELABILITY' asymmetry.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.baselines.bloom import (
    BloomEmbedStage,
    BloomRecordEncoder,
    DEFAULT_BLOOM_BITS,
    DEFAULT_BLOOM_HASHES,
)
from repro.core.config import DEFAULT_DELTA, DEFAULT_K
from repro.core.qgram import QGramScheme
from repro.hamming.lsh import HammingLSH
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stages import (
    AttributeThresholdClassifyStage,
    BlockerIndexStage,
    MaterializedCandidateStage,
)
from repro.protocol import DatasetLike


def _bloom_attribute_distances(ctx: PipelineContext) -> dict[str, np.ndarray]:
    """Masked per-attribute Hamming distances over the candidate pairs."""
    assert ctx.cand_a is not None and ctx.cand_b is not None
    return ctx.encoder.attribute_distances(
        ctx.embedded_a, ctx.cand_a, ctx.embedded_b, ctx.cand_b
    )


class BfHLinker:
    """Bloom-filter Hamming LSH record linkage.

    Parameters
    ----------
    attribute_thresholds:
        Per-attribute Hamming thresholds in the Bloom filter space, applied
        during matching (paper: 45 per perturbed name field, 90 for the
        doubly perturbed address field).  Attributes without a threshold
        are unconstrained.
    n_attributes:
        Number of record attributes.
    k, delta:
        HB parameters (paper: K = 30, delta = 0.1).
    blocking_threshold:
        Record-level threshold for Equation (2); defaults to the sum of
        the attribute thresholds.
    """

    def __init__(
        self,
        attribute_thresholds: Mapping[str, int],
        n_attributes: int,
        names: Sequence[str] | None = None,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        blocking_threshold: int | None = None,
        n_tables: int | None = None,
        bloom_bits: int = DEFAULT_BLOOM_BITS,
        bloom_hashes: int = DEFAULT_BLOOM_HASHES,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
    ) -> None:
        if not attribute_thresholds:
            raise ValueError("attribute_thresholds must be non-empty")
        self.encoder = BloomRecordEncoder(
            n_attributes, names=names, n_bits=bloom_bits, n_hashes=bloom_hashes, scheme=scheme
        )
        for attribute in attribute_thresholds:
            self.encoder.layout(attribute)  # validates the name
        self.attribute_thresholds = dict(attribute_thresholds)
        if blocking_threshold is None:
            blocking_threshold = sum(self.attribute_thresholds.values())
        self.blocking_threshold = blocking_threshold
        self.k = k
        self.delta = delta
        self.n_tables = n_tables
        self.seed = seed

    def _build_lsh(self) -> HammingLSH:
        return HammingLSH(
            n_bits=self.encoder.total_bits,
            k=self.k,
            threshold=self.blocking_threshold,
            delta=self.delta,
            n_tables=self.n_tables,
            seed=self.seed,
        )

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """embed -> HB blocking -> attribute-threshold matching."""
        pipeline = LinkagePipeline(
            [
                BloomEmbedStage(self.encoder),
                BlockerIndexStage(lambda ctx: self._build_lsh()),
                MaterializedCandidateStage(),
                AttributeThresholdClassifyStage(
                    self.attribute_thresholds, _bloom_attribute_distances
                ),
            ]
        )
        return pipeline.run(dataset_a, dataset_b)

    @property
    def computed_n_tables(self) -> int:
        """The L that Equation (2) yields for this configuration."""
        return self._build_lsh().n_tables
