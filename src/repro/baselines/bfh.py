"""BfH baseline [17]: Hamming LSH blocking over Bloom filter embeddings.

Records are embedded into concatenated field-level Bloom filters
(500 bits / 15 hash functions per bigram, Section 6.1) and blocked with
the same HB mechanism as cBV-HB (K = 30, delta = 0.1).  The attribute-level
thresholds (45 / 45 / 90 in the paper) are applied *only during the
matching step*; the blocking threshold over the record-level filter is
their sum, which is the distance a record pair just inside all
attribute thresholds can reach.

The paper's criticism of this space — distances depend on the *lengths*
of the original strings, not only on the number of errors — is observable
here: see ``tests/test_bfh.py`` for the 'JOHN'/'JAHN' vs
'SCALABILITY'/'SCELABILITY' asymmetry.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence

import numpy as np

from repro.baselines.bloom import (
    BloomRecordEncoder,
    DEFAULT_BLOOM_BITS,
    DEFAULT_BLOOM_HASHES,
)
from repro.core.config import DEFAULT_DELTA, DEFAULT_K
from repro.core.linker import DatasetLike, LinkageResult, _value_rows
from repro.core.qgram import QGramScheme
from repro.hamming.lsh import HammingLSH


class BfHLinker:
    """Bloom-filter Hamming LSH record linkage.

    Parameters
    ----------
    attribute_thresholds:
        Per-attribute Hamming thresholds in the Bloom filter space, applied
        during matching (paper: 45 per perturbed name field, 90 for the
        doubly perturbed address field).  Attributes without a threshold
        are unconstrained.
    n_attributes:
        Number of record attributes.
    k, delta:
        HB parameters (paper: K = 30, delta = 0.1).
    blocking_threshold:
        Record-level threshold for Equation (2); defaults to the sum of
        the attribute thresholds.
    """

    def __init__(
        self,
        attribute_thresholds: Mapping[str, int],
        n_attributes: int,
        names: Sequence[str] | None = None,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        blocking_threshold: int | None = None,
        n_tables: int | None = None,
        bloom_bits: int = DEFAULT_BLOOM_BITS,
        bloom_hashes: int = DEFAULT_BLOOM_HASHES,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
    ):
        if not attribute_thresholds:
            raise ValueError("attribute_thresholds must be non-empty")
        self.encoder = BloomRecordEncoder(
            n_attributes, names=names, n_bits=bloom_bits, n_hashes=bloom_hashes, scheme=scheme
        )
        for attribute in attribute_thresholds:
            self.encoder.layout(attribute)  # validates the name
        self.attribute_thresholds = dict(attribute_thresholds)
        if blocking_threshold is None:
            blocking_threshold = sum(self.attribute_thresholds.values())
        self.blocking_threshold = blocking_threshold
        self.k = k
        self.delta = delta
        self.n_tables = n_tables
        self.seed = seed

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        rows_a = _value_rows(dataset_a)
        rows_b = _value_rows(dataset_b)

        t0 = time.perf_counter()
        matrix_a = self.encoder.encode_dataset(rows_a)
        matrix_b = self.encoder.encode_dataset(rows_b)
        t_embed = time.perf_counter() - t0

        t0 = time.perf_counter()
        lsh = HammingLSH(
            n_bits=self.encoder.total_bits,
            k=self.k,
            threshold=self.blocking_threshold,
            delta=self.delta,
            n_tables=self.n_tables,
            seed=self.seed,
        )
        lsh.index(matrix_a)
        t_index = time.perf_counter() - t0

        t0 = time.perf_counter()
        cand_a, cand_b = lsh.candidate_pairs(matrix_b)
        if cand_a.size:
            distances = self.encoder.attribute_distances(matrix_a, cand_a, matrix_b, cand_b)
            accepted = np.ones(cand_a.size, dtype=bool)
            for attribute, threshold in self.attribute_thresholds.items():
                accepted &= distances[attribute] <= threshold
            out_a, out_b = cand_a[accepted], cand_b[accepted]
            attr_distances = {name: d[accepted] for name, d in distances.items()}
        else:
            out_a, out_b = cand_a, cand_b
            attr_distances = {}
        t_match = time.perf_counter() - t0

        return LinkageResult(
            rows_a=out_a,
            rows_b=out_b,
            n_candidates=int(cand_a.size),
            comparison_space=len(rows_a) * len(rows_b),
            timings={"embed": t_embed, "index": t_index, "match": t_match},
            attribute_distances=attr_distances,
        )

    @property
    def computed_n_tables(self) -> int:
        """The L that Equation (2) yields for this configuration."""
        lsh = HammingLSH(
            n_bits=self.encoder.total_bits,
            k=self.k,
            threshold=self.blocking_threshold,
            delta=self.delta,
            n_tables=self.n_tables,
            seed=self.seed,
        )
        return lsh.n_tables
