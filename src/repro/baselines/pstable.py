"""Euclidean (p-stable) LSH — Datar, Immorlica, Indyk & Mirrokni [7].

The SM-EB baseline blocks StringMap vectors with the 2-stable LSH family

    h(v) = floor((a . v + b) / w),   a ~ N(0, I),  b ~ U[0, w).

For two points at Euclidean distance ``c`` the collision probability of a
single base hash has the closed form

    p(c) = 1 - 2 * Phi(-w / c) - (2 c / (sqrt(2 pi) w)) * (1 - exp(-w^2 / (2 c^2)))

which drives Equation (2) for the number of blocking groups, exactly as
the Hamming bound does for HB.

:class:`EuclideanLSH` mirrors :class:`repro.hamming.lsh.HammingLSH`'s
``index`` / ``candidate_pairs`` API, so it slots straight into the shared
:class:`repro.pipeline.stages.BlockerIndexStage` /
:class:`~repro.pipeline.stages.MaterializedCandidateStage` pair — which is
exactly how :class:`repro.baselines.smeb.SMEBLinker` runs it.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from repro.hamming.theory import optimal_table_count

#: Datar et al. recommend a bucket width of a few units; w = 4 is the
#: customary default in the LSH literature.
DEFAULT_BUCKET_WIDTH = 4.0


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def collision_probability(distance: float, w: float = DEFAULT_BUCKET_WIDTH) -> float:
    """Single-hash collision probability for two points at ``distance``.

    >>> collision_probability(0.0)
    1.0
    >>> 0 < collision_probability(4.5) < collision_probability(1.0) < 1
    True
    """
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    if w <= 0:
        raise ValueError(f"bucket width must be > 0, got {w}")
    if distance == 0.0:
        return 1.0
    ratio = w / distance
    return (
        1.0
        - 2.0 * _normal_cdf(-ratio)
        - (2.0 / (math.sqrt(2.0 * math.pi) * ratio)) * (1.0 - math.exp(-(ratio**2) / 2.0))
    )


def euclidean_lsh_parameters(
    threshold: float, k: int, delta: float = 0.1, w: float = DEFAULT_BUCKET_WIDTH
) -> tuple[float, int]:
    """``(p(theta)^K, L)`` via Equation (2) for the Euclidean family."""
    p = collision_probability(threshold, w)
    p_composite = p**k
    return p_composite, optimal_table_count(p_composite, delta)


class EuclideanLSH:
    """Blocking groups over R^dim with the p-stable hash family.

    Mirrors :class:`repro.hamming.lsh.HammingLSH`'s API: ``index`` dataset
    A, then ``candidate_pairs`` / ``match`` against dataset B.
    """

    def __init__(
        self,
        dim: int,
        k: int,
        threshold: float | None = None,
        delta: float = 0.1,
        n_tables: int | None = None,
        w: float = DEFAULT_BUCKET_WIDTH,
        seed: int | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if k < 1:
            raise ValueError(f"K must be >= 1, got {k}")
        if threshold is None and n_tables is None:
            raise ValueError("provide threshold (for Equation 2) or an explicit n_tables")
        self.dim = dim
        self.k = k
        self.w = w
        self.threshold = threshold
        if n_tables is None:
            __, n_tables = euclidean_lsh_parameters(threshold, k, delta, w)
        self.n_tables = n_tables
        rng = np.random.default_rng(seed)
        # One (dim, K) projection matrix and one (K,) offset per table.
        self._projections = [rng.standard_normal((dim, k)) for __ in range(n_tables)]
        self._offsets = [rng.uniform(0.0, w, size=k) for __ in range(n_tables)]
        self._buckets: list[dict[bytes, list[int]]] = [{} for __ in range(n_tables)]
        self._indexed: np.ndarray | None = None

    def _keys(self, points: np.ndarray, table: int) -> np.ndarray:
        hashed = np.floor(
            (points @ self._projections[table] + self._offsets[table]) / self.w
        ).astype(np.int64)
        return hashed

    def index(self, points: np.ndarray) -> None:
        """Store dataset A's vectors (row index = record id)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {points.shape}")
        self._indexed = points
        for table in range(self.n_tables):
            keys = self._keys(points, table)
            buckets = self._buckets[table]
            for i in range(points.shape[0]):
                buckets.setdefault(keys[i].tobytes(), []).append(i)

    def _pairs_per_table(self, points_b: np.ndarray) -> Iterator[np.ndarray]:
        n_b = points_b.shape[0]
        for table in range(self.n_tables):
            keys_b = self._keys(points_b, table)
            buckets = self._buckets[table]
            parts: list[np.ndarray] = []
            for j in range(n_b):
                ids_a = buckets.get(keys_b[j].tobytes())
                if ids_a:
                    parts.append(np.asarray(ids_a, dtype=np.int64) * n_b + j)
            yield np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def candidate_pairs(self, points_b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """De-duplicated candidate pairs against the indexed dataset."""
        points_b = np.asarray(points_b, dtype=np.float64)
        if self._indexed is None:
            raise RuntimeError("call index() before candidate_pairs()")
        chunks = [pairs for pairs in self._pairs_per_table(points_b) if pairs.size]
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        encoded = np.unique(np.concatenate(chunks))
        n_b = points_b.shape[0]
        return encoded // n_b, encoded % n_b

    def match(
        self, points_b: np.ndarray, threshold: float | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Candidates filtered by Euclidean distance <= threshold."""
        if threshold is None:
            threshold = self.threshold
        if threshold is None:
            raise ValueError("no matching threshold available")
        rows_a, rows_b = self.candidate_pairs(points_b)
        if rows_a.size == 0:
            return rows_a, rows_b, np.empty(0, dtype=np.float64)
        assert self._indexed is not None
        deltas = self._indexed[rows_a] - np.asarray(points_b, dtype=np.float64)[rows_b]
        distances = np.sqrt((deltas * deltas).sum(axis=1))
        keep = distances <= threshold
        return rows_a[keep], rows_b[keep], distances[keep]
