"""Baseline embedding/linkage methods the paper compares against (Section 6.1).

Every linker here runs on the shared :class:`repro.pipeline.LinkagePipeline`
runner; see ``docs/pipeline.md`` and the registry in
:mod:`repro.pipeline.registry` for the full catalogue.
"""

from repro.baselines.bfh import BfHLinker
from repro.baselines.canopy import CanopyLinker
from repro.baselines.bloom import (
    BloomFieldEncoder,
    BloomRecordEncoder,
    DEFAULT_BLOOM_BITS,
    DEFAULT_BLOOM_HASHES,
    bloom_positions,
)
from repro.baselines.harra import HarraLinker, record_bigram_set
from repro.baselines.minhash import MinHasher, MinHashLinker, MinHashLSH
from repro.baselines.pstable import (
    DEFAULT_BUCKET_WIDTH,
    EuclideanLSH,
    collision_probability,
    euclidean_lsh_parameters,
)
from repro.baselines.smeb import SMEBLinker
from repro.baselines.sorted_neighborhood import (
    SortedNeighborhoodLinker,
    default_sorting_key,
)
from repro.baselines.stringmap import StringMapEmbedder

__all__ = [
    "BfHLinker",
    "CanopyLinker",
    "SortedNeighborhoodLinker",
    "default_sorting_key",
    "BloomFieldEncoder",
    "BloomRecordEncoder",
    "DEFAULT_BLOOM_BITS",
    "DEFAULT_BLOOM_HASHES",
    "DEFAULT_BUCKET_WIDTH",
    "EuclideanLSH",
    "HarraLinker",
    "MinHashLSH",
    "MinHashLinker",
    "MinHasher",
    "SMEBLinker",
    "StringMapEmbedder",
    "bloom_positions",
    "collision_probability",
    "euclidean_lsh_parameters",
    "record_bigram_set",
]
