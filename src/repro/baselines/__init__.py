"""Baseline embedding/linkage methods the paper compares against (Section 6.1)."""

from repro.baselines.bfh import BfHLinker
from repro.baselines.canopy import CanopyLinker
from repro.baselines.bloom import (
    BloomFieldEncoder,
    BloomRecordEncoder,
    DEFAULT_BLOOM_BITS,
    DEFAULT_BLOOM_HASHES,
    bloom_positions,
)
from repro.baselines.harra import HarraLinker, record_bigram_set
from repro.baselines.minhash import MinHasher, MinHashLSH
from repro.baselines.pstable import (
    DEFAULT_BUCKET_WIDTH,
    EuclideanLSH,
    collision_probability,
    euclidean_lsh_parameters,
)
from repro.baselines.smeb import SMEBLinker
from repro.baselines.sorted_neighborhood import (
    SortedNeighborhoodLinker,
    default_sorting_key,
)
from repro.baselines.stringmap import StringMapEmbedder

__all__ = [
    "BfHLinker",
    "CanopyLinker",
    "SortedNeighborhoodLinker",
    "default_sorting_key",
    "BloomFieldEncoder",
    "BloomRecordEncoder",
    "DEFAULT_BLOOM_BITS",
    "DEFAULT_BLOOM_HASHES",
    "DEFAULT_BUCKET_WIDTH",
    "EuclideanLSH",
    "HarraLinker",
    "MinHashLSH",
    "MinHasher",
    "SMEBLinker",
    "StringMapEmbedder",
    "bloom_positions",
    "collision_probability",
    "euclidean_lsh_parameters",
    "record_bigram_set",
]
