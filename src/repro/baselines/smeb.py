"""SM-EB baseline: StringMap embedding + Euclidean LSH blocking (Section 6.1).

Each attribute is embedded into R^20 by :class:`StringMapEmbedder` (pivots
chosen per attribute from both datasets, as the original algorithm iterates
"the strings of both data sets"), the per-attribute coordinate blocks are
concatenated into record vectors, and the Euclidean p-stable LSH blocks
them.  The attribute-level Euclidean thresholds (paper: 4.5 / 4.5 / 7.7)
are applied during the matching step only; the blocking threshold is the
norm of the threshold vector (the largest record-level distance a pair
inside all attribute thresholds can have).
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence

import numpy as np

from repro.baselines.pstable import EuclideanLSH
from repro.baselines.stringmap import StringMapEmbedder
from repro.core.linker import DatasetLike, LinkageResult, _value_rows


class SMEBLinker:
    """StringMap + Euclidean-LSH record linkage.

    Parameters
    ----------
    attribute_thresholds:
        Euclidean matching threshold per attribute name (``f1..fn`` by
        default).  Attributes without one are embedded but unconstrained.
    n_attributes:
        Number of record attributes.
    d:
        StringMap dimensionality per attribute (paper: 20).
    k:
        Base hashes per blocking group (paper: 5).
    """

    def __init__(
        self,
        attribute_thresholds: Mapping[str, float],
        n_attributes: int,
        names: Sequence[str] | None = None,
        d: int = 20,
        k: int = 5,
        delta: float = 0.1,
        n_tables: int | None = None,
        w: float | None = None,
        max_tables: int = 250,
        pivot_sample: int = 50,
        seed: int | None = None,
    ):
        if not attribute_thresholds:
            raise ValueError("attribute_thresholds must be non-empty")
        if n_attributes < 1:
            raise ValueError(f"n_attributes must be >= 1, got {n_attributes}")
        if names is None:
            names = [f"f{i + 1}" for i in range(n_attributes)]
        if len(names) != n_attributes:
            raise ValueError(f"{len(names)} names for {n_attributes} attributes")
        unknown = set(attribute_thresholds) - set(names)
        if unknown:
            raise ValueError(f"thresholds reference unknown attributes {sorted(unknown)}")
        self.names = list(names)
        self.attribute_thresholds = dict(attribute_thresholds)
        self.d = d
        self.k = k
        self.delta = delta
        self.n_tables = n_tables
        self.max_tables = max_tables
        self.pivot_sample = pivot_sample
        self.seed = seed
        # Datar et al.'s family needs the bucket width scaled to the target
        # radius; w of about twice the blocking threshold reproduces the
        # paper's group counts for K = 5 (L ~= 29 under PL with thresholds
        # of 4.5, and ~194 under PH when the same w = 9 is kept).
        self.w = w if w is not None else 2.0 * self.blocking_threshold

    @property
    def blocking_threshold(self) -> float:
        """Record-level Euclidean threshold fed into Equation (2).

        Follows the paper's calibration: the attribute-level threshold
        (its largest value across attributes) rather than the norm of the
        threshold vector.  Reverse-engineering the paper's L = 29 (PL) and
        L = 194 (PH) shows this is what the authors used — and it is also
        the source of SM-EB's low PC, since rule-satisfying pairs sit at
        *record-level* distances well above one attribute's threshold.
        """
        return float(max(self.attribute_thresholds.values()))

    @property
    def computed_n_tables(self) -> int:
        """The (capped) L that Equation (2) yields for this configuration."""
        if self.n_tables is not None:
            return self.n_tables
        from repro.baselines.pstable import euclidean_lsh_parameters

        __, tables = euclidean_lsh_parameters(
            self.blocking_threshold, self.k, self.delta, self.w
        )
        return min(tables, self.max_tables)

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        rows_a = _value_rows(dataset_a)
        rows_b = _value_rows(dataset_b)
        n_attrs = len(self.names)

        # Embed: per attribute, fit pivots on both datasets' values, then
        # transform each column.  This (pivot selection over repeated edit
        # distance computations) dominates SM-EB's embedding time, exactly
        # as the paper's Figure 8(b) reports.
        t0 = time.perf_counter()
        blocks_a: list[np.ndarray] = []
        blocks_b: list[np.ndarray] = []
        seeds = np.random.SeedSequence(self.seed).spawn(n_attrs + 1)
        for att in range(n_attrs):
            column_a = [row[att] for row in rows_a]
            column_b = [row[att] for row in rows_b]
            embedder = StringMapEmbedder(
                d=self.d, pivot_sample=self.pivot_sample, seed=seeds[att]
            )
            embedder.fit(column_a + column_b)
            blocks_a.append(embedder.transform(column_a))
            blocks_b.append(embedder.transform(column_b))
        points_a = np.hstack(blocks_a)
        points_b = np.hstack(blocks_b)
        t_embed = time.perf_counter() - t0

        t0 = time.perf_counter()
        lsh = EuclideanLSH(
            dim=n_attrs * self.d,
            k=self.k,
            threshold=self.blocking_threshold,
            delta=self.delta,
            n_tables=self.computed_n_tables,
            w=self.w,
            seed=seeds[n_attrs],
        )
        lsh.index(points_a)
        t_index = time.perf_counter() - t0

        t0 = time.perf_counter()
        cand_a, cand_b = lsh.candidate_pairs(points_b)
        if cand_a.size:
            accepted = np.ones(cand_a.size, dtype=bool)
            attr_distances: dict[str, np.ndarray] = {}
            for att, name in enumerate(self.names):
                block = slice(att * self.d, (att + 1) * self.d)
                deltas = points_a[cand_a, block] - points_b[cand_b, block]
                distances = np.sqrt((deltas * deltas).sum(axis=1))
                attr_distances[name] = distances
                threshold = self.attribute_thresholds.get(name)
                if threshold is not None:
                    accepted &= distances <= threshold
            out_a, out_b = cand_a[accepted], cand_b[accepted]
            attr_distances = {name: d[accepted] for name, d in attr_distances.items()}
        else:
            out_a, out_b = cand_a, cand_b
            attr_distances = {}
        t_match = time.perf_counter() - t0

        return LinkageResult(
            rows_a=out_a,
            rows_b=out_b,
            n_candidates=int(cand_a.size),
            comparison_space=len(rows_a) * len(rows_b),
            timings={"embed": t_embed, "index": t_index, "match": t_match},
            attribute_distances=attr_distances,
        )
