"""SM-EB baseline: StringMap embedding + Euclidean LSH blocking (Section 6.1).

Each attribute is embedded into R^20 by :class:`StringMapEmbedder` (pivots
chosen per attribute from both datasets, as the original algorithm iterates
"the strings of both data sets"), the per-attribute coordinate blocks are
concatenated into record vectors, and the Euclidean p-stable LSH blocks
them.  The attribute-level Euclidean thresholds (paper: 4.5 / 4.5 / 7.7)
are applied during the matching step only; the blocking threshold is the
largest attribute threshold (see :attr:`SMEBLinker.blocking_threshold`).

On the stage pipeline this is the StringMap embed stage, the shared
blocker index / materialised candidate stages over :class:`EuclideanLSH`,
and the shared attribute-threshold classify stage fed by per-attribute
block Euclidean distances.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.baselines.pstable import EuclideanLSH
from repro.baselines.stringmap import StringMapEmbedder as StringMapEmbedder
from repro.baselines.stringmap import StringMapEmbedStage
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stages import (
    AttributeThresholdClassifyStage,
    BlockerIndexStage,
    MaterializedCandidateStage,
)
from repro.protocol import DatasetLike


class SMEBLinker:
    """StringMap + Euclidean-LSH record linkage.

    Parameters
    ----------
    attribute_thresholds:
        Euclidean matching threshold per attribute name (``f1..fn`` by
        default).  Attributes without one are embedded but unconstrained.
    n_attributes:
        Number of record attributes.
    d:
        StringMap dimensionality per attribute (paper: 20).
    k:
        Base hashes per blocking group (paper: 5).
    """

    def __init__(
        self,
        attribute_thresholds: Mapping[str, float],
        n_attributes: int,
        names: Sequence[str] | None = None,
        d: int = 20,
        k: int = 5,
        delta: float = 0.1,
        n_tables: int | None = None,
        w: float | None = None,
        max_tables: int = 250,
        pivot_sample: int = 50,
        seed: int | None = None,
    ) -> None:
        if not attribute_thresholds:
            raise ValueError("attribute_thresholds must be non-empty")
        if n_attributes < 1:
            raise ValueError(f"n_attributes must be >= 1, got {n_attributes}")
        if names is None:
            names = [f"f{i + 1}" for i in range(n_attributes)]
        if len(names) != n_attributes:
            raise ValueError(f"{len(names)} names for {n_attributes} attributes")
        unknown = set(attribute_thresholds) - set(names)
        if unknown:
            raise ValueError(f"thresholds reference unknown attributes {sorted(unknown)}")
        self.names = list(names)
        self.attribute_thresholds = dict(attribute_thresholds)
        self.d = d
        self.k = k
        self.delta = delta
        self.n_tables = n_tables
        self.max_tables = max_tables
        self.pivot_sample = pivot_sample
        self.seed = seed
        # Datar et al.'s family needs the bucket width scaled to the target
        # radius; w of about twice the blocking threshold reproduces the
        # paper's group counts for K = 5 (L ~= 29 under PL with thresholds
        # of 4.5, and ~194 under PH when the same w = 9 is kept).
        self.w = w if w is not None else 2.0 * self.blocking_threshold

    @property
    def blocking_threshold(self) -> float:
        """Record-level Euclidean threshold fed into Equation (2).

        Follows the paper's calibration: the attribute-level threshold
        (its largest value across attributes) rather than the norm of the
        threshold vector.  Reverse-engineering the paper's L = 29 (PL) and
        L = 194 (PH) shows this is what the authors used — and it is also
        the source of SM-EB's low PC, since rule-satisfying pairs sit at
        *record-level* distances well above one attribute's threshold.
        """
        return float(max(self.attribute_thresholds.values()))

    @property
    def computed_n_tables(self) -> int:
        """The (capped) L that Equation (2) yields for this configuration."""
        if self.n_tables is not None:
            return self.n_tables
        from repro.baselines.pstable import euclidean_lsh_parameters

        __, tables = euclidean_lsh_parameters(
            self.blocking_threshold, self.k, self.delta, self.w
        )
        return min(tables, self.max_tables)

    def _build_lsh(self, seed: np.random.SeedSequence) -> EuclideanLSH:
        return EuclideanLSH(
            dim=len(self.names) * self.d,
            k=self.k,
            threshold=self.blocking_threshold,
            delta=self.delta,
            n_tables=self.computed_n_tables,
            w=self.w,
            seed=seed,
        )

    def _attribute_distances(self, ctx: PipelineContext) -> dict[str, np.ndarray]:
        """Per-attribute Euclidean distances over the candidate pairs."""
        assert ctx.cand_a is not None and ctx.cand_b is not None
        points_a, points_b = ctx.embedded_a, ctx.embedded_b
        distances: dict[str, np.ndarray] = {}
        for att, name in enumerate(self.names):
            block = slice(att * self.d, (att + 1) * self.d)
            deltas = points_a[ctx.cand_a, block] - points_b[ctx.cand_b, block]
            distances[name] = np.sqrt((deltas * deltas).sum(axis=1))
        return distances

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """embed -> p-stable blocking -> attribute-threshold matching."""
        seeds = np.random.SeedSequence(self.seed).spawn(len(self.names) + 1)
        pipeline = LinkagePipeline(
            [
                StringMapEmbedStage(
                    n_attributes=len(self.names),
                    d=self.d,
                    pivot_sample=self.pivot_sample,
                    seeds=seeds[: len(self.names)],
                ),
                BlockerIndexStage(lambda ctx: self._build_lsh(seeds[len(self.names)])),
                MaterializedCandidateStage(),
                AttributeThresholdClassifyStage(
                    self.attribute_thresholds, self._attribute_distances
                ),
            ]
        )
        return pipeline.run(dataset_a, dataset_b)
