"""StringMap baseline (Jin, Li & Mehrotra, DASFAA 2003) — Section 6.1.

StringMap is a FastMap-style embedding of strings into a ``d``-dimensional
Euclidean space under the edit distance metric.  For every axis it selects
two far-apart *pivot* strings and projects each string onto the line
through them; subsequent axes operate on the residual ("reduced")
distances, which subtract the projections of all previous axes:

    coord_h(s)   = (d_h(s, p1)^2 + d_h(p1, p2)^2 - d_h(s, p2)^2)
                   / (2 * d_h(p1, p2))
    d_h(x, y)^2  = ed(x, y)^2 - sum_{j < h} (coord_j(x) - coord_j(y))^2

Pivot selection iterates the "choose the farthest point" heuristic on a
sample, which is the expensive part the paper's Figure 8(b) highlights.
The paper sets ``d = 20`` per attribute.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.pipeline.context import PipelineContext
from repro.pipeline.stage import EmbedStage
from repro.text.edit_distance import levenshtein


class StringMapEmbedder:
    """Embed one attribute's strings into R^d under edit distance.

    Parameters
    ----------
    d:
        Embedding dimensionality (paper: 20).
    pivot_sample:
        Sample size for the farthest-pair pivot search.
    pivot_iterations:
        Farthest-point alternations per axis (2 suffices in practice).
    """

    def __init__(
        self,
        d: int = 20,
        pivot_sample: int = 50,
        pivot_iterations: int = 2,
        seed: int | None = None,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = d
        self.pivot_sample = pivot_sample
        self.pivot_iterations = pivot_iterations
        self.seed = seed
        # Per axis: (pivot1, pivot2, distance(p1, p2) on that axis's
        # reduced metric, coordinates of both pivots on earlier axes).
        self._pivots: list[tuple[str, str, float]] = []
        self._pivot_coords: dict[str, list[float]] = {}
        self._ed_cache: dict[tuple[str, str], int] = {}

    # -- metric helpers ---------------------------------------------------------

    def _edit(self, s: str, t: str) -> int:
        if s == t:
            return 0
        key = (s, t) if s <= t else (t, s)
        cached = self._ed_cache.get(key)
        if cached is None:
            cached = levenshtein(s, t)
            self._ed_cache[key] = cached
        return cached

    def _reduced_sq(self, s: str, t: str, coords_s: list[float], coords_t: list[float], h: int) -> float:
        """Squared reduced distance at axis ``h``: ed^2 minus prior projections."""
        value = float(self._edit(s, t)) ** 2
        for j in range(h):
            diff = coords_s[j] - coords_t[j]
            value -= diff * diff
        return value

    # -- fitting --------------------------------------------------------------------

    def fit(self, values: Sequence[str]) -> "StringMapEmbedder":
        """Select pivots for every axis from (a sample of) ``values``."""
        if not values:
            raise ValueError("values must be non-empty")
        rng = np.random.default_rng(self.seed)
        distinct = sorted(set(values))
        if len(distinct) > self.pivot_sample:
            picks = rng.choice(len(distinct), size=self.pivot_sample, replace=False)
            sample = [distinct[int(i)] for i in picks]
        else:
            sample = distinct

        self._pivots = []
        self._pivot_coords = {s: [] for s in sample}
        sample_coords = self._pivot_coords

        for h in range(self.d):
            p1 = sample[int(rng.integers(0, len(sample)))]
            p2 = p1
            for __ in range(self.pivot_iterations):
                p2 = max(
                    sample,
                    key=lambda t: self._reduced_sq(p1, t, sample_coords[p1], sample_coords[t], h),
                )
                p1, p2 = p2, p1
            p1, p2 = p2, p1  # undo the final swap: p1 is the last anchor
            dist_sq = self._reduced_sq(p1, p2, sample_coords[p1], sample_coords[p2], h)
            dist = float(np.sqrt(max(dist_sq, 0.0)))
            self._pivots.append((p1, p2, dist))
            # Extend the sample coordinates to this axis so later axes can
            # compute their reduced distances.
            for s in sample:
                sample_coords[s].append(
                    self._coordinate(s, sample_coords[s], h, p1, p2, dist)
                )
        # Keep only the pivots' coordinates for transform-time reuse.
        pivot_strings = {p for p1, p2, __ in self._pivots for p in (p1, p2)}
        self._pivot_coords = {s: sample_coords[s] for s in pivot_strings if s in sample_coords}
        return self

    def _coordinate(
        self, s: str, coords_s: list[float], h: int, p1: str, p2: str, dist: float
    ) -> float:
        if dist <= 0.0:
            return 0.0
        d1_sq = self._reduced_sq(s, p1, coords_s, self._coords_of(p1, h), h)
        d2_sq = self._reduced_sq(s, p2, coords_s, self._coords_of(p2, h), h)
        return (d1_sq + dist * dist - d2_sq) / (2.0 * dist)

    def _coords_of(self, pivot: str, h: int) -> list[float]:
        coords = self._pivot_coords.get(pivot)
        if coords is None:
            raise RuntimeError(f"pivot {pivot!r} has no stored coordinates")
        return coords[:h]

    # -- transformation --------------------------------------------------------------

    def transform(self, values: Sequence[str]) -> np.ndarray:
        """Coordinates of ``values``: shape ``(len(values), d)``."""
        if not self._pivots:
            raise RuntimeError("fit() must run before transform()")
        out = np.zeros((len(values), self.d), dtype=np.float64)
        memo: dict[str, list[float]] = {}
        for i, value in enumerate(values):
            coords = memo.get(value)
            if coords is None:
                coords = []
                for h, (p1, p2, dist) in enumerate(self._pivots):
                    coords.append(self._coordinate(value, coords, h, p1, p2, dist))
                memo[value] = coords
            out[i] = coords
        return out

    def fit_transform(self, values: Sequence[str]) -> np.ndarray:
        return self.fit(values).transform(values)


class StringMapEmbedStage(EmbedStage):
    """Per-attribute StringMap embeddings, concatenated into record vectors.

    For every attribute a fresh :class:`StringMapEmbedder` fits its pivots
    on the pooled values of both datasets (the original algorithm iterates
    "the strings of both data sets"), then transforms each column; the
    per-attribute coordinate blocks are horizontally stacked.  Pivot
    selection over repeated edit-distance computations dominates SM-EB's
    embedding time, exactly as the paper's Figure 8(b) reports.
    """

    def __init__(
        self,
        n_attributes: int,
        d: int,
        pivot_sample: int,
        seeds: Sequence[Any],
    ) -> None:
        if len(seeds) != n_attributes:
            raise ValueError(f"{len(seeds)} seeds for {n_attributes} attributes")
        self.n_attributes = n_attributes
        self.d = d
        self.pivot_sample = pivot_sample
        self.seeds = list(seeds)

    def run(self, ctx: PipelineContext) -> None:
        blocks_a: list[np.ndarray] = []
        blocks_b: list[np.ndarray] = []
        for att in range(self.n_attributes):
            column_a = [row[att] for row in ctx.rows_a]
            column_b = [row[att] for row in ctx.rows_b]
            embedder = StringMapEmbedder(
                d=self.d, pivot_sample=self.pivot_sample, seed=self.seeds[att]
            )
            embedder.fit(column_a + column_b)
            blocks_a.append(embedder.transform(column_a))
            blocks_b.append(embedder.transform(column_b))
        ctx.embedded_a = np.hstack(blocks_a)
        ctx.embedded_b = np.hstack(blocks_b)
