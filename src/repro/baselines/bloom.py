"""Field-level Bloom filter encoding (Schnell, Bachteler & Reiher [27]).

The BfH baseline [17] embeds each attribute value into a Bloom filter: a
bitmap of ``n_bits`` positions where every bigram of the value is hashed by
``n_hash_functions`` independent composite cryptographic hash functions.
The paper's configuration is 500 bits and 15 hash functions per bigram.

The standard construction uses the *double hashing* scheme of [26, 27]:
``h_i(gram) = (H1(gram) + i * H2(gram)) mod n_bits`` with ``H1 = MD5`` and
``H2 = SHA1``, which is what real Bloom-filter PPRL implementations do.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from repro.core.encoder import AttributeLayout
from repro.core.qgram import QGramScheme
from repro.hamming.bitmatrix import BitMatrix, scatter_bits
from repro.hamming.bitvector import BitVector
from repro.hamming.distance import masked_hamming_rows
from repro.pipeline.context import PipelineContext
from repro.pipeline.stage import EmbedStage
from repro.text.alphabet import TEXT_ALPHABET

#: Paper configuration: "a size of 500 bits by using 15 cryptographic hash
#: functions for each bigram, as proposed in [27]".
DEFAULT_BLOOM_BITS = 500
DEFAULT_BLOOM_HASHES = 15


@lru_cache(maxsize=65536)
def _digest_pair(gram: str) -> tuple[int, int]:
    """(MD5, SHA1) digests of a q-gram as integers (cached: grams repeat)."""
    data = gram.encode("utf-8")
    h1 = int.from_bytes(hashlib.md5(data).digest()[:8], "big")
    h2 = int.from_bytes(hashlib.sha1(data).digest()[:8], "big")
    return h1, h2


def bloom_positions(gram: str, n_bits: int, n_hashes: int) -> list[int]:
    """Double-hashing positions of one q-gram: ``(H1 + i*H2) mod n_bits``."""
    h1, h2 = _digest_pair(gram)
    return [(h1 + i * h2) % n_bits for i in range(n_hashes)]


class BloomFieldEncoder:
    """Encode one attribute's values into fixed-size Bloom filters."""

    def __init__(
        self,
        n_bits: int = DEFAULT_BLOOM_BITS,
        n_hashes: int = DEFAULT_BLOOM_HASHES,
        scheme: QGramScheme | None = None,
    ) -> None:
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        if n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self.scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)

    def positions(self, value: str) -> frozenset[int]:
        """All Bloom filter positions set by ``value``'s q-grams."""
        out: set[int] = set()
        for gram in set(self.scheme.grams(value)):
            out.update(bloom_positions(gram, self.n_bits, self.n_hashes))
        return frozenset(out)

    def encode(self, value: str) -> BitVector:
        return BitVector.from_indices(self.n_bits, self.positions(value))

    def encode_all(self, values: Sequence[str]) -> BitMatrix:
        rows: list[int] = []
        bits: list[int] = []
        for i, value in enumerate(values):
            positions = self.positions(value)
            rows.extend([i] * len(positions))
            bits.extend(positions)
        if not bits:
            return BitMatrix.zeros(len(values), self.n_bits)
        return scatter_bits(
            len(values),
            self.n_bits,
            np.asarray(rows, dtype=np.int64),
            np.asarray(bits, dtype=np.int64),
        )


class BloomRecordEncoder:
    """Record-level Bloom encoding: one field-level filter per attribute,
    concatenated — the structure BfH blocks and matches on."""

    def __init__(
        self,
        n_attributes: int,
        names: Sequence[str] | None = None,
        n_bits: int = DEFAULT_BLOOM_BITS,
        n_hashes: int = DEFAULT_BLOOM_HASHES,
        scheme: QGramScheme | None = None,
    ) -> None:
        if n_attributes < 1:
            raise ValueError(f"n_attributes must be >= 1, got {n_attributes}")
        if names is None:
            names = [f"f{i + 1}" for i in range(n_attributes)]
        if len(names) != n_attributes:
            raise ValueError(f"{len(names)} names for {n_attributes} attributes")
        self.field_encoder = BloomFieldEncoder(n_bits, n_hashes, scheme)
        self.names = list(names)
        self.layouts = [
            AttributeLayout(name=name, offset=i * n_bits, width=n_bits)
            for i, name in enumerate(names)
        ]

    @property
    def total_bits(self) -> int:
        return self.layouts[-1].stop

    def layout(self, attribute: str) -> AttributeLayout:
        for candidate in self.layouts:
            if candidate.name == attribute:
                return candidate
        raise KeyError(f"unknown attribute {attribute!r}; have {self.names}")

    def encode_dataset(self, records: Sequence[Sequence[str]]) -> BitMatrix:
        rows: list[int] = []
        bits: list[int] = []
        for i, record in enumerate(records):
            if len(record) != len(self.layouts):
                raise ValueError(
                    f"record has {len(record)} values, encoder expects {len(self.layouts)}"
                )
            for layout, value in zip(self.layouts, record):
                for bit in self.field_encoder.positions(value):
                    rows.append(i)
                    bits.append(bit + layout.offset)
        if not bits:
            return BitMatrix.zeros(len(records), self.total_bits)
        return scatter_bits(
            len(records),
            self.total_bits,
            np.asarray(rows, dtype=np.int64),
            np.asarray(bits, dtype=np.int64),
        )

    def attribute_distances(
        self,
        matrix_a: BitMatrix,
        rows_a: np.ndarray,
        matrix_b: BitMatrix,
        rows_b: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Per-attribute Hamming distances for candidate pairs."""
        return {
            layout.name: masked_hamming_rows(
                matrix_a.words, rows_a, matrix_b.words, rows_b, layout.offset, layout.stop
            )
            for layout in self.layouts
        }


class BloomEmbedStage(EmbedStage):
    """Embed both datasets with a pre-built :class:`BloomRecordEncoder`."""

    def __init__(self, encoder: BloomRecordEncoder) -> None:
        self.encoder = encoder

    def run(self, ctx: PipelineContext) -> None:
        ctx.encoder = self.encoder
        ctx.embedded_a = self.encoder.encode_dataset(ctx.rows_a)
        ctx.embedded_b = self.encoder.encode_dataset(ctx.rows_b)
