"""MinHash LSH over q-gram sets (the Jaccard space J).

The HARRA baseline [18] blocks records by Min-Hashing their bigram sets:
each base hash function applies a random permutation of the q-gram vector
indexes and returns the index of the minimum non-zero element; ``K`` base
hashes form a band (blocking key) and ``L`` bands form the blocking
groups.

Random permutations are realised permutation-free with universal hashes
``g(x) = ((a*x + b) mod P) mod U`` — the standard MinHash construction:
``min_{x in U_s} g(x)`` is distributed like the first set element under a
random permutation, so ``Pr[minhash(A) = minhash(B)] ≈ Jaccard(A, B)``.

The signature computation is vectorised with ``numpy.minimum.reduceat``
over the concatenated element arrays of all records.

Besides the raw machinery this module provides the MinHash pipeline
stages (:class:`BigramSetEmbedStage`, :class:`MinHashIndexStage`,
:class:`MinHashCandidateStage`, :class:`JaccardVerifyStage`) and
:class:`MinHashLinker` — a *non-iterative* MinHash LSH linker that runs
all bands to completion, the ablation partner of HARRA's early-pruning
h-CC.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.cvector import HASH_PRIME
from repro.core.qgram import QGramScheme
from repro.hamming.distance import jaccard_distance_sets
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stage import BlockStage, CandidateStage, EmbedStage, VerifyStage
from repro.protocol import DatasetLike
from repro.text.alphabet import TEXT_ALPHABET


def record_bigram_set(values: Sequence[str], scheme: QGramScheme) -> frozenset[int]:
    """One q-gram index set for the whole record (all attributes merged)."""
    out: set[int] = set()
    for value in values:
        out |= scheme.index_set(value)
    return frozenset(out)


class MinHasher:
    """``n_hashes`` independent MinHash functions over integer sets.

    Parameters
    ----------
    n_hashes:
        Number of independent hash functions.
    prefix_fraction:
        Emulate HARRA's truncated-permutation implementation: only hash
        values inside the first ``prefix_fraction`` of the range count
        ("we mostly end up with an index holding 0, which implies that
        more elements of each permutation should be used" — Section 6.1).
        When a set has no element in the examined prefix, the slot takes
        the sentinel value ``p``, so similar records can land in
        different buckets — the recall loss the paper reports for HARRA.
        ``None`` (default) is the exact, permutation-free MinHash.
    """

    def __init__(
        self,
        n_hashes: int,
        seed: int | None = None,
        p: int = HASH_PRIME,
        prefix_fraction: float | None = None,
    ) -> None:
        if n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
        if prefix_fraction is not None and not 0.0 < prefix_fraction <= 1.0:
            raise ValueError(f"prefix_fraction must be in (0, 1], got {prefix_fraction}")
        rng = np.random.default_rng(seed)
        self.n_hashes = n_hashes
        self.p = p
        self.prefix_fraction = prefix_fraction
        self._cutoff = p if prefix_fraction is None else int(p * prefix_fraction)
        self._a = rng.integers(1, p, size=n_hashes, dtype=np.int64)
        self._b = rng.integers(1, p, size=n_hashes, dtype=np.int64)

    def signature(self, elements: Sequence[int]) -> np.ndarray:
        """The MinHash signature of one set (shape ``(n_hashes,)``)."""
        if not elements:
            return np.full(self.n_hashes, self.p, dtype=np.int64)
        xs = np.asarray(sorted(elements), dtype=np.int64)
        values = (self._a[:, None] * xs[None, :] + self._b[:, None]) % self.p
        values = np.where(values < self._cutoff, values, self.p)
        return values.min(axis=1)

    def signatures(self, sets: Sequence[frozenset[int]]) -> np.ndarray:
        """Signature matrix for many sets (shape ``(n_sets, n_hashes)``).

        Empty sets get the sentinel signature ``p`` in every slot, which
        never collides with a non-empty set's minimum (< p).
        """
        if not sets:
            raise ValueError("sets must be non-empty")
        lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        output = np.full((len(sets), self.n_hashes), self.p, dtype=np.int64)
        non_empty = np.flatnonzero(lengths)
        if non_empty.size == 0:
            return output
        elements = np.concatenate(
            [np.fromiter(sets[int(i)], dtype=np.int64, count=lengths[i]) for i in non_empty]
        )
        offsets = np.zeros(non_empty.size, dtype=np.int64)
        np.cumsum(lengths[non_empty][:-1], out=offsets[1:])
        for h in range(self.n_hashes):
            values = (self._a[h] * elements + self._b[h]) % self.p
            values = np.where(values < self._cutoff, values, self.p)
            output[non_empty, h] = np.minimum.reduceat(values, offsets)
        return output


class MinHashLSH:
    """Banded MinHash blocking: ``L`` bands of ``K`` rows each.

    A pair is formulated when all ``K`` signature slots of at least one
    band agree — collision probability ``1 - (1 - s^K)^L`` for Jaccard
    similarity ``s``.
    """

    def __init__(
        self,
        k: int,
        n_tables: int,
        seed: int | None = None,
        prefix_fraction: float | None = None,
    ) -> None:
        if k < 1 or n_tables < 1:
            raise ValueError(f"K and L must be >= 1, got K={k}, L={n_tables}")
        self.k = k
        self.n_tables = n_tables
        self.hasher = MinHasher(k * n_tables, seed=seed, prefix_fraction=prefix_fraction)

    def band_keys(self, sets: Sequence[frozenset[int]]) -> list[np.ndarray]:
        """One key array per band; keys are hashable row tuples packed as bytes."""
        signatures = self.hasher.signatures(sets)
        keys: list[np.ndarray] = []
        for band in range(self.n_tables):
            chunk = np.ascontiguousarray(
                signatures[:, band * self.k : (band + 1) * self.k]
            )
            keys.append(chunk.view([("", chunk.dtype)] * self.k).ravel())
        return keys


def collision_probability(jaccard_similarity: float, k: int, n_tables: int) -> float:
    """``1 - (1 - s^K)^L``: the banded MinHash collision probability."""
    if not 0.0 <= jaccard_similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {jaccard_similarity}")
    return 1.0 - (1.0 - jaccard_similarity**k) ** n_tables


# -- pipeline stages -----------------------------------------------------------


class BigramSetEmbedStage(EmbedStage):
    """Record-level bigram index sets of both datasets.

    The Jaccard-space "embedding": one merged q-gram set per record,
    stored in ``ctx.extras['sets_a'] / ['sets_b']`` for the index and
    verify stages.
    """

    def __init__(self, scheme: QGramScheme) -> None:
        self.scheme = scheme

    def run(self, ctx: PipelineContext) -> None:
        ctx.extras["sets_a"] = [record_bigram_set(row, self.scheme) for row in ctx.rows_a]
        ctx.extras["sets_b"] = [record_bigram_set(row, self.scheme) for row in ctx.rows_b]


class MinHashIndexStage(BlockStage):
    """Build the banded MinHash LSH and both datasets' band keys."""

    def __init__(
        self,
        k: int,
        n_tables: int,
        seed: int | None = None,
        prefix_fraction: float | None = None,
    ) -> None:
        self.k = k
        self.n_tables = n_tables
        self.seed = seed
        self.prefix_fraction = prefix_fraction

    def run(self, ctx: PipelineContext) -> None:
        lsh = MinHashLSH(
            k=self.k,
            n_tables=self.n_tables,
            seed=self.seed,
            prefix_fraction=self.prefix_fraction,
        )
        ctx.blocker = lsh
        ctx.extras["band_keys_a"] = lsh.band_keys(ctx.extras["sets_a"])
        ctx.extras["band_keys_b"] = lsh.band_keys(ctx.extras["sets_b"])


class MinHashCandidateStage(CandidateStage):
    """De-duplicated candidates from *all* bands (non-iterative variant)."""

    def run(self, ctx: PipelineContext) -> None:
        keys_a = ctx.extras["band_keys_a"]
        keys_b = ctx.extras["band_keys_b"]
        n_a, n_b = len(ctx.rows_a), len(ctx.rows_b)
        parts: list[np.ndarray] = []
        for band in range(ctx.blocker.n_tables):
            buckets: dict[object, list[int]] = {}
            band_a = keys_a[band]
            for i in range(n_a):
                buckets.setdefault(band_a[i].item(), []).append(i)
            band_b = keys_b[band]
            for j in range(n_b):
                ids_a = buckets.get(band_b[j].item())
                if ids_a:
                    parts.append(np.asarray(ids_a, dtype=np.int64) * n_b + j)
        if parts:
            encoded = np.unique(np.concatenate(parts))
            ctx.cand_a, ctx.cand_b = encoded // n_b, encoded % n_b
        else:
            empty = np.empty(0, dtype=np.int64)
            ctx.cand_a, ctx.cand_b = empty, empty
        ctx.n_candidates = int(ctx.cand_a.size)


class JaccardVerifyStage(VerifyStage):
    """Filter candidates by exact Jaccard distance of their bigram sets."""

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def run(self, ctx: PipelineContext) -> None:
        cand_a, cand_b = ctx.cand_a, ctx.cand_b
        assert cand_a is not None and cand_b is not None
        sets_a = ctx.extras["sets_a"]
        sets_b = ctx.extras["sets_b"]
        distances = np.fromiter(
            (
                jaccard_distance_sets(sets_a[int(i)], sets_b[int(j)])
                for i, j in zip(cand_a, cand_b)
            ),
            dtype=np.float64,
            count=int(cand_a.size),
        )
        ctx.counters["pairs_verified"] = float(cand_a.size)
        keep = distances <= self.threshold
        ctx.out_a, ctx.out_b = cand_a[keep], cand_b[keep]
        ctx.record_distances = distances[keep]


class MinHashLinker:
    """Non-iterative MinHash LSH linkage — HARRA without the heuristics.

    Same Jaccard space and banding as HARRA's h-CC, but every band
    contributes to one de-duplicated candidate set, no early pruning
    removes matched records, and the exact (permutation-free) MinHash is
    the default — the idealised ablation partner that isolates what
    HARRA's iterative shortcuts cost in recall.

    Parameters
    ----------
    threshold:
        Jaccard *distance* threshold for the matching step.
    k, n_tables:
        Band size and band count (HARRA's K and L).
    prefix_fraction:
        ``None`` (default) for the exact MinHash; a fraction reproduces
        HARRA's truncated-permutation implementation.
    """

    def __init__(
        self,
        threshold: float = 0.35,
        k: int = 5,
        n_tables: int = 30,
        scheme: QGramScheme | None = None,
        prefix_fraction: float | None = None,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"Jaccard distance threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.k = k
        self.n_tables = n_tables
        self.scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)
        self.prefix_fraction = prefix_fraction
        self.seed = seed

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """embed -> index -> candidates -> verify on the shared runner."""
        pipeline = LinkagePipeline(
            [
                BigramSetEmbedStage(self.scheme),
                MinHashIndexStage(
                    k=self.k,
                    n_tables=self.n_tables,
                    seed=self.seed,
                    prefix_fraction=self.prefix_fraction,
                ),
                MinHashCandidateStage(),
                JaccardVerifyStage(self.threshold),
            ]
        )
        return pipeline.run(dataset_a, dataset_b)
