"""MinHash LSH over q-gram sets (the Jaccard space J).

The HARRA baseline [18] blocks records by Min-Hashing their bigram sets:
each base hash function applies a random permutation of the q-gram vector
indexes and returns the index of the minimum non-zero element; ``K`` base
hashes form a band (blocking key) and ``L`` bands form the blocking
groups.

Random permutations are realised permutation-free with universal hashes
``g(x) = ((a*x + b) mod P) mod U`` — the standard MinHash construction:
``min_{x in U_s} g(x)`` is distributed like the first set element under a
random permutation, so ``Pr[minhash(A) = minhash(B)] ≈ Jaccard(A, B)``.

The signature computation is vectorised with ``numpy.minimum.reduceat``
over the concatenated element arrays of all records.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.cvector import HASH_PRIME


class MinHasher:
    """``n_hashes`` independent MinHash functions over integer sets.

    Parameters
    ----------
    n_hashes:
        Number of independent hash functions.
    prefix_fraction:
        Emulate HARRA's truncated-permutation implementation: only hash
        values inside the first ``prefix_fraction`` of the range count
        ("we mostly end up with an index holding 0, which implies that
        more elements of each permutation should be used" — Section 6.1).
        When a set has no element in the examined prefix, the slot takes
        the sentinel value ``p``, so similar records can land in
        different buckets — the recall loss the paper reports for HARRA.
        ``None`` (default) is the exact, permutation-free MinHash.
    """

    def __init__(
        self,
        n_hashes: int,
        seed: int | None = None,
        p: int = HASH_PRIME,
        prefix_fraction: float | None = None,
    ):
        if n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
        if prefix_fraction is not None and not 0.0 < prefix_fraction <= 1.0:
            raise ValueError(f"prefix_fraction must be in (0, 1], got {prefix_fraction}")
        rng = np.random.default_rng(seed)
        self.n_hashes = n_hashes
        self.p = p
        self.prefix_fraction = prefix_fraction
        self._cutoff = p if prefix_fraction is None else int(p * prefix_fraction)
        self._a = rng.integers(1, p, size=n_hashes, dtype=np.int64)
        self._b = rng.integers(1, p, size=n_hashes, dtype=np.int64)

    def signature(self, elements: Sequence[int]) -> np.ndarray:
        """The MinHash signature of one set (shape ``(n_hashes,)``)."""
        if not elements:
            return np.full(self.n_hashes, self.p, dtype=np.int64)
        xs = np.asarray(sorted(elements), dtype=np.int64)
        values = (self._a[:, None] * xs[None, :] + self._b[:, None]) % self.p
        values = np.where(values < self._cutoff, values, self.p)
        return values.min(axis=1)

    def signatures(self, sets: Sequence[frozenset[int]]) -> np.ndarray:
        """Signature matrix for many sets (shape ``(n_sets, n_hashes)``).

        Empty sets get the sentinel signature ``p`` in every slot, which
        never collides with a non-empty set's minimum (< p).
        """
        if not sets:
            raise ValueError("sets must be non-empty")
        lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        output = np.full((len(sets), self.n_hashes), self.p, dtype=np.int64)
        non_empty = np.flatnonzero(lengths)
        if non_empty.size == 0:
            return output
        elements = np.concatenate(
            [np.fromiter(sets[int(i)], dtype=np.int64, count=lengths[i]) for i in non_empty]
        )
        offsets = np.zeros(non_empty.size, dtype=np.int64)
        np.cumsum(lengths[non_empty][:-1], out=offsets[1:])
        for h in range(self.n_hashes):
            values = (self._a[h] * elements + self._b[h]) % self.p
            values = np.where(values < self._cutoff, values, self.p)
            output[non_empty, h] = np.minimum.reduceat(values, offsets)
        return output


class MinHashLSH:
    """Banded MinHash blocking: ``L`` bands of ``K`` rows each.

    A pair is formulated when all ``K`` signature slots of at least one
    band agree — collision probability ``1 - (1 - s^K)^L`` for Jaccard
    similarity ``s``.
    """

    def __init__(
        self,
        k: int,
        n_tables: int,
        seed: int | None = None,
        prefix_fraction: float | None = None,
    ):
        if k < 1 or n_tables < 1:
            raise ValueError(f"K and L must be >= 1, got K={k}, L={n_tables}")
        self.k = k
        self.n_tables = n_tables
        self.hasher = MinHasher(k * n_tables, seed=seed, prefix_fraction=prefix_fraction)

    def band_keys(self, sets: Sequence[frozenset[int]]) -> list[np.ndarray]:
        """One key array per band; keys are hashable row tuples packed as bytes."""
        signatures = self.hasher.signatures(sets)
        keys: list[np.ndarray] = []
        for band in range(self.n_tables):
            chunk = np.ascontiguousarray(
                signatures[:, band * self.k : (band + 1) * self.k]
            )
            keys.append(chunk.view([("", chunk.dtype)] * self.k).ravel())
        return keys


def collision_probability(jaccard_similarity: float, k: int, n_tables: int) -> float:
    """``1 - (1 - s^K)^L``: the banded MinHash collision probability."""
    if not 0.0 <= jaccard_similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {jaccard_similarity}")
    return 1.0 - (1.0 - jaccard_similarity**k) ** n_tables
