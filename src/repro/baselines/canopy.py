"""Canopy clustering blocking (Cohen & Richman [6]) — Related Work.

The second classic blocking technique the paper's Section 2 discusses:
"a computationally cheap clustering approach to create high-dimensional
overlapping clusters, from which blocks of candidate record pairs can then
be generated".

Implementation: the cheap distance is the Jaccard distance on record-level
bigram sets (cheap because set intersection needs no dynamic programming).
Starting from the pooled records of both datasets, a random seed record
founds a *canopy* containing every record within ``loose`` distance;
records within ``tight`` distance are removed from the candidate-seed
pool.  Candidate pairs are the cross-dataset pairs sharing a canopy.

On the stage pipeline this is a bigram-set + c-vector embed stage, the
canopy clustering as the block stage, and the shared
:class:`~repro.pipeline.stages.ThresholdVerifyStage` for compact-Hamming
matching, like the other reference baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.minhash import record_bigram_set
from repro.core.qgram import QGramScheme
from repro.hamming.distance import jaccard_distance_sets
from repro.hamming.sketch import VerifyConfig
from repro.perf import ParallelConfig
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stage import BlockStage
from repro.pipeline.stages import SampledCalibrationEmbedStage, ThresholdVerifyStage
from repro.protocol import DatasetLike
from repro.text.alphabet import TEXT_ALPHABET


class CanopyEmbedStage(SampledCalibrationEmbedStage):
    """Pooled bigram sets (A then B) plus the sampled c-vector embedding."""

    def run(self, ctx: PipelineContext) -> None:
        sets = [record_bigram_set(row, self.scheme) for row in ctx.rows_a]
        sets += [record_bigram_set(row, self.scheme) for row in ctx.rows_b]
        ctx.extras["bigram_sets"] = sets
        super().run(ctx)


class _CanopyBlockStage(BlockStage):
    """Seed canopies over the pooled records; cross-dataset co-members pair."""

    def __init__(self, linker: "CanopyLinker") -> None:
        self.linker = linker

    def run(self, ctx: PipelineContext) -> None:
        linker = self.linker
        sets = ctx.extras["bigram_sets"]
        n_a, n_b = len(ctx.rows_a), len(ctx.rows_b)
        rng = np.random.default_rng(linker.seed)
        remaining = set(range(n_a + n_b))
        candidate_set: set[int] = set()
        pool = list(remaining)
        rng.shuffle(pool)
        for seed_idx in pool:
            if seed_idx not in remaining:
                continue
            seed_set = sets[seed_idx]
            canopy_a: list[int] = []
            canopy_b: list[int] = []
            for other in list(remaining):
                distance = jaccard_distance_sets(seed_set, sets[other])
                if distance <= linker.loose:
                    if other < n_a:
                        canopy_a.append(other)
                    else:
                        canopy_b.append(other - n_a)
                    if distance <= linker.tight:
                        remaining.discard(other)
            remaining.discard(seed_idx)
            for i in canopy_a:
                for j in canopy_b:
                    candidate_set.add(i * n_b + j)
        if candidate_set:
            encoded = np.fromiter(candidate_set, dtype=np.int64, count=len(candidate_set))
            ctx.cand_a, ctx.cand_b = encoded // n_b, encoded % n_b
        else:
            empty = np.empty(0, dtype=np.int64)
            ctx.cand_a, ctx.cand_b = empty, empty
        ctx.n_candidates = len(candidate_set)


class CanopyLinker:
    """Canopy-clustering blocking with Hamming verification.

    Parameters
    ----------
    threshold:
        Record-level compact-Hamming threshold for the matching step.
    loose:
        Jaccard distance under which a record joins a canopy.
    tight:
        Jaccard distance under which a record stops seeding new canopies
        (must be <= loose; smaller tight = more overlapping canopies).
    """

    def __init__(
        self,
        threshold: int,
        loose: float = 0.6,
        tight: float = 0.3,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        verify: VerifyConfig | None = None,
    ) -> None:
        if not 0.0 <= tight <= loose <= 1.0:
            raise ValueError(
                f"need 0 <= tight <= loose <= 1, got tight={tight}, loose={loose}"
            )
        self.threshold = threshold
        self.loose = loose
        self.tight = tight
        self.scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)
        self.seed = seed
        self.parallel = parallel
        self.verify = verify

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """embed -> canopy blocking -> Hamming verify on the shared runner."""
        pipeline = LinkagePipeline(
            [
                CanopyEmbedStage(scheme=self.scheme, seed=self.seed),
                _CanopyBlockStage(self),
                ThresholdVerifyStage(self.threshold, verify=self.verify),
            ],
            parallel=self.parallel,
        )
        return pipeline.run(dataset_a, dataset_b)
