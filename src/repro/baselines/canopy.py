"""Canopy clustering blocking (Cohen & Richman [6]) — Related Work.

The second classic blocking technique the paper's Section 2 discusses:
"a computationally cheap clustering approach to create high-dimensional
overlapping clusters, from which blocks of candidate record pairs can then
be generated".

Implementation: the cheap distance is the Jaccard distance on record-level
bigram sets (cheap because set intersection needs no dynamic programming).
Starting from the pooled records of both datasets, a random seed record
founds a *canopy* containing every record within ``loose`` distance;
records within ``tight`` distance are removed from the candidate-seed
pool.  Candidate pairs are the cross-dataset pairs sharing a canopy;
matching verifies with the compact Hamming distance, like the other
reference baselines.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.harra import record_bigram_set
from repro.core.encoder import RecordEncoder
from repro.core.linker import DatasetLike, LinkageResult, _value_rows
from repro.core.qgram import QGramScheme
from repro.hamming.distance import jaccard_distance_sets
from repro.text.alphabet import TEXT_ALPHABET


class CanopyLinker:
    """Canopy-clustering blocking with Hamming verification.

    Parameters
    ----------
    threshold:
        Record-level compact-Hamming threshold for the matching step.
    loose:
        Jaccard distance under which a record joins a canopy.
    tight:
        Jaccard distance under which a record stops seeding new canopies
        (must be <= loose; smaller tight = more overlapping canopies).
    """

    def __init__(
        self,
        threshold: int,
        loose: float = 0.6,
        tight: float = 0.3,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
    ):
        if not 0.0 <= tight <= loose <= 1.0:
            raise ValueError(
                f"need 0 <= tight <= loose <= 1, got tight={tight}, loose={loose}"
            )
        self.threshold = threshold
        self.loose = loose
        self.tight = tight
        self.scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)
        self.seed = seed

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        rows_a = _value_rows(dataset_a)
        rows_b = _value_rows(dataset_b)
        n_a, n_b = len(rows_a), len(rows_b)

        t0 = time.perf_counter()
        sets = [record_bigram_set(row, self.scheme) for row in rows_a]
        sets += [record_bigram_set(row, self.scheme) for row in rows_b]
        encoder = RecordEncoder.calibrated(
            rows_a[: min(n_a, 1000)], scheme=self.scheme, seed=self.seed
        )
        matrix_a = encoder.encode_dataset(rows_a)
        matrix_b = encoder.encode_dataset(rows_b)
        t_embed = time.perf_counter() - t0

        t0 = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        remaining = set(range(n_a + n_b))
        candidate_set: set[int] = set()
        pool = list(remaining)
        rng.shuffle(pool)
        for seed_idx in pool:
            if seed_idx not in remaining:
                continue
            seed_set = sets[seed_idx]
            canopy_a: list[int] = []
            canopy_b: list[int] = []
            for other in list(remaining):
                distance = jaccard_distance_sets(seed_set, sets[other])
                if distance <= self.loose:
                    if other < n_a:
                        canopy_a.append(other)
                    else:
                        canopy_b.append(other - n_a)
                    if distance <= self.tight:
                        remaining.discard(other)
            remaining.discard(seed_idx)
            for i in canopy_a:
                for j in canopy_b:
                    candidate_set.add(i * n_b + j)
        t_block = time.perf_counter() - t0

        t0 = time.perf_counter()
        if candidate_set:
            encoded = np.fromiter(candidate_set, dtype=np.int64, count=len(candidate_set))
            cand_a, cand_b = encoded // n_b, encoded % n_b
            distances = matrix_a.hamming_rows(cand_a, matrix_b, cand_b)
            keep = distances <= self.threshold
            out_a, out_b = cand_a[keep], cand_b[keep]
            record_distances = distances[keep]
        else:
            out_a = out_b = np.empty(0, dtype=np.int64)
            record_distances = np.empty(0, dtype=np.int64)
        t_match = time.perf_counter() - t0

        return LinkageResult(
            rows_a=out_a,
            rows_b=out_b,
            n_candidates=len(candidate_set),
            comparison_space=n_a * n_b,
            timings={"embed": t_embed, "index": t_block, "match": t_match},
            record_distances=record_distances,
        )
