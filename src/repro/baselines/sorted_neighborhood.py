"""Sorted neighborhood blocking (Hernandez & Stolfo [12]) — Related Work.

The paper's Section 2 singles out the sorted neighborhood method as one of
the two classic blocking approaches that "do not provide any guarantees
for identifying record pairs that are similar nor scale well".  It is
implemented here as a reference point: sort all records of both datasets
by a *sorting key* (a concatenation of attribute prefixes), slide a
fixed-size window over the sorted sequence, and compare the cross-dataset
pairs formulated inside each window.

On the stage pipeline this is the shared sampled-calibration embed stage,
the window sweep as the block stage, and the shared
:class:`~repro.pipeline.stages.ThresholdVerifyStage` — the same
compact-Hamming verification as cBV-HB, so the comparison isolates the
*blocking* strategy.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.qgram import QGramScheme
from repro.hamming.sketch import VerifyConfig
from repro.perf import ParallelConfig
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stage import BlockStage
from repro.pipeline.stages import SampledCalibrationEmbedStage, ThresholdVerifyStage
from repro.protocol import DatasetLike
from repro.text.alphabet import TEXT_ALPHABET


def default_sorting_key(values: Sequence[str], prefix: int = 3) -> str:
    """The customary key: the first characters of each attribute, in order."""
    return "".join(value[:prefix] for value in values)


class _WindowBlockStage(BlockStage):
    """Multi-pass sorted windows over the merged, key-sorted record stream."""

    def __init__(self, linker: "SortedNeighborhoodLinker") -> None:
        self.linker = linker

    def run(self, ctx: PipelineContext) -> None:
        linker = self.linker
        rows_a, rows_b = ctx.rows_a, ctx.rows_b
        candidate_set: set[int] = set()
        n_b = len(rows_b)
        for pass_index in range(linker.passes):
            # Merge both datasets into one sorted sequence, tagged by side.
            tagged = [
                (key, 0, i)
                for i, key in enumerate(linker._keys_for_pass(rows_a, pass_index))
            ] + [
                (key, 1, j)
                for j, key in enumerate(linker._keys_for_pass(rows_b, pass_index))
            ]
            tagged.sort()
            for pos, (__, side, idx) in enumerate(tagged):
                if side != 0:
                    continue
                stop = min(pos + linker.window, len(tagged))
                for __, other_side, other_idx in tagged[pos + 1 : stop]:
                    if other_side == 1:
                        candidate_set.add(idx * n_b + other_idx)
                # Look backwards too: B records earlier in the window.
                start = max(0, pos - linker.window + 1)
                for __, other_side, other_idx in tagged[start:pos]:
                    if other_side == 1:
                        candidate_set.add(idx * n_b + other_idx)
        if candidate_set:
            encoded = np.fromiter(candidate_set, dtype=np.int64, count=len(candidate_set))
            ctx.cand_a, ctx.cand_b = encoded // n_b, encoded % n_b
        else:
            empty = np.empty(0, dtype=np.int64)
            ctx.cand_a, ctx.cand_b = empty, empty
        ctx.n_candidates = len(candidate_set)


class SortedNeighborhoodLinker:
    """Sorted-neighborhood blocking with Hamming verification.

    Parameters
    ----------
    threshold:
        Record-level compact-Hamming threshold for the matching step.
    window:
        Sliding-window size ``w``; each record is compared with the
        ``w - 1`` records that follow it in sort order.
    key:
        Sorting-key function over a record's attribute values.
    passes:
        Number of passes; pass ``i > 0`` rotates the attribute order, the
        standard multi-pass variant that rescues records whose first
        attribute was corrupted.
    """

    def __init__(
        self,
        threshold: int,
        window: int = 10,
        key: Callable[[Sequence[str]], str] | None = None,
        passes: int = 1,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        verify: VerifyConfig | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.threshold = threshold
        self.window = window
        self.key = key or default_sorting_key
        self.passes = passes
        self.scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)
        self.seed = seed
        self.parallel = parallel
        self.verify = verify

    def _keys_for_pass(self, rows: list[tuple[str, ...]], pass_index: int) -> list[str]:
        if pass_index == 0:
            return [self.key(row) for row in rows]
        # Rotate attribute order for later passes.
        return [
            self.key(row[pass_index % len(row) :] + row[: pass_index % len(row)])
            for row in rows
        ]

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """embed -> window blocking -> Hamming verify on the shared runner."""
        pipeline = LinkagePipeline(
            [
                SampledCalibrationEmbedStage(scheme=self.scheme, seed=self.seed),
                _WindowBlockStage(self),
                ThresholdVerifyStage(self.threshold, verify=self.verify),
            ],
            parallel=self.parallel,
        )
        return pipeline.run(dataset_a, dataset_b)
