"""CRC-framed append-only segment files (the write-ahead log substrate).

A segment is a flat file of frames, each framing one opaque payload::

    +----------------+----------------+===================+
    | length  uint32 | crc32   uint32 |  payload bytes    |
    +----------------+----------------+===================+

both header fields little-endian, ``crc32`` over the payload alone.
The format is designed around one question — *which prefix of this file
is durable?* — so that a process killed at any byte offset recovers to
exactly the records it had acknowledged:

* :meth:`SegmentWriter.append` writes a whole frame and (by default)
  flushes **and fsyncs** before returning.  A record is durable — and
  may be acknowledged upstream — only once ``append`` returns.
* :func:`replay_segment` scans frames from the start and stops at the
  first incomplete or CRC-corrupt frame.  Everything before that point
  is the durable prefix; everything after is a torn tail from a crash
  mid-write and is never surfaced as data.
* :func:`truncate_segment` chops a torn tail off so later appends start
  from the durable prefix (a frame appended *after* garbage bytes would
  be unreachable to replay).

Payloads are opaque ``bytes`` — callers pick their own encoding
(:mod:`repro.core.shards` uses canonical JSON).  The module is
stdlib-only and import-leaf by the architecture contract.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType

_HEADER = struct.Struct("<II")

#: Bytes of framing added to every payload (length + CRC header).
FRAME_OVERHEAD = _HEADER.size


def frame(payload: bytes) -> bytes:
    """One on-disk frame for ``payload`` (header + payload bytes)."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class ReplayResult:
    """What a replay scan recovered from one segment file.

    ``records`` are the payloads of every complete, CRC-valid frame in
    file order; ``durable_bytes`` is the offset just past the last such
    frame and ``torn_bytes`` counts the unreadable tail behind it
    (``0`` for a cleanly closed segment, or for a missing file).
    """

    records: list[bytes]
    durable_bytes: int
    torn_bytes: int

    @property
    def clean(self) -> bool:
        """True when the whole file parsed as valid frames."""
        return self.torn_bytes == 0


def replay_segment(path: str | Path) -> ReplayResult:
    """Scan a segment, returning every durable record and the torn-tail size.

    The scan stops at the first frame that is truncated (header or
    payload shorter than promised) or whose CRC does not match — the
    signature of a crash between ``write`` and ``fsync``.  Bytes past
    that point are reported, never parsed: a torn frame makes everything
    behind it untrustworthy.  A missing file replays as empty and clean.
    """
    file = Path(path)
    if not file.is_file():
        return ReplayResult([], 0, 0)
    data = file.read_bytes()
    records: list[bytes] = []
    offset = 0
    total = len(data)
    while offset + FRAME_OVERHEAD <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + FRAME_OVERHEAD
        end = start + length
        if end > total:
            break  # payload truncated mid-write
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # torn or bit-rotted frame; nothing behind it is safe
        records.append(payload)
        offset = end
    return ReplayResult(records, offset, total - offset)


def truncate_segment(path: str | Path, durable_bytes: int) -> None:
    """Drop a torn tail: shrink the segment to its durable prefix.

    Run after :func:`replay_segment` reports ``torn_bytes > 0`` and
    before appending again; appends behind garbage bytes would be
    invisible to replay.  The truncation is fsync'd.
    """
    if durable_bytes < 0:
        raise ValueError(f"durable_bytes must be >= 0, got {durable_bytes}")
    with open(path, "rb+") as handle:
        handle.truncate(durable_bytes)
        handle.flush()
        os.fsync(handle.fileno())


class SegmentWriter:
    """Appends CRC-framed records to a segment, durable-before-return.

    Opens the file in append mode (creating it if needed).  Each
    :meth:`append` writes one frame; with the default ``sync=True`` it
    flushes and fsyncs before returning, so the caller may acknowledge
    the record immediately.  Batched writers pass ``sync=False`` per
    record and call :meth:`sync` once per batch — one fsync covers every
    frame written before it.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._path, "ab")

    @property
    def path(self) -> Path:
        return self._path

    def append(self, payload: bytes, sync: bool = True) -> None:
        """Write one frame; with ``sync`` the record is durable on return."""
        if self._handle.closed:
            raise ValueError(f"segment writer for {self._path} is closed")
        self._handle.write(frame(payload))
        if sync:
            self.sync()

    def sync(self) -> None:
        """Flush buffered frames and fsync them to stable storage."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
