"""Append-only write-ahead segments (CRC-framed, fsync'd).

An import-leaf package: at module level it touches only the stdlib, so
every layer — ``repro.core`` persistence, ``repro.serve`` — may depend
on it freely.  See :mod:`repro.wal.segment` and ``docs/serving.md``.
"""

from repro.wal.segment import (
    FRAME_OVERHEAD,
    ReplayResult,
    SegmentWriter,
    frame,
    replay_segment,
    truncate_segment,
)

__all__ = [
    "FRAME_OVERHEAD",
    "ReplayResult",
    "SegmentWriter",
    "frame",
    "replay_segment",
    "truncate_segment",
]
