"""Scatter-gather serving over a sharded index (:class:`ShardedQueryEngine`).

The sharded sibling of :class:`repro.serve.engine.QueryEngine`: the
reference dataset lives in an ``N``-shard bundle
(:class:`repro.core.shards.ShardedIndex`), a query batch is embedded
**once**, fanned across per-shard workers, and the per-shard results are
merged deterministically.  The parallel machinery is the same
initializer pattern as the single-shard engine: each pool worker runs
:func:`_init_sharded_worker` exactly once and attaches the whole sharded
bundle — every shard's payloads memory-mapped, the write-ahead overlay
replayed — so per-task payloads are just the packed query words.

**Why the merge is byte-identical to a single index.**  Every record
lives in exactly one shard and keeps its global id, and all shards share
one set of sampled LSH positions, so a record's candidacy for a query is
unchanged by sharding.  Threshold mode re-sorts the concatenated matches
by ``(query, id)`` — the single-shard order.  Top-k mode asks each shard
for its own top-k (a superset of the global winners: any globally kept
match has fewer than ``k`` better matches even within its shard), then
re-sorts the union by ``(query, distance, id)`` and cuts each query
segment to ``k`` — the exact composite-sort-and-cut
:func:`repro.hamming.query.batch_query` performs.  Within a shard local
row order follows global-id order (ids are assigned monotonically), so
per-shard tie-breaks already agree with the global ``(distance, id)``
rule; shard number never decides.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import DEFAULT_DELTA, DEFAULT_K
from repro.core.encoder import RecordEncoder
from repro.core.shards import ShardedIndex
from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.query import batch_query
from repro.hamming.sketch import VerifyConfig, reject_rate
from repro.perf import LogHistogram, ParallelConfig, parallel_map
from repro.serve.engine import QueryResult

_EMPTY = np.empty(0, dtype=np.int64)

#: Default ceiling on ``len(batch) * n_shards`` below which the fan-out
#: runs serially in-process even when a worker pool is configured: for
#: small batches the per-task dispatch (and, for the process backend,
#: pool startup) costs more than scanning every shard inline.  The
#: serial path is byte-identical to the pooled fan-out — same per-shard
#: kernel, same deterministic merge.
DEFAULT_SERIAL_BATCH_LIMIT = 1024

#: Per-process worker state, set exactly once by :func:`_init_sharded_worker`.
_SHARD_STATE: dict[str, Any] = {}


def _init_sharded_worker(source: str | ShardedIndex, mmap_mode: str | None) -> None:
    """Attach the sharded bundle in a pool worker (runs once per worker).

    ``source`` is the bundle root path for persisted engines — each
    worker memory-maps the shard payloads itself and replays the
    write-ahead segments, so it serves exactly the acknowledged state —
    or the in-memory :class:`ShardedIndex` for never-persisted engines,
    shipped once per worker rather than once per task.
    """
    if isinstance(source, ShardedIndex):
        _SHARD_STATE["index"] = source
    else:
        _SHARD_STATE["index"] = ShardedIndex.open(source, mmap_mode=mmap_mode)


def _query_one_shard(
    task: tuple[int, np.ndarray, int, int, int | None, VerifyConfig | None],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, float]]:
    """Answer one shard's slice of the fan-out against the attached bundle.

    The query batch arrives pre-embedded (its packed ``uint64`` words);
    the worker rebuilds the :class:`BitMatrix` view, runs the shared
    batch kernel against its shard's rows, and translates local row ids
    back to global record ids.  Workers stay pure — counters (including
    the shard's wall-clock ``time_query_s``) ride back in the result.
    """
    shard, words_b, n_bits, threshold, top_k, verify = task
    index: ShardedIndex = _SHARD_STATE["index"]
    state = index.shards[shard]
    matrix_b = BitMatrix(words_b, n_bits)
    counters: dict[str, float] = {}
    started = time.perf_counter()
    queries, local_ids, distances = batch_query(
        state.lsh,
        state.words[: state.count],
        matrix_b,
        threshold=threshold,
        top_k=top_k,
        verify=verify,
        counters=counters,
    )
    counters["time_query_s"] = time.perf_counter() - started
    gids = np.asarray(state.row_ids[: state.count][local_ids], dtype=np.int64)
    return queries, gids, distances, counters


def _merge_shard_parts(
    parts: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, float]]],
    top_k: int | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic gather: single-shard ordering over the shard union.

    Global ids are unique across shards, so the two-key (threshold) and
    three-key (top-k) lexicographic sorts below have no ties left for the
    shard number to break — the merged arrays are byte-identical to one
    :func:`~repro.hamming.query.batch_query` over the unsharded index.
    """
    queries = np.concatenate([part[0] for part in parts])
    gids = np.concatenate([part[1] for part in parts])
    distances = np.concatenate([part[2] for part in parts])
    if queries.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    if top_k is None:
        order = np.lexsort((gids, queries))
        return queries[order], gids[order], distances[order]
    order = np.lexsort((gids, distances, queries))
    queries, gids, distances = queries[order], gids[order], distances[order]
    starts = np.flatnonzero(np.r_[True, queries[1:] != queries[:-1]])
    counts = np.diff(np.r_[starts, queries.size])
    ranks = np.arange(queries.size, dtype=np.int64) - np.repeat(starts, counts)
    head = ranks < top_k
    return queries[head], gids[head], distances[head]


class ShardedQueryEngine:
    """Batched queries fanned across the shards of a sharded bundle.

    Construct with :meth:`from_bundle` (serve a persisted sharded bundle,
    shard payloads memory-mapped, WAL replayed) or :meth:`build` (shard
    and index rows in memory, e.g. before a first :meth:`save`).
    Results are byte-identical to the single-shard
    :class:`~repro.serve.engine.QueryEngine` over the same records, for
    every ``n_shards``, ``n_jobs`` and backend.

    Beyond querying, the engine fronts the bundle's lifecycle:
    :meth:`ingest` durably appends records (write-ahead logged, fsync'd
    before acknowledgement), :meth:`compact` folds the accumulated
    overlay into a new snapshot version with an atomic manifest swap.
    """

    def __init__(
        self,
        index: ShardedIndex,
        parallel: ParallelConfig | None = None,
        mmap_mode: str | None = "r",
        verify: VerifyConfig | None = None,
        serial_batch_limit: int | None = DEFAULT_SERIAL_BATCH_LIMIT,
    ):
        self.index = index
        self.parallel = parallel or ParallelConfig()
        self._mmap_mode = mmap_mode
        self.verify = verify
        #: Scan shards in-process when ``len(batch) * n_shards`` is at or
        #: under this limit, regardless of ``parallel`` — small batches
        #: lose more to pool dispatch than they gain from parallelism
        #: (see BENCH_serving.json's ``sharded_small_batch`` cell).
        #: ``None`` disables the serial path (always fan out).
        self.serial_batch_limit = serial_batch_limit
        #: Engine-level counters summed over every served batch: prefilter
        #: tiers when enabled, plus ``time_embed_s`` / ``time_fanout_s`` /
        #: ``time_merge_s`` wall-clock accumulators, ``n_batches``,
        #: ``n_queries`` and ``n_serial_batches`` (batches answered by the
        #: small-batch in-process path).
        self.stats: dict[str, float] = {}
        #: Per-batch wall-clock distribution (whole ``query_batch`` call);
        #: p50/p95/p99 derivable offline from its snapshot.
        self.batch_time_hist = LogHistogram.latency()
        #: Per-shard counters (``time_query_s``, candidate-generation and
        #: prefilter tiers), summed over every served batch.
        self.shard_stats: list[dict[str, float]] = [
            {} for __ in range(index.n_shards)
        ]

    # -- constructors ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        rows: Sequence[Sequence[str]],
        encoder: RecordEncoder,
        n_shards: int,
        threshold: int,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        seed: int | None = None,
        max_chunk_pairs: int | None = None,
        parallel: ParallelConfig | None = None,
        verify: VerifyConfig | None = None,
        serial_batch_limit: int | None = DEFAULT_SERIAL_BATCH_LIMIT,
    ) -> "ShardedQueryEngine":
        """Shard and index ``rows`` in memory under a calibrated encoder."""
        index = ShardedIndex.build(
            [tuple(row) for row in rows],
            encoder,
            n_shards=n_shards,
            threshold=threshold,
            k=k,
            delta=delta,
            n_tables=n_tables,
            seed=seed,
            max_chunk_pairs=max_chunk_pairs,
        )
        return cls(
            index,
            parallel=parallel,
            verify=verify,
            serial_batch_limit=serial_batch_limit,
        )

    @classmethod
    def from_bundle(
        cls,
        path: str | Path,
        parallel: ParallelConfig | None = None,
        mmap_mode: str | None = "r",
        verify: VerifyConfig | None = None,
        serial_batch_limit: int | None = DEFAULT_SERIAL_BATCH_LIMIT,
    ) -> "ShardedQueryEngine":
        """Serve a persisted sharded bundle (mmap payloads, replay WAL)."""
        index = ShardedIndex.open(path, mmap_mode=mmap_mode)
        return cls(
            index,
            parallel=parallel,
            mmap_mode=mmap_mode,
            verify=verify,
            serial_batch_limit=serial_batch_limit,
        )

    # -- lifecycle ---------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist the index as a sharded bundle and serve it from disk."""
        return self.index.save(path)

    def ingest(self, rows: Sequence[Sequence[str]]) -> list[int]:
        """Durably append records; returns their assigned global ids.

        For a persisted engine every record is written to its shard's
        write-ahead segment and fsync'd **before** this returns — the
        returned ids are the acknowledgement, and a crash at any moment
        recovers to a prefix of the acknowledged stream.  Appended
        records are immediately queryable.
        """
        return self.index.append_batch([tuple(row) for row in rows])

    def compact(self) -> int:
        """Fold the ingest overlay into new shard snapshots (new version)."""
        return self.index.compact()

    def close(self) -> None:
        """Release the bundle's write-ahead segment writers (idempotent)."""
        self.index.close()

    # -- introspection -----------------------------------------------------------

    @property
    def n_indexed(self) -> int:
        """Number of reference records served (including the overlay)."""
        return self.index.n_rows

    @property
    def n_shards(self) -> int:
        return self.index.n_shards

    @property
    def threshold(self) -> int:
        """The bundle's recorded matching threshold."""
        return self.index.threshold

    # -- queries -----------------------------------------------------------------

    def query_batch(
        self,
        rows: Sequence[Sequence[str]],
        threshold: int | None = None,
        top_k: int | None = None,
    ) -> QueryResult:
        """Match a batch of query records against every shard and merge.

        The batch is embedded once; the packed query words fan out to one
        task per shard (inline when ``parallel.n_jobs <= 1`` or when
        ``len(batch) * n_shards`` is at or under
        :attr:`serial_batch_limit`, else via
        :func:`repro.perf.parallel_map` with the bundle attached per
        worker by the initializer).  The merge re-establishes the
        single-shard result order — see the module docstring for why
        that is byte-identical.  Ids in the result are **global** record
        ids.
        """
        effective = self.threshold if threshold is None else threshold
        work = [tuple(row) for row in rows]
        if not work:
            return QueryResult(_EMPTY, _EMPTY, _EMPTY, 0)
        started = time.perf_counter()
        matrix_b = self.index.encoder.encode_dataset(work)
        embedded = time.perf_counter()
        tasks = [
            (shard, matrix_b.words, matrix_b.n_bits, effective, top_k, self.verify)
            for shard in range(self.n_shards)
        ]
        serial = (
            self.parallel.effective_jobs <= 1
            or self.n_shards <= 1
            or (
                self.serial_batch_limit is not None
                and len(work) * self.n_shards <= self.serial_batch_limit
            )
        )
        if serial:
            _init_sharded_worker(self.index, self._mmap_mode)
            parts = [_query_one_shard(task) for task in tasks]
            self._bump("n_serial_batches", 1.0)
        else:
            source: str | ShardedIndex = self.index
            if self.parallel.backend == "process" and self.index.path is not None:
                source = str(self.index.path)
            parts = parallel_map(
                _query_one_shard,
                tasks,
                self.parallel,
                initializer=_init_sharded_worker,
                initargs=(source, self._mmap_mode),
            )
        fanned = time.perf_counter()
        queries, gids, distances = _merge_shard_parts(parts, top_k)
        merged = time.perf_counter()
        for shard, part in enumerate(parts):
            self._merge_shard_stats(shard, part[3])
        self._bump("time_embed_s", embedded - started)
        self._bump("time_fanout_s", fanned - embedded)
        self._bump("time_merge_s", merged - fanned)
        self._bump("n_batches", 1.0)
        self._bump("n_queries", float(len(work)))
        self.batch_time_hist.record(merged - started)
        return QueryResult(queries, gids, distances, len(work))

    # -- stats -------------------------------------------------------------------

    def _bump(self, key: str, value: float) -> None:
        self.stats[key] = self.stats.get(key, 0.0) + value

    def _merge_shard_stats(self, shard: int, counters: dict[str, float]) -> None:
        """Fold one shard's per-batch counters into both stat views.

        Counters are additive; the derived ``prefilter_reject_rate``
        ratio is recomputed from the merged totals, never summed.
        """
        per_shard = self.shard_stats[shard]
        for key, value in counters.items():
            if key == "prefilter_reject_rate":
                continue
            per_shard[key] = per_shard.get(key, 0.0) + value
            self._bump(key, value)
        if "pairs_prefiltered" in self.stats:
            self.stats["prefilter_reject_rate"] = reject_rate(self.stats)
