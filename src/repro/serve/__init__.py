"""Snapshot serving: high-throughput batched queries over a persisted index.

Single-bundle serving lives in :mod:`repro.serve.engine`; scatter-gather
serving over sharded bundles (with durable ingest and compaction) in
:mod:`repro.serve.sharded`; the async front-end that coalesces
single-query requests into micro-batches in
:mod:`repro.serve.asyncserve`.  :func:`open_serving_engine` dispatches a
bundle path to the engine matching its kind.  See ``docs/serving.md``.
"""

from repro.serve.asyncserve import AsyncQueryServer, BatcherConfig
from repro.serve.asyncserve.server import open_serving_engine
from repro.serve.engine import QueryEngine, QueryResult
from repro.serve.sharded import ShardedQueryEngine

__all__ = [
    "AsyncQueryServer",
    "BatcherConfig",
    "QueryEngine",
    "QueryResult",
    "ShardedQueryEngine",
    "open_serving_engine",
]
