"""Snapshot serving: high-throughput batched queries over a persisted index.

Single-bundle serving lives in :mod:`repro.serve.engine`; scatter-gather
serving over sharded bundles (with durable ingest and compaction) in
:mod:`repro.serve.sharded`.  See ``docs/serving.md``.
"""

from repro.serve.engine import QueryEngine, QueryResult
from repro.serve.sharded import ShardedQueryEngine

__all__ = ["QueryEngine", "QueryResult", "ShardedQueryEngine"]
