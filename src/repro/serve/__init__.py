"""Snapshot serving: high-throughput batched queries over a persisted index.

See :mod:`repro.serve.engine` and ``docs/serving.md``.
"""

from repro.serve.engine import QueryEngine, QueryResult

__all__ = ["QueryEngine", "QueryResult"]
