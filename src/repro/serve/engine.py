"""Snapshot-backed batched query serving (:class:`QueryEngine`).

The serving story for the paper's real-time setting: index the reference
dataset once, persist it as a snapshot bundle
(:func:`repro.core.persist.save_index_snapshot`), then answer batched
threshold / top-k queries against the loaded bundle at high throughput.

Parallel fan-out never pickles the index per task.  Each worker process
runs :func:`_init_query_worker` exactly once: for an on-disk engine the
initializer re-opens the bundle with ``numpy.load(..., mmap_mode="r")``,
so every worker shares the same page-cache copy of the packed words and
bucket arrays; for a never-persisted in-memory engine the snapshot object
ships once per worker through the initializer arguments instead.  Query
rows — the only per-task payload — are tiny.

Sharding uses :meth:`repro.perf.ParallelConfig.shard_ranges`, and the
batch kernel (:func:`repro.hamming.query.batch_query`) is deterministic
per shard, so results are byte-identical for every ``n_jobs``, backend
and start method.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import DEFAULT_DELTA, DEFAULT_K
from repro.core.encoder import RecordEncoder
from repro.core.persist import IndexSnapshot, load_index_snapshot, save_index_snapshot
from repro.hamming.lsh import HammingLSH
from repro.hamming.query import batch_query, group_matches
from repro.hamming.sketch import VerifyConfig, reject_rate
from repro.perf import LogHistogram, ParallelConfig, parallel_map

_EMPTY = np.empty(0, dtype=np.int64)

#: Per-process worker state, set exactly once by :func:`_init_query_worker`.
_WORKER_STATE: dict[str, Any] = {}


def _init_query_worker(source: str | IndexSnapshot, mmap_mode: str | None) -> None:
    """Attach the index in a pool worker (runs once per worker process).

    ``source`` is the bundle path for persisted engines — each worker
    memory-maps the read-only payloads itself, nothing is pickled — or
    the :class:`IndexSnapshot` object for in-memory engines, shipped
    once per worker rather than once per task.
    """
    if isinstance(source, IndexSnapshot):
        _WORKER_STATE["snapshot"] = source
    else:
        _WORKER_STATE["snapshot"] = load_index_snapshot(source, mmap_mode=mmap_mode)


def _query_shard(
    task: tuple[list[tuple[str, ...]], int, int | None, VerifyConfig | None],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, float]]:
    """Answer one contiguous shard of query rows against the attached index.

    Returns the shard's grouped match arrays plus its counters: prefilter
    tiers when the sketch prefilter is on, and the shard's wall-clock
    ``time_embed_s`` / ``time_query_s`` — workers stay pure, the engine
    merges counters additively.
    """
    rows, threshold, top_k, verify = task
    snapshot: IndexSnapshot = _WORKER_STATE["snapshot"]
    started = time.perf_counter()
    matrix_b = snapshot.encoder.encode_dataset(rows)
    embedded = time.perf_counter()
    counters: dict[str, float] = {}
    queries, ids, distances = batch_query(
        snapshot.lsh,
        snapshot.matrix.words,
        matrix_b,
        threshold=threshold,
        top_k=top_k,
        verify=verify,
        counters=counters,
    )
    counters["time_embed_s"] = embedded - started
    counters["time_query_s"] = time.perf_counter() - embedded
    return queries, ids, distances, counters


@dataclass(frozen=True)
class QueryResult:
    """Grouped matches for one query batch.

    ``queries`` / ``ids`` / ``distances`` are parallel arrays ordered by
    query index — within a query by record id (threshold mode) or by
    ``(distance, id)`` (top-k mode).  ``n_queries`` is the batch size,
    including queries with no matches.
    """

    queries: np.ndarray
    ids: np.ndarray
    distances: np.ndarray
    n_queries: int

    @property
    def n_matches(self) -> int:
        return int(self.queries.size)

    def matches(self) -> list[list[tuple[int, int]]]:
        """Per-query ``(record_id, distance)`` lists (length ``n_queries``)."""
        return group_matches(self.queries, self.ids, self.distances, self.n_queries)


class QueryEngine:
    """Batched threshold / top-k queries against a loaded index snapshot.

    Construct with :meth:`from_snapshot` (serve a persisted bundle,
    zero-copy via ``mmap``) or :meth:`build` (index rows in memory, e.g.
    before a first :meth:`save`).  ``parallel`` shards query batches over
    worker processes or threads; results are byte-identical for every
    configuration.

    Examples
    --------
    >>> from repro.core.encoder import RecordEncoder
    >>> from repro.core.cvector import CVectorEncoder
    >>> enc = RecordEncoder([CVectorEncoder(64, seed=3)], names=['name'])
    >>> engine = QueryEngine.build(
    ...     [('JONES',), ('SMITH',), ('JONAS',)], enc, threshold=20, k=8, seed=3)
    >>> result = engine.query_batch([('JONES',)])
    >>> result.n_queries
    1
    """

    def __init__(
        self,
        snapshot: IndexSnapshot,
        parallel: ParallelConfig | None = None,
        mmap_mode: str | None = "r",
        verify: VerifyConfig | None = None,
    ):
        if snapshot.threshold is None:
            raise ValueError(
                "snapshot records no matching threshold; pass one to "
                "query_batch or rebuild the snapshot with a threshold"
            )
        self.snapshot = snapshot
        self.parallel = parallel or ParallelConfig()
        self._mmap_mode = mmap_mode
        self.verify = verify
        #: Counters summed over every served batch: per-stage wall-clock
        #: accumulators (``time_embed_s``, ``time_query_s``), batch
        #: bookkeeping (``n_batches``, ``n_queries``) and — when the
        #: sketch prefilter is on — its tier counters
        #: (``pairs_prefiltered``, ``pairs_rejected_t<i>``,
        #: ``pairs_exact``, ``prefilter_reject_rate``).
        self.stats: dict[str, float] = {}
        #: Per-batch wall-clock distribution (whole ``query_batch`` call,
        #: embed + fan-out + merge).  The summed counters in :attr:`stats`
        #: recover the mean; this histogram makes p50/p95/p99 derivable
        #: offline from its :meth:`~repro.perf.LogHistogram.snapshot`.
        self.batch_time_hist = LogHistogram.latency()

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        parallel: ParallelConfig | None = None,
        mmap_mode: str | None = "r",
        verify: VerifyConfig | None = None,
    ) -> "QueryEngine":
        """Serve a persisted bundle; payloads stay memory-mapped (zero-copy)."""
        snapshot = load_index_snapshot(path, mmap_mode=mmap_mode)
        return cls(snapshot, parallel=parallel, mmap_mode=mmap_mode, verify=verify)

    @classmethod
    def build(
        cls,
        rows: Sequence[Sequence[str]],
        encoder: RecordEncoder,
        threshold: int,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        seed: int | None = None,
        max_chunk_pairs: int | None = None,
        parallel: ParallelConfig | None = None,
        verify: VerifyConfig | None = None,
    ) -> "QueryEngine":
        """Index ``rows`` in memory under a calibrated ``encoder``.

        The result is a never-persisted engine (``snapshot.path is
        None``); call :meth:`save` to turn it into a bundle that
        :meth:`from_snapshot` can serve zero-copy.
        """
        matrix = encoder.encode_dataset([tuple(row) for row in rows])
        lsh = HammingLSH(
            n_bits=encoder.total_bits,
            k=k,
            threshold=threshold,
            delta=delta,
            n_tables=n_tables,
            seed=seed,
            max_chunk_pairs=max_chunk_pairs,
        )
        lsh.index(matrix)
        snapshot = IndexSnapshot(
            encoder=encoder, matrix=matrix, lsh=lsh, threshold=threshold
        )
        return cls(snapshot, parallel=parallel, verify=verify)

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the index as a snapshot bundle and point the engine at it.

        After saving, parallel workers attach via the bundle path (mmap)
        instead of receiving a pickled copy of the index.
        """
        snapshot = self.snapshot
        bundle = save_index_snapshot(
            path,
            snapshot.encoder,
            snapshot.matrix,
            snapshot.lsh,
            threshold=snapshot.threshold,
        )
        self.snapshot = IndexSnapshot(
            encoder=snapshot.encoder,
            matrix=snapshot.matrix,
            lsh=snapshot.lsh,
            threshold=snapshot.threshold,
            path=bundle,
            manifest=snapshot.manifest,
        )
        return bundle

    # -- queries -----------------------------------------------------------------

    @property
    def n_indexed(self) -> int:
        """Number of reference records in the served index."""
        return self.snapshot.n_rows

    def query_batch(
        self,
        rows: Sequence[Sequence[str]],
        threshold: int | None = None,
        top_k: int | None = None,
    ) -> QueryResult:
        """Match a batch of query records against the served index.

        ``threshold`` defaults to the one recorded in the snapshot;
        ``top_k`` keeps at most that many closest matches per query,
        ties broken deterministically by the smaller record id.  With
        ``parallel.n_jobs > 1`` the batch is split into contiguous
        shards (:meth:`~repro.perf.ParallelConfig.shard_ranges`); each
        worker attaches the index once via the pool initializer, so only
        the query rows travel per task.

        When the engine was built with an enabled
        :class:`~repro.hamming.sketch.VerifyConfig`, candidate
        verification runs through the sketch prefilter (same matches,
        byte-identical) and the per-tier counters are summed into
        :attr:`stats`.
        """
        effective = self.threshold if threshold is None else threshold
        work = [tuple(row) for row in rows]
        if not work:
            return QueryResult(_EMPTY, _EMPTY, _EMPTY, 0)
        call_started = time.perf_counter()
        shards = self.parallel.shard_ranges(len(work))
        if self.parallel.effective_jobs <= 1 or len(shards) <= 1:
            _init_query_worker(self.snapshot, self._mmap_mode)
            queries, ids, distances, counters = _query_shard(
                (work, effective, top_k, self.verify)
            )
            self._merge_stats(counters)
            self._account_batch(len(work), time.perf_counter() - call_started)
            return QueryResult(queries, ids, distances, len(work))
        source: str | IndexSnapshot = self.snapshot
        if self.parallel.backend == "process" and self.snapshot.path is not None:
            source = str(self.snapshot.path)
        tasks = [(work[lo:hi], effective, top_k, self.verify) for lo, hi in shards]
        parts = parallel_map(
            _query_shard,
            tasks,
            self.parallel,
            initializer=_init_query_worker,
            initargs=(source, self._mmap_mode),
        )
        queries = np.concatenate(
            [part[0] + lo for part, (lo, __) in zip(parts, shards)]
        )
        ids = np.concatenate([part[1] for part in parts])
        distances = np.concatenate([part[2] for part in parts])
        for part in parts:
            self._merge_stats(part[3])
        self._account_batch(len(work), time.perf_counter() - call_started)
        return QueryResult(queries, ids, distances, len(work))

    def _merge_stats(self, counters: dict[str, float]) -> None:
        """Fold one shard's counters into the engine stats, additively.

        Every counter — prefilter tiers and the per-shard wall-clock
        timings — accumulates across shards and batches.  The derived
        ``prefilter_reject_rate`` ratio is never summed; it is recomputed
        from the merged totals, and only once the prefilter has run.
        """
        if not counters:
            return
        for key, value in counters.items():
            if key == "prefilter_reject_rate":
                continue
            self.stats[key] = self.stats.get(key, 0.0) + value
        if "pairs_prefiltered" in self.stats:
            self.stats["prefilter_reject_rate"] = reject_rate(self.stats)

    def _account_batch(self, n_queries: int, elapsed_s: float) -> None:
        """Record one served batch in the engine stats and histogram."""
        self.stats["n_batches"] = self.stats.get("n_batches", 0.0) + 1.0
        self.stats["n_queries"] = self.stats.get("n_queries", 0.0) + float(n_queries)
        self.batch_time_hist.record(elapsed_s)

    @property
    def threshold(self) -> int:
        """The snapshot's recorded matching threshold."""
        assert self.snapshot.threshold is not None  # checked in __init__
        return self.snapshot.threshold
