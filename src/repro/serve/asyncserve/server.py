"""Engine lifecycle behind the micro-batcher (:class:`AsyncQueryServer`).

The server binds a :class:`MicroBatcher` to a serving engine
(:class:`~repro.serve.engine.QueryEngine` or
:class:`~repro.serve.sharded.ShardedQueryEngine`) and owns everything the
batcher deliberately does not know about:

* **Off-loop execution.**  ``query_batch`` is CPU-bound (NumPy kernels
  release the GIL, but the call itself blocks); every flushed batch runs
  in a single-thread executor, so the event loop keeps admitting and
  coalescing requests while a batch executes, and engine calls stay
  serialised (the engines' ``stats`` bookkeeping is not thread-safe).
* **Zero-downtime snapshot swap.**  :meth:`swap` opens the new bundle
  off-loop, atomically redirects new requests to it, waits for the old
  generation's in-flight batches to drain, then closes the old engine.
  No request is dropped, and no request mixes versions: each batch
  captures its engine generation at dispatch.
* **Observability.**  :meth:`stats` flattens the batcher's counters and
  histograms (latency p50/p95/p99, QPS, batch-size distribution,
  queue depth, deadline misses) with the engine's own counters into one
  JSON-serialisable dict, served by the CLI and the HTTP ``/stats``
  route.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import Protocol

from dataclasses import dataclass

from repro.hamming.sketch import VerifyConfig
from repro.perf import LogHistogram, ParallelConfig
from repro.serve.asyncserve.batcher import BatcherConfig, Matches, MicroBatcher, Row
from repro.serve.engine import QueryEngine, QueryResult
from repro.serve.sharded import ShardedQueryEngine


@dataclass(frozen=True)
class _OpenOptions:
    """How :meth:`AsyncQueryServer.swap` re-opens bundles (same as boot)."""

    parallel: ParallelConfig | None = None
    mmap_mode: str | None = "r"
    verify: VerifyConfig | None = None


class ServingEngine(Protocol):
    """What the server needs from an engine (both engines satisfy it)."""

    stats: dict[str, float]
    batch_time_hist: LogHistogram

    @property
    def n_indexed(self) -> int:
        """Number of reference records served."""
        ...

    @property
    def threshold(self) -> int:
        """The bundle's recorded matching threshold."""
        ...

    def query_batch(
        self,
        rows: "list[Row]",
        threshold: int | None = None,
        top_k: int | None = None,
    ) -> QueryResult:
        """Batched threshold / top-k matching."""
        ...


def open_serving_engine(
    bundle: str | Path,
    parallel: ParallelConfig | None = None,
    mmap_mode: str | None = "r",
    verify: VerifyConfig | None = None,
) -> QueryEngine | ShardedQueryEngine:
    """Open whichever engine matches the bundle's kind.

    A sharded root manifest gets a scatter-gather
    :class:`~repro.serve.sharded.ShardedQueryEngine`; anything else is
    served as a single snapshot bundle.  Both arrive memory-mapped.
    """
    from repro.core.shards import is_sharded_bundle

    if is_sharded_bundle(bundle):
        return ShardedQueryEngine.from_bundle(
            bundle, parallel=parallel, mmap_mode=mmap_mode, verify=verify
        )
    return QueryEngine.from_snapshot(
        bundle, parallel=parallel, mmap_mode=mmap_mode, verify=verify
    )


def _close_engine(engine: object) -> None:
    """Release an engine's resources if it holds any (idempotent).

    The sharded engine owns WAL writers and mmaps and exposes
    ``close()``; the single-bundle engine holds only read-only mmaps
    reclaimed by the garbage collector and has no ``close``.
    """
    close = getattr(engine, "close", None)
    if callable(close):
        close()


class _EngineSlot:
    """One engine generation with its in-flight batch accounting.

    ``idle`` is set exactly when ``inflight == 0``; :meth:`swap` waits on
    the *retired* slot's event before closing its engine, so in-flight
    batches always complete against the bundle they started on.
    """

    __slots__ = ("engine", "generation", "inflight", "idle")

    def __init__(self, engine: ServingEngine, generation: int):
        self.engine = engine
        self.generation = generation
        self.inflight = 0
        self.idle = asyncio.Event()
        self.idle.set()

    def acquire(self) -> None:
        self.inflight += 1
        self.idle.clear()

    def release(self) -> None:
        self.inflight -= 1
        if self.inflight == 0:
            self.idle.set()


class AsyncQueryServer:
    """Micro-batched async serving over one engine generation at a time.

    Construct with an engine (``AsyncQueryServer(engine)``) or from a
    bundle path (:meth:`from_bundle`); either way the server owns the
    engine and closes it.  Use as an async context manager, or call
    :meth:`close` explicitly.  All methods must be called from one event
    loop.

    The in-process API is :meth:`query` (single row in, matches out) —
    the HTTP layer in :mod:`repro.serve.asyncserve.http` is a thin
    wrapper over it, so embedders and tests never need a socket.
    """

    def __init__(
        self,
        engine: ServingEngine,
        config: BatcherConfig | None = None,
        open_options: _OpenOptions | None = None,
    ):
        self._slot = _EngineSlot(engine, generation=0)
        self._open = open_options or _OpenOptions()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="asyncserve"
        )
        self._batcher = MicroBatcher(self._execute, config)
        self._started = time.monotonic()
        self._n_swaps = 0
        self._closed = False

    @classmethod
    def from_bundle(
        cls,
        bundle: str | Path,
        config: BatcherConfig | None = None,
        parallel: ParallelConfig | None = None,
        mmap_mode: str | None = "r",
        verify: VerifyConfig | None = None,
    ) -> "AsyncQueryServer":
        """Serve a bundle path; :meth:`swap` reuses the same open options."""
        engine = open_serving_engine(
            bundle, parallel=parallel, mmap_mode=mmap_mode, verify=verify
        )
        return cls(
            engine,
            config=config,
            open_options=_OpenOptions(
                parallel=parallel, mmap_mode=mmap_mode, verify=verify
            ),
        )

    # -- serving -----------------------------------------------------------------

    @property
    def engine(self) -> ServingEngine:
        """The engine currently answering new requests."""
        return self._slot.engine

    @property
    def generation(self) -> int:
        """Bumped by every completed :meth:`swap` (starts at 0)."""
        return self._slot.generation

    async def query(
        self,
        row: Row,
        threshold: int | None = None,
        top_k: int | None = None,
        deadline_s: float | None = None,
    ) -> Matches:
        """Answer one query through the micro-batcher.

        Coalesced with concurrent callers but byte-identical to
        ``engine.query_batch([row], threshold, top_k)``.  Raises
        :class:`~repro.serve.asyncserve.batcher.QueueFullError` under
        backpressure and
        :class:`~repro.serve.asyncserve.batcher.DeadlineExceededError`
        when the request expires while queued.
        """
        return await self._batcher.submit(
            row, threshold=threshold, top_k=top_k, deadline_s=deadline_s
        )

    async def _execute(
        self, rows: "list[Row]", threshold: int | None, top_k: int | None
    ) -> QueryResult:
        """Run one coalesced batch off-loop against the current generation.

        The slot is captured *synchronously* (before any await), so a
        concurrent :meth:`swap` cannot retire this batch's engine until
        the batch releases it.
        """
        slot = self._slot
        slot.acquire()
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor,
                partial(slot.engine.query_batch, rows, threshold, top_k),
            )
        finally:
            slot.release()

    # -- snapshot swap -----------------------------------------------------------

    async def swap(self, bundle: str | Path) -> int:
        """Swap to a new snapshot bundle with zero downtime.

        Opens ``bundle`` in a side thread (serving continues), atomically
        routes new requests to the new engine, then drains and closes the
        retired one.  In-flight requests complete on the bundle they were
        dispatched against — no request is dropped or answered by a mix
        of versions.  Returns the new generation number.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        engine = await asyncio.to_thread(
            partial(
                open_serving_engine,
                bundle,
                parallel=self._open.parallel,
                mmap_mode=self._open.mmap_mode,
                verify=self._open.verify,
            )
        )
        retired = self._slot
        self._slot = _EngineSlot(engine, retired.generation + 1)
        self._n_swaps += 1
        await retired.idle.wait()
        _close_engine(retired.engine)
        return self._slot.generation

    # -- observability -----------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """One JSON-serialisable view of server, batcher and engine state."""
        batcher = self._batcher
        latency = batcher.request_latency_hist
        sizes = batcher.batch_size_hist
        uptime = time.monotonic() - self._started
        completed = batcher.stats.get("n_completed", 0.0)
        return {
            "uptime_s": uptime,
            "generation": self._slot.generation,
            "n_swaps": self._n_swaps,
            "n_indexed": self._slot.engine.n_indexed,
            "queue_depth": batcher.queue_depth,
            "inflight_batches": self._slot.inflight,
            "qps": completed / uptime if uptime > 0 else 0.0,
            "counters": dict(batcher.stats),
            "latency_s": {
                "mean": latency.mean,
                "p50": latency.percentile(0.50),
                "p95": latency.percentile(0.95),
                "p99": latency.percentile(0.99),
            },
            "batch_size": {
                "mean": sizes.mean,
                "p50": sizes.percentile(0.50),
                "p99": sizes.percentile(0.99),
            },
            "latency_hist": latency.snapshot(),
            "batch_size_hist": sizes.snapshot(),
            "engine_stats": dict(self._slot.engine.stats),
            "engine_batch_time_hist": self._slot.engine.batch_time_hist.snapshot(),
        }

    # -- lifecycle ---------------------------------------------------------------

    async def close(self) -> None:
        """Drain the batcher, close the engine, stop the executor."""
        if self._closed:
            return
        self._closed = True
        await self._batcher.close()
        await self._slot.idle.wait()
        _close_engine(self._slot.engine)
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncQueryServer":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()
