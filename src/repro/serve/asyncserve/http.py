"""Thin stdlib HTTP front-end over :class:`AsyncQueryServer`.

A deliberately small HTTP/1.1 layer on ``asyncio.start_server`` — no
framework, no dependency — exposing the in-process async API on a
socket.  One JSON request per connection (``Connection: close``), four
routes:

* ``GET /healthz`` — liveness plus the serving generation.
* ``GET /stats`` — the server's :meth:`~AsyncQueryServer.stats` dict.
* ``POST /query`` — ``{"row": [...], "threshold"?, "top_k"?,
  "deadline_ms"?}`` → ``{"matches": [[record_id, distance], ...]}``.
* ``POST /swap`` — ``{"bundle": path}`` → ``{"generation": n}``
  (zero-downtime snapshot swap).

Backpressure maps onto HTTP verbatim: a full admission queue is ``503``
with a ``Retry-After`` header (seconds, from the batcher's drain
estimate), an expired deadline is ``504``.  Anything the batching layer
guarantees — coalescing, parity with direct ``query_batch`` calls —
holds here too, since this layer only translates bytes.

The in-process API (:meth:`AsyncQueryServer.query`) is the primary
surface; tests and embedders use it without sockets and only the
socket-specific paths need this module.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.serve.asyncserve.batcher import DeadlineExceededError, QueueFullError
from repro.serve.asyncserve.server import AsyncQueryServer

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Cap on request head + body sizes (a query row is tiny; this is a
#: safety bound, not a tuning knob).
_MAX_HEAD_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1 * 1024 * 1024

#: One parsed route answer: status, extra headers, JSON payload.
_Response = tuple[int, list[tuple[str, str]], dict[str, Any]]


class _BadRequestError(ValueError):
    """Client error: malformed request line, JSON or field types."""


def _parse_query_body(body: dict[str, Any]) -> tuple[
    tuple[str, ...], int | None, int | None, float | None
]:
    """Validate a ``POST /query`` body into ``submit`` arguments."""
    raw_row = body.get("row")
    if not isinstance(raw_row, list) or not all(
        isinstance(value, str) for value in raw_row
    ):
        raise _BadRequestError('"row" must be a list of strings')
    threshold = body.get("threshold")
    if threshold is not None and not isinstance(threshold, int):
        raise _BadRequestError('"threshold" must be an integer')
    top_k = body.get("top_k")
    if top_k is not None and not isinstance(top_k, int):
        raise _BadRequestError('"top_k" must be an integer')
    deadline_ms = body.get("deadline_ms")
    if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
        raise _BadRequestError('"deadline_ms" must be a number')
    deadline_s = None if deadline_ms is None else float(deadline_ms) / 1e3
    return tuple(raw_row), threshold, top_k, deadline_s


class HttpFrontend:
    """The socket front-end; one instance owns one listening server.

    ``limit_requests`` makes the frontend resolve :meth:`serve_until_done`
    after that many handled requests — deterministic termination for
    tests and ``repro serve --limit-requests``.  ``port=0`` binds an
    ephemeral port; read the bound address from :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        server: AsyncQueryServer,
        host: str = "127.0.0.1",
        port: int = 0,
        limit_requests: int | None = None,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.limit_requests = limit_requests
        self._listener: asyncio.Server | None = None
        self._handled = 0
        self._done = asyncio.Event()

    @property
    def n_handled(self) -> int:
        """Requests answered so far (any status)."""
        return self._handled

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._listener = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockname = self._listener.sockets[0].getsockname()
        self.host, self.port = sockname[0], int(sockname[1])
        return self.host, self.port

    async def serve_until_done(self) -> None:
        """Serve until :meth:`stop` — or ``limit_requests`` — ends it."""
        await self._done.wait()

    async def stop(self) -> None:
        """Stop listening and release the batching server (idempotent)."""
        self._done.set()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        await self.server.close()

    # -- request handling --------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, headers, payload = await self._route(method, path, body)
            except _BadRequestError as exc:
                status, headers, payload = 400, [], {"error": str(exc)}
            except QueueFullError as exc:
                status = 503
                headers = [("Retry-After", f"{exc.retry_after_s:.3f}")]
                payload = {"error": str(exc), "retry_after_s": exc.retry_after_s}
            except DeadlineExceededError as exc:
                status, headers, payload = 504, [], {"error": str(exc)}
            except Exception as exc:  # translated, never a dropped connection
                status, headers, payload = 500, [], {"error": str(exc)}
            self._write_response(writer, status, headers, payload)
            await writer.drain()
        finally:
            writer.close()
            self._handled += 1
            if (
                self.limit_requests is not None
                and self._handled >= self.limit_requests
            ):
                self._done.set()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, Any]]:
        """Parse one request: method, path and (for POST) the JSON body."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise _BadRequestError("truncated request head") from exc
        if len(head) > _MAX_HEAD_BYTES:
            raise _BadRequestError("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequestError(f"malformed request line: {lines[0]!r}")
        method, path, _version = parts
        content_length = 0
        for line in lines[1:]:
            name, _sep, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _BadRequestError("bad Content-Length") from exc
        if content_length > _MAX_BODY_BYTES:
            raise _BadRequestError("request body too large")
        body: dict[str, Any] = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                parsed = json.loads(raw)
            except ValueError as exc:
                raise _BadRequestError("body is not valid JSON") from exc
            if not isinstance(parsed, dict):
                raise _BadRequestError("body must be a JSON object")
            body = parsed
        return method, path, body

    async def _route(
        self, method: str, path: str, body: dict[str, Any]
    ) -> _Response:
        server = self.server
        if method == "GET" and path == "/healthz":
            return 200, [], {
                "ok": True,
                "generation": server.generation,
                "n_indexed": server.engine.n_indexed,
            }
        if method == "GET" and path == "/stats":
            return 200, [], dict(server.stats())
        if method == "POST" and path == "/query":
            row, threshold, top_k, deadline_s = _parse_query_body(body)
            matches = await server.query(
                row, threshold=threshold, top_k=top_k, deadline_s=deadline_s
            )
            return 200, [], {"matches": matches}
        if method == "POST" and path == "/swap":
            bundle = body.get("bundle")
            if not isinstance(bundle, str):
                raise _BadRequestError('"bundle" must be a path string')
            generation = await server.swap(bundle)
            return 200, [], {"generation": generation}
        return 404, [], {"error": f"no route for {method} {path}"}

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: list[tuple[str, str]],
        payload: dict[str, Any],
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in headers)
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body)


async def serve_http(
    server: AsyncQueryServer,
    host: str = "127.0.0.1",
    port: int = 0,
    limit_requests: int | None = None,
) -> HttpFrontend:
    """Start an :class:`HttpFrontend` and return it once it is listening."""
    frontend = HttpFrontend(
        server, host=host, port=port, limit_requests=limit_requests
    )
    await frontend.start()
    return frontend
