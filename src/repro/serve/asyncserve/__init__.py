"""Async serving front-end with adaptive micro-batching.

The batched kernels behind :class:`repro.serve.QueryEngine` are ~two
orders of magnitude faster per query at batch 1024 than at batch 1
(``BENCH_serving.json``), but real clients send one query at a time.
This package closes that gap: an :mod:`asyncio` front-end coalesces
concurrent single-query requests into dynamic micro-batches, executes
them off-loop against the existing engines, and splits the grouped
results back per request — byte-identical to querying the engine
directly.

* :class:`MicroBatcher` — bounded admission queue, adaptive flush on
  ``max_batch`` / ``max_wait_us``, per-request deadlines, backpressure.
* :class:`AsyncQueryServer` — engine lifecycle on top of the batcher:
  off-loop execution, zero-downtime snapshot swap, ``stats()``.
* :func:`serve_http` / :class:`HttpFrontend` — a thin stdlib HTTP layer
  over ``asyncio.start_server`` (the in-process async API needs no
  sockets, so tests and embedders skip it).

See ``docs/serving.md`` ("Async front-end").
"""

from repro.serve.asyncserve.batcher import (
    BatcherConfig,
    DeadlineExceededError,
    MicroBatcher,
    QueueFullError,
)
from repro.serve.asyncserve.http import HttpFrontend, serve_http
from repro.serve.asyncserve.server import AsyncQueryServer

__all__ = [
    "AsyncQueryServer",
    "BatcherConfig",
    "DeadlineExceededError",
    "HttpFrontend",
    "MicroBatcher",
    "QueueFullError",
    "serve_http",
]
