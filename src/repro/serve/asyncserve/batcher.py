"""Adaptive micro-batching (:class:`MicroBatcher`).

The batcher owns the *queueing* half of the async front-end: requests
are admitted into a bounded FIFO, coalesced into batches, and handed to
an ``execute`` coroutine supplied by the caller (the server layer binds
it to an engine).  It knows nothing about engines, snapshots or HTTP.

**Flush policy.**  A batch flushes when ``max_batch`` requests are
queued or when the oldest queued request has waited the *effective*
window.  The window adapts to load: it is ``max_wait_us`` scaled by an
exponential moving average of recent batch fill (``len(batch) /
max_batch``), clamped to ``[min_wait_us, max_wait_us]``.  Under light
load fill is near zero, so singles flush almost immediately (latency
floor); under heavy load fill approaches one, so the batcher waits the
full window and ships large batches (throughput ceiling).  Bursts
larger than ``max_batch`` split into consecutive batches in arrival
order.

**Backpressure.**  Admission beyond ``queue_depth`` raises
:class:`QueueFullError` carrying a ``retry_after_s`` hint, and at most
``max_inflight_batches`` batches execute concurrently — the flush loop
stalls (and the queue fills, and admission rejects) rather than buffering
unbounded work behind a saturated engine.

**Deadlines.**  A request whose deadline passes while queued is failed
with :class:`DeadlineExceededError` at flush time, *before* it consumes
a batch slot; a cancelled request is skipped the same way.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from collections.abc import Awaitable, Callable
from dataclasses import dataclass
from typing import Protocol

from repro.perf import LogHistogram

#: One query record: the attribute values of a single row.
Row = tuple[str, ...]

#: Per-query matches: ``(record_id, distance)`` pairs.
Matches = list[tuple[int, int]]

#: Smoothing factor for the batch-fill moving average (per flush).
_FILL_ALPHA = 0.25


class SupportsMatches(Protocol):
    """The slice of :class:`repro.serve.QueryResult` the batcher needs."""

    def matches(self) -> list[Matches]:
        """Per-query ``(record_id, distance)`` lists."""
        ...


#: The execution hook: a coroutine answering one coalesced batch.
ExecuteFn = Callable[[list[Row], "int | None", "int | None"], Awaitable[SupportsMatches]]


class QueueFullError(RuntimeError):
    """Admission rejected: the bounded queue is at ``queue_depth``.

    ``retry_after_s`` is the server's drain-time estimate — HTTP layers
    surface it as a ``Retry-After`` header with a 503.
    """

    def __init__(self, depth: int, retry_after_s: float):
        self.depth = depth
        self.retry_after_s = retry_after_s
        super().__init__(
            f"admission queue full ({depth} queued); retry in {retry_after_s:.3f}s"
        )


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed while it waited in the queue."""

    def __init__(self, waited_s: float):
        self.waited_s = waited_s
        super().__init__(f"deadline exceeded after {waited_s * 1e3:.1f} ms in queue")


@dataclass(frozen=True)
class BatcherConfig:
    """Knobs of the micro-batcher (see the module docstring).

    Parameters
    ----------
    max_batch:
        Flush as soon as this many requests are queued.
    max_wait_us:
        Ceiling on how long the oldest queued request may wait before a
        timer flush (microseconds).
    min_wait_us:
        Floor of the adaptive window — the latency cost a request pays
        even when the server is idle.  0 flushes singles immediately.
    queue_depth:
        Bounded admission queue; submissions beyond it are rejected
        with :class:`QueueFullError`.
    deadline_ms:
        Default per-request deadline (milliseconds); ``None`` means no
        deadline unless the request carries one.
    adaptive:
        When false the window is always ``max_wait_us`` (deterministic,
        useful in tests).
    max_inflight_batches:
        Batches allowed to execute concurrently before the flush loop
        stalls.  2 pipelines collection against execution without
        letting work pile up behind a saturated engine.
    """

    max_batch: int = 256
    max_wait_us: float = 2000.0
    min_wait_us: float = 0.0
    queue_depth: int = 4096
    deadline_ms: float | None = None
    adaptive: bool = True
    max_inflight_batches: int = 2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if not 0 <= self.min_wait_us <= self.max_wait_us:
            raise ValueError(
                f"need 0 <= min_wait_us <= max_wait_us, got "
                f"min_wait_us={self.min_wait_us}, max_wait_us={self.max_wait_us}"
            )
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be >= 1, got {self.max_inflight_batches}"
            )


@dataclass
class _Pending:
    """One admitted request waiting to be batched."""

    row: Row
    threshold: int | None
    top_k: int | None
    enqueued: float
    deadline: float | None
    future: "asyncio.Future[Matches]"


class MicroBatcher:
    """Coalesce concurrent single-query submissions into micro-batches.

    ``execute(rows, threshold, top_k)`` is awaited once per flushed
    (sub-)batch; requests with differing ``(threshold, top_k)`` flush
    together but execute as separate sub-batches, so every request is
    answered exactly as a direct ``query_batch`` call would.

    The flush loop starts lazily on the first :meth:`submit` and is torn
    down by :meth:`close` (which drains the queue first).
    """

    def __init__(self, execute: ExecuteFn, config: BatcherConfig | None = None):
        self._execute = execute
        self.config = config or BatcherConfig()
        self._queue: deque[_Pending] = deque()
        self._arrived = asyncio.Event()
        self._loop_task: "asyncio.Task[None] | None" = None
        self._inflight: set["asyncio.Task[None]"] = set()
        self._closed = False
        self._fill_ewma = 0.0
        #: Additive counters: ``n_submitted`` / ``n_completed`` /
        #: ``n_rejected`` / ``n_deadline_missed`` / ``n_cancelled`` /
        #: ``n_execute_errors`` / ``n_batches`` / ``n_flush_full`` /
        #: ``n_flush_timer`` and the admission high-water mark
        #: ``queue_depth_peak``.
        self.stats: dict[str, float] = {}
        #: Distribution of flushed batch sizes.
        self.batch_size_hist = LogHistogram.sizes()
        #: Per-request latency (admission to result), seconds.
        self.request_latency_hist = LogHistogram.latency()

    # -- admission ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted and waiting to be batched."""
        return len(self._queue)

    def _bump(self, key: str, value: float = 1.0) -> None:
        self.stats[key] = self.stats.get(key, 0.0) + value

    def _retry_after_s(self) -> float:
        """Drain-time estimate for a rejected request: how long until the
        queued backlog has flushed, assuming full batches every window."""
        windows = -(-len(self._queue) // self.config.max_batch)
        return max(1e-3, windows * self._effective_wait_s())

    async def submit(
        self,
        row: Row,
        threshold: int | None = None,
        top_k: int | None = None,
        deadline_s: float | None = None,
    ) -> Matches:
        """Admit one query and await its matches.

        ``deadline_s`` (seconds from now; defaults to the config's
        ``deadline_ms``) bounds the *queueing* delay — a request still
        queued when it expires fails with :class:`DeadlineExceededError`
        without consuming a batch slot.  Raises :class:`QueueFullError`
        when the admission queue is at capacity.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        if len(self._queue) >= self.config.queue_depth:
            self._bump("n_rejected")
            raise QueueFullError(len(self._queue), self._retry_after_s())
        now = time.monotonic()
        if deadline_s is None and self.config.deadline_ms is not None:
            deadline_s = self.config.deadline_ms / 1e3
        pending = _Pending(
            row=tuple(row),
            threshold=threshold,
            top_k=top_k,
            enqueued=now,
            deadline=None if deadline_s is None else now + deadline_s,
            future=asyncio.get_running_loop().create_future(),
        )
        self._queue.append(pending)
        self._bump("n_submitted")
        peak = self.stats.get("queue_depth_peak", 0.0)
        if len(self._queue) > peak:
            self.stats["queue_depth_peak"] = float(len(self._queue))
        if self._loop_task is None:
            self._loop_task = asyncio.create_task(self._run())
        self._arrived.set()
        return await pending.future

    async def close(self) -> None:
        """Flush the remaining queue, await in-flight batches, stop."""
        self._closed = True
        self._arrived.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight))

    # -- flush loop --------------------------------------------------------------

    def _effective_wait_s(self) -> float:
        """The adaptive window, in seconds (see the module docstring)."""
        cfg = self.config
        if not cfg.adaptive:
            return cfg.max_wait_us * 1e-6
        span = cfg.max_wait_us - cfg.min_wait_us
        return (cfg.min_wait_us + span * self._fill_ewma) * 1e-6

    def _note_flush(self, batch_size: int) -> None:
        fill = min(1.0, batch_size / self.config.max_batch)
        self._fill_ewma += _FILL_ALPHA * (fill - self._fill_ewma)

    async def _run(self) -> None:
        cfg = self.config
        while True:
            if not self._queue:
                if self._closed:
                    return
                self._arrived.clear()
                if self._queue or self._closed:
                    continue  # raced with an append / close
                await self._arrived.wait()
                continue
            # Collection window: wait for the batch to fill, bounded by
            # the adaptive window measured from the oldest request.
            flush_at = self._queue[0].enqueued + self._effective_wait_s()
            while len(self._queue) < cfg.max_batch and not self._closed:
                remaining = flush_at - time.monotonic()
                if remaining <= 0:
                    self._bump("n_flush_timer")
                    break
                self._arrived.clear()
                try:
                    await asyncio.wait_for(self._arrived.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    self._bump("n_flush_timer")
                    break
            else:
                if not self._closed:
                    self._bump("n_flush_full")
            while (
                len(self._inflight) >= cfg.max_inflight_batches and not self._closed
            ):
                await asyncio.wait(
                    tuple(self._inflight), return_when=asyncio.FIRST_COMPLETED
                )
            batch = self._drain(cfg.max_batch)
            if not batch:
                continue
            self._note_flush(len(batch))
            self.batch_size_hist.record(float(len(batch)))
            self._bump("n_batches")
            task = asyncio.create_task(self._dispatch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    def _drain(self, limit: int) -> list[_Pending]:
        """Pop up to ``limit`` live requests; expired/cancelled ones are
        failed/skipped *without* consuming batch slots."""
        now = time.monotonic()
        batch: list[_Pending] = []
        while self._queue and len(batch) < limit:
            pending = self._queue.popleft()
            if pending.future.done():
                self._bump("n_cancelled")
                continue
            if pending.deadline is not None and now > pending.deadline:
                self._bump("n_deadline_missed")
                pending.future.set_exception(
                    DeadlineExceededError(now - pending.enqueued)
                )
                continue
            batch.append(pending)
        return batch

    async def _dispatch(self, batch: list[_Pending]) -> None:
        """Execute one flushed batch and distribute per-request results.

        Requests group by ``(threshold, top_k)`` — each group is one
        ``execute`` call, so every request gets exactly the answer a
        direct ``query_batch`` with its own parameters would return.
        """
        groups: dict[tuple[int | None, int | None], list[_Pending]] = {}
        for pending in batch:
            groups.setdefault((pending.threshold, pending.top_k), []).append(pending)
        for (threshold, top_k), group in groups.items():
            rows = [pending.row for pending in group]
            try:
                result = await self._execute(rows, threshold, top_k)
            except Exception as exc:  # delivered, not swallowed
                self._bump("n_execute_errors")
                for pending in group:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                continue
            done = time.monotonic()
            for pending, matches in zip(group, result.matches()):
                if pending.future.done():
                    self._bump("n_cancelled")
                    continue
                pending.future.set_result(matches)
                self._bump("n_completed")
                self.request_latency_hist.record(done - pending.enqueued)
