"""The paper's primary contribution: compact Hamming embeddings + cBV-HB."""

from repro.core.config import (
    BlockingConfig,
    CalibrationConfig,
    DBLP_ATTRIBUTE_K,
    DEFAULT_DELTA,
    DEFAULT_K,
    DEFAULT_R,
    DEFAULT_RHO,
    NCVR_ATTRIBUTE_K,
    PH_ATTRIBUTE_THRESHOLDS,
    PL_RECORD_THRESHOLD,
    RuleBlockingConfig,
)
from repro.core.cvector import CVectorEncoder, HASH_PRIME, UniversalHash
from repro.core.encoder import AttributeLayout, RecordEncoder
from repro.core.linker import CompactHammingLinker, LinkageResult, StreamingLinker
from repro.core.qgram import (
    QGramScheme,
    qgram_from_index,
    qgram_index,
    qgram_index_set,
    qgram_vector,
    qgrams,
    record_qgram_vector,
)
from repro.core.persist import (
    encoder_from_dict,
    encoder_to_dict,
    load_encoder,
    save_encoder,
)
from repro.core.tuning import KCandidate, KSelection, choose_k, measure_k
from repro.core.sizing import (
    SizingReport,
    expected_collisions,
    expected_set_positions,
    optimal_cvector_size,
    record_size,
    size_attribute,
)

__all__ = [
    "AttributeLayout",
    "BlockingConfig",
    "CVectorEncoder",
    "CalibrationConfig",
    "CompactHammingLinker",
    "DBLP_ATTRIBUTE_K",
    "DEFAULT_DELTA",
    "DEFAULT_K",
    "DEFAULT_R",
    "DEFAULT_RHO",
    "HASH_PRIME",
    "KCandidate",
    "KSelection",
    "LinkageResult",
    "NCVR_ATTRIBUTE_K",
    "PH_ATTRIBUTE_THRESHOLDS",
    "PL_RECORD_THRESHOLD",
    "QGramScheme",
    "RecordEncoder",
    "RuleBlockingConfig",
    "SizingReport",
    "StreamingLinker",
    "UniversalHash",
    "choose_k",
    "measure_k",
    "encoder_from_dict",
    "encoder_to_dict",
    "load_encoder",
    "save_encoder",
    "expected_collisions",
    "expected_set_positions",
    "optimal_cvector_size",
    "qgram_from_index",
    "qgram_index",
    "qgram_index_set",
    "qgram_vector",
    "qgrams",
    "record_qgram_vector",
    "record_size",
    "size_attribute",
]
