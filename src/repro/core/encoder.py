"""Record-level c-vector encoders (Section 5.2, last paragraph).

Charlie receives records of ``n_f`` string attributes, transforms each
attribute value into an attribute-level c-vector sized by Theorem 1, and
concatenates them into the record-level structure of size ``m̄_opt``.
:class:`RecordEncoder` performs exactly this, tracks the bit offset of each
attribute inside the concatenated vector (needed by the attribute-level
blocking of Section 5.4), and encodes whole datasets into packed matrices.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.cvector import CVectorEncoder, intern_column
from repro.core.qgram import QGramScheme
from repro.core.sizing import DEFAULT_CONFIDENCE_R, DEFAULT_RHO
from repro.hamming.bitmatrix import BitMatrix, scatter_bits
from repro.hamming.bitvector import BitVector
from repro.hamming.distance import masked_hamming_rows
from repro.perf import ParallelConfig, parallel_map


@dataclass(frozen=True)
class AttributeLayout:
    """Where one attribute's c-vector lives inside the record-level vector."""

    name: str
    offset: int
    width: int

    @property
    def stop(self) -> int:
        return self.offset + self.width


class RecordEncoder:
    """Encode multi-attribute string records into record-level c-vectors.

    Parameters
    ----------
    encoders:
        One :class:`CVectorEncoder` per attribute, in record order.
    names:
        Attribute names (``f_1 .. f_nf``); defaults to ``f1, f2, ...``.
    """

    def __init__(self, encoders: Sequence[CVectorEncoder], names: Sequence[str] | None = None):
        if not encoders:
            raise ValueError("encoders must be non-empty")
        if names is None:
            names = [f"f{i + 1}" for i in range(len(encoders))]
        if len(names) != len(encoders):
            raise ValueError(f"{len(names)} names for {len(encoders)} encoders")
        if len(set(names)) != len(names):
            raise ValueError(f"attribute names must be unique: {names}")
        self.encoders = list(encoders)
        self.names = list(names)
        self.layouts: list[AttributeLayout] = []
        offset = 0
        for name, enc in zip(self.names, self.encoders):
            self.layouts.append(AttributeLayout(name=name, offset=offset, width=enc.m))
            offset += enc.m
        self._by_name = {layout.name: i for i, layout in enumerate(self.layouts)}

    @property
    def n_attributes(self) -> int:
        return len(self.encoders)

    @property
    def total_bits(self) -> int:
        """``m̄_opt``: the record-level c-vector width."""
        return self.layouts[-1].stop

    def layout(self, attribute: str) -> AttributeLayout:
        """Bit layout of a named attribute."""
        try:
            return self.layouts[self._by_name[attribute]]
        except KeyError:
            raise KeyError(f"unknown attribute {attribute!r}; have {self.names}") from None

    def attribute_encoder(self, attribute: str) -> CVectorEncoder:
        return self.encoders[self._by_name[attribute]]

    # -- per-record API ---------------------------------------------------------

    def encode(self, values: Sequence[str]) -> BitVector:
        """Record-level c-vector: attribute-level c-vectors concatenated."""
        self._check_arity(values)
        out = self.encoders[0].encode(values[0])
        for enc, value in zip(self.encoders[1:], values[1:]):
            out = out.concat(enc.encode(value))
        return out

    def _check_arity(self, values: Sequence[str]) -> None:
        if len(values) != self.n_attributes:
            raise ValueError(
                f"record has {len(values)} values, encoder expects {self.n_attributes}"
            )

    # -- dataset API --------------------------------------------------------------

    def encode_dataset(
        self,
        records: Sequence[Sequence[str]],
        parallel: ParallelConfig | None = None,
        stats: dict[str, float] | None = None,
    ) -> BitMatrix:
        """Encode many records into one packed record-level matrix.

        Each attribute column is *interned*: every unique value is
        tokenised and hashed once, then scattered to all its occurrences
        (see :func:`repro.core.cvector.intern_column`), and the whole
        dataset lands in one vectorised scatter with attribute ``i``'s
        compact indices shifted by its bit offset.

        With ``parallel.n_jobs > 1`` the records are sharded into
        contiguous ranges and encoded by worker processes; results are
        concatenated in range order, so the matrix is identical to the
        single-process one.  ``stats``, when given, receives interning
        counters (``intern_values``, ``intern_unique``, ``intern_hit_rate``).
        """
        if not records:
            raise ValueError("records must be non-empty")
        if parallel is not None and parallel.effective_jobs > 1 and len(records) > 1:
            ranges = parallel.shard_ranges(len(records))
            if len(ranges) > 1:
                shards = [(self, list(records[lo:hi])) for lo, hi in ranges]
                outs = parallel_map(_encode_shard, shards, parallel)
                if stats is not None:
                    _merge_intern_stats(stats, [s for _, s in outs])
                return BitMatrix(np.vstack([w for w, _ in outs]), self.total_bits)
        return self._encode_dataset_single(records, stats)

    def _encode_dataset_single(
        self, records: Sequence[Sequence[str]], stats: dict[str, float] | None = None
    ) -> BitMatrix:
        """Single-process interned encode (the ``n_jobs=1`` path)."""
        for record in records:
            self._check_arity(record)
        rows: list[np.ndarray] = []
        bits: list[np.ndarray] = []
        n_values = 0
        n_unique = 0
        for att, (enc, layout) in enumerate(zip(self.encoders, self.layouts)):
            column = intern_column([record[att] for record in records], enc.scheme)
            n_values += column.n_values
            n_unique += column.n_unique
            if column.flat_indices.size == 0:
                continue
            hashed = enc.hash_fn.apply(column.flat_indices) + layout.offset
            rows.append(column.rows)
            bits.append(hashed[column.gather])
        if stats is not None:
            stats["intern_values"] = float(n_values)
            stats["intern_unique"] = float(n_unique)
            stats["intern_hit_rate"] = 1.0 - n_unique / n_values if n_values else 0.0
        if not rows:
            return BitMatrix.zeros(len(records), self.total_bits)
        return scatter_bits(
            len(records), self.total_bits, np.concatenate(rows), np.concatenate(bits)
        )

    def encode_attribute(self, records: Sequence[Sequence[str]], attribute: str) -> BitMatrix:
        """Attribute-level matrix for one named attribute."""
        idx = self._by_name[attribute]
        return self.encoders[idx].encode_all([record[idx] for record in records])

    def attribute_distances(
        self, matrix_a: BitMatrix, rows_a: np.ndarray, matrix_b: BitMatrix, rows_b: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Per-attribute Hamming distances for candidate pairs.

        Both matrices must be record-level matrices from this encoder.  The
        distances are computed by slicing each attribute's bit range, which
        is what the matching step's classification rules consume.
        """
        out: dict[str, np.ndarray] = {}
        words_a = matrix_a.words
        words_b = matrix_b.words
        for layout in self.layouts:
            out[layout.name] = masked_hamming_rows(
                words_a, rows_a, words_b, rows_b, layout.offset, layout.stop
            )
        return out

    # -- calibration ----------------------------------------------------------------

    @classmethod
    def calibrated(
        cls,
        sample_records: Sequence[Sequence[str]],
        names: Sequence[str] | None = None,
        scheme: QGramScheme | None = None,
        rho: float = DEFAULT_RHO,
        r: float = DEFAULT_CONFIDENCE_R,
        seed: int | None = None,
    ) -> "RecordEncoder":
        """Calibrate one encoder per attribute from sample records.

        Each attribute's ``b^(f_i)`` is measured on the sample and its
        ``m_opt`` derived via Theorem 1; hash functions are drawn from a
        seeded stream so the whole encoder is reproducible.
        """
        if not sample_records:
            raise ValueError("sample_records must be non-empty")
        n_attrs = len(sample_records[0])
        scheme = scheme or QGramScheme()
        seeds = np.random.SeedSequence(seed).spawn(n_attrs)
        encoders = []
        for att in range(n_attrs):
            column = [record[att] for record in sample_records]
            encoders.append(
                CVectorEncoder.calibrated(
                    column,
                    scheme=scheme,
                    rho=rho,
                    r=r,
                    seed=seeds[att],
                )
            )
        return cls(encoders, names=names)

    def __repr__(self) -> str:
        widths = ", ".join(f"{lay.name}={lay.width}" for lay in self.layouts)
        return f"RecordEncoder(total_bits={self.total_bits}, {widths})"


def _encode_shard(
    task: "tuple[RecordEncoder, list[Sequence[str]]]",
) -> tuple[np.ndarray, dict[str, float]]:
    """Worker: encode one contiguous record range (module-level, picklable)."""
    encoder, records = task
    stats: dict[str, float] = {}
    matrix = encoder._encode_dataset_single(records, stats)
    return matrix.words, stats


def _merge_intern_stats(out: dict[str, float], shard_stats: Sequence[dict[str, float]]) -> None:
    """Sum per-shard interning counters (unique counts are per shard)."""
    values = sum(s.get("intern_values", 0.0) for s in shard_stats)
    unique = sum(s.get("intern_unique", 0.0) for s in shard_stats)
    out["intern_values"] = values
    out["intern_unique"] = unique
    out["intern_hit_rate"] = 1.0 - unique / values if values else 0.0
