"""q-gram extraction and q-gram vectors (Section 4.1, Algorithm 1).

A *q-gram vector* represents a string deterministically in the Hamming
space ``{0,1}^(|S|^q)``: every position stands for one distinct q-gram, and
the positions of the q-grams occurring in the string are set to 1.

Algorithm 1 gives the bijection ``F`` from a q-gram to its position: the
q-gram is read as a base-``|S|`` number using the zero-based order of each
character in the alphabet ``S``.  For the upper-case alphabet and bigrams,
``F('JO') = 9*26 + 14 = 248`` — exactly the paper's Figure 1.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.hamming.bitvector import BitVector
from repro.text.alphabet import Alphabet, AlphabetError, DEFAULT_ALPHABET
from repro.text.normalize import pad as pad_string

#: Capacity of the process-wide q-gram index-set cache.  Real datasets
#: (NCVR names, DBLP authors) repeat attribute values heavily, so most
#: ``index_set`` lookups after warm-up are cache hits.
INDEX_SET_CACHE_SIZE = 1 << 16


def qgrams(value: str, q: int = 2, padded: bool = False, pad_char: str = "_") -> list[str]:
    """The q-grams of ``value`` in order of occurrence (with repeats).

    With ``padded=True`` the string is first padded with ``q - 1`` pad
    characters on each side (footnote 4 of the paper), so the first and
    last characters participate in ``q`` q-grams each.

    >>> qgrams('JOHN')
    ['JO', 'OH', 'HN']
    >>> qgrams('JOHN', padded=True)
    ['_J', 'JO', 'OH', 'HN', 'N_']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    text = pad_string(value, q, pad_char) if padded else value
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def qgram_index(gram: str, alphabet: Alphabet = DEFAULT_ALPHABET) -> int:
    """Algorithm 1: map a q-gram to its position in the q-gram vector.

    ``ind = sum_i ord(gr[i]) * |S|^(q - 1 - i)`` with zero-based ``ord``
    (a Horner evaluation of the q-gram as a base-``|S|`` numeral).

    >>> qgram_index('JO'), qgram_index('OH'), qgram_index('HN')
    (248, 371, 195)
    """
    if not gram:
        raise ValueError("q-gram must be non-empty")
    size = len(alphabet)
    ind = 0
    for ch in gram:
        ind = ind * size + alphabet.index(ch)
    return ind


def qgram_from_index(index: int, q: int, alphabet: Alphabet = DEFAULT_ALPHABET) -> str:
    """Invert Algorithm 1: reconstruct the q-gram at vector position ``index``.

    >>> qgram_from_index(248, 2)
    'JO'
    """
    size = len(alphabet)
    if not 0 <= index < size**q:
        raise ValueError(f"index {index} out of range for |S|^q = {size ** q}")
    chars = []
    for __ in range(q):
        index, rem = divmod(index, size)
        chars.append(alphabet.char(rem))
    return "".join(reversed(chars))


def qgram_index_set(
    value: str,
    q: int = 2,
    alphabet: Alphabet = DEFAULT_ALPHABET,
    padded: bool = False,
    pad_char: str = "_",
) -> frozenset[int]:
    """The set ``U_s`` of q-gram vector positions set by string ``value``.

    >>> sorted(qgram_index_set('JOHN'))
    [195, 248, 371]
    """
    return frozenset(
        qgram_index(g, alphabet) for g in qgrams(value, q, padded, pad_char)
    )


@lru_cache(maxsize=32)
def _alphabet_lut(alphabet: Alphabet) -> np.ndarray:
    """Code-point lookup table: ``lut[ord(ch)]`` is Algorithm 1's ``ord(ch)``.

    Characters outside the alphabet map to ``-1`` (or fall off the table).
    Cached per alphabet; tables are tiny for ASCII alphabets.
    """
    ords = np.fromiter((ord(ch) for ch in alphabet.chars), dtype=np.int64)
    lut = np.full(int(ords.max()) + 1, -1, dtype=np.int64)
    lut[ords] = np.arange(ords.size, dtype=np.int64)
    return lut


def batch_qgram_indices(
    values: Sequence[str],
    q: int = 2,
    alphabet: Alphabet = DEFAULT_ALPHABET,
    padded: bool = False,
    pad_char: str = "_",
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Algorithm 1 over a whole column of strings at once.

    Returns ``(flat, counts)``: ``counts[i]`` is the number of q-grams of
    ``values[i]`` (with repeats, in occurrence order) and ``flat``
    concatenates their q-gram vector positions.  Equivalent to mapping
    :func:`qgram_index` over :func:`qgrams` per value, but evaluated with
    a fixed number of numpy operations over the concatenated column —
    this is the hot-path tokeniser behind value interning.

    >>> flat, counts = batch_qgram_indices(['JOHN', 'OH'])
    >>> flat.tolist(), counts.tolist()
    ([248, 371, 195, 371], [3, 1])
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if padded:
        values = [pad_string(value, q, pad_char) for value in values]
    n = len(values)
    lengths = np.fromiter((len(v) for v in values), dtype=np.int64, count=n)
    counts = np.maximum(lengths - q + 1, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    codes = np.frombuffer("".join(values).encode("utf-32-le"), dtype="<u4").astype(np.int64)
    lut = _alphabet_lut(alphabet)
    starts = np.cumsum(lengths) - lengths
    offsets = np.cumsum(counts) - counts
    pos = np.repeat(starts, counts) + (
        np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    )
    size = len(alphabet)
    flat = np.zeros(total, dtype=np.int64)
    for j in range(q):
        at = codes[pos + j]
        mapped = lut[np.minimum(at, lut.size - 1)]
        mapped[at >= lut.size] = -1
        if mapped.min() < 0:
            bad = chr(int(at[mapped < 0][0]))
            raise AlphabetError(
                f"character {bad!r} is not in alphabet {alphabet.chars!r}"
            )
        flat = flat * size + mapped
    return flat, counts


@lru_cache(maxsize=INDEX_SET_CACHE_SIZE)
def interned_index_set(
    value: str,
    q: int = 2,
    alphabet: Alphabet = DEFAULT_ALPHABET,
    padded: bool = False,
    pad_char: str = "_",
) -> frozenset[int]:
    """Memoised :func:`qgram_index_set` — the hot-path interning cache.

    The returned frozenset is immutable, so sharing one object between all
    occurrences of a repeated value is safe.  Keyed on the full extraction
    scheme, so schemes with different alphabets or padding never alias.
    """
    return qgram_index_set(value, q, alphabet, padded, pad_char)


def index_set_cache_info() -> "tuple[int, int, int | None, int]":
    """``(hits, misses, maxsize, currsize)`` of the interning cache."""
    info = interned_index_set.cache_info()
    return (info.hits, info.misses, info.maxsize, info.currsize)


def clear_index_set_cache() -> None:
    """Drop every cached index set (mainly for tests and benchmarks)."""
    interned_index_set.cache_clear()


@dataclass(frozen=True)
class QGramScheme:
    """A fully specified q-gram extraction scheme.

    Bundles ``q``, the alphabet ``S`` and the padding policy so every
    component (q-gram vectors, c-vectors, Bloom filters, MinHash) tokenises
    strings identically.
    """

    q: int = 2
    alphabet: Alphabet = DEFAULT_ALPHABET
    padded: bool = False
    pad_char: str = "_"

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ValueError(f"q must be >= 1, got {self.q}")
        if self.padded and self.pad_char not in self.alphabet:
            raise ValueError(
                f"padding char {self.pad_char!r} must be in the alphabet when padded=True"
            )

    @property
    def space_size(self) -> int:
        """``m = |S|^q``, the width of the full q-gram vector space H."""
        return self.alphabet.qgram_space_size(self.q)

    def grams(self, value: str) -> list[str]:
        return qgrams(value, self.q, self.padded, self.pad_char)

    def index_set(self, value: str) -> frozenset[int]:
        """``U_s`` for ``value`` under this scheme (memoised per value)."""
        return interned_index_set(value, self.q, self.alphabet, self.padded, self.pad_char)

    def count(self, value: str) -> int:
        """Number of q-grams produced by ``value`` (with repeats).

        This is the quantity averaged into ``b^(f_i)`` in Table 3.
        """
        length = len(value) + (2 * (self.q - 1) if self.padded else 0)
        return max(0, length - self.q + 1)

    def vector(self, value: str) -> BitVector:
        """The full (sparse) q-gram vector of ``value`` in ``{0,1}^(|S|^q)``."""
        return BitVector.from_indices(self.space_size, self.index_set(value))


def qgram_vector(value: str, scheme: QGramScheme | None = None) -> BitVector:
    """Build the q-gram vector of ``value`` (Figure 1 of the paper)."""
    scheme = scheme or QGramScheme()
    return scheme.vector(value)


def record_qgram_vector(values: list[str], scheme: QGramScheme | None = None) -> BitVector:
    """Record-level q-gram vector: attribute-level vectors concatenated.

    The result lives in ``{0,1}^(n_f * |S|^q)`` (Section 4.1).
    """
    scheme = scheme or QGramScheme()
    if not values:
        raise ValueError("values must be non-empty")
    out = scheme.vector(values[0])
    for value in values[1:]:
        out = out.concat(scheme.vector(value))
    return out
