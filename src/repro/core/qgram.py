"""q-gram extraction and q-gram vectors (Section 4.1, Algorithm 1).

A *q-gram vector* represents a string deterministically in the Hamming
space ``{0,1}^(|S|^q)``: every position stands for one distinct q-gram, and
the positions of the q-grams occurring in the string are set to 1.

Algorithm 1 gives the bijection ``F`` from a q-gram to its position: the
q-gram is read as a base-``|S|`` number using the zero-based order of each
character in the alphabet ``S``.  For the upper-case alphabet and bigrams,
``F('JO') = 9*26 + 14 = 248`` — exactly the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hamming.bitvector import BitVector
from repro.text.alphabet import Alphabet, DEFAULT_ALPHABET
from repro.text.normalize import pad as pad_string


def qgrams(value: str, q: int = 2, padded: bool = False, pad_char: str = "_") -> list[str]:
    """The q-grams of ``value`` in order of occurrence (with repeats).

    With ``padded=True`` the string is first padded with ``q - 1`` pad
    characters on each side (footnote 4 of the paper), so the first and
    last characters participate in ``q`` q-grams each.

    >>> qgrams('JOHN')
    ['JO', 'OH', 'HN']
    >>> qgrams('JOHN', padded=True)
    ['_J', 'JO', 'OH', 'HN', 'N_']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    text = pad_string(value, q, pad_char) if padded else value
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def qgram_index(gram: str, alphabet: Alphabet = DEFAULT_ALPHABET) -> int:
    """Algorithm 1: map a q-gram to its position in the q-gram vector.

    ``ind = sum_i ord(gr[i]) * |S|^(q - i)`` with zero-based ``ord``.

    >>> qgram_index('JO'), qgram_index('OH'), qgram_index('HN')
    (248, 371, 195)
    """
    if not gram:
        raise ValueError("q-gram must be non-empty")
    size = len(alphabet)
    ind = 0
    for ch in gram:
        ind = ind * size + alphabet.index(ch)
    return ind


def qgram_from_index(index: int, q: int, alphabet: Alphabet = DEFAULT_ALPHABET) -> str:
    """Invert Algorithm 1: reconstruct the q-gram at vector position ``index``.

    >>> qgram_from_index(248, 2)
    'JO'
    """
    size = len(alphabet)
    if not 0 <= index < size**q:
        raise ValueError(f"index {index} out of range for |S|^q = {size ** q}")
    chars = []
    for __ in range(q):
        index, rem = divmod(index, size)
        chars.append(alphabet.char(rem))
    return "".join(reversed(chars))


def qgram_index_set(
    value: str,
    q: int = 2,
    alphabet: Alphabet = DEFAULT_ALPHABET,
    padded: bool = False,
    pad_char: str = "_",
) -> frozenset[int]:
    """The set ``U_s`` of q-gram vector positions set by string ``value``.

    >>> sorted(qgram_index_set('JOHN'))
    [195, 248, 371]
    """
    return frozenset(
        qgram_index(g, alphabet) for g in qgrams(value, q, padded, pad_char)
    )


@dataclass(frozen=True)
class QGramScheme:
    """A fully specified q-gram extraction scheme.

    Bundles ``q``, the alphabet ``S`` and the padding policy so every
    component (q-gram vectors, c-vectors, Bloom filters, MinHash) tokenises
    strings identically.
    """

    q: int = 2
    alphabet: Alphabet = DEFAULT_ALPHABET
    padded: bool = False
    pad_char: str = "_"

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ValueError(f"q must be >= 1, got {self.q}")
        if self.padded and self.pad_char not in self.alphabet:
            raise ValueError(
                f"padding char {self.pad_char!r} must be in the alphabet when padded=True"
            )

    @property
    def space_size(self) -> int:
        """``m = |S|^q``, the width of the full q-gram vector space H."""
        return self.alphabet.qgram_space_size(self.q)

    def grams(self, value: str) -> list[str]:
        return qgrams(value, self.q, self.padded, self.pad_char)

    def index_set(self, value: str) -> frozenset[int]:
        """``U_s`` for ``value`` under this scheme."""
        return qgram_index_set(value, self.q, self.alphabet, self.padded, self.pad_char)

    def count(self, value: str) -> int:
        """Number of q-grams produced by ``value`` (with repeats).

        This is the quantity averaged into ``b^(f_i)`` in Table 3.
        """
        length = len(value) + (2 * (self.q - 1) if self.padded else 0)
        return max(0, length - self.q + 1)

    def vector(self, value: str) -> BitVector:
        """The full (sparse) q-gram vector of ``value`` in ``{0,1}^(|S|^q)``."""
        return BitVector.from_indices(self.space_size, self.index_set(value))


def qgram_vector(value: str, scheme: QGramScheme | None = None) -> BitVector:
    """Build the q-gram vector of ``value`` (Figure 1 of the paper)."""
    scheme = scheme or QGramScheme()
    return scheme.vector(value)


def record_qgram_vector(values: list[str], scheme: QGramScheme | None = None) -> BitVector:
    """Record-level q-gram vector: attribute-level vectors concatenated.

    The result lives in ``{0,1}^(n_f * |S|^q)`` (Section 4.1).
    """
    scheme = scheme or QGramScheme()
    if not values:
        raise ValueError("values must be non-empty")
    out = scheme.vector(values[0])
    for value in values[1:]:
        out = out.concat(scheme.vector(value))
    return out
