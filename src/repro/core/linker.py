"""cBV-HB: the paper's end-to-end record linkage pipeline (Section 5).

The pipeline is Charlie's job from Section 3:

1. **Calibrate** — sample strings per attribute, measure ``b^(f_i)``, size
   the c-vectors via Theorem 1 and draw the attribute hash functions.
2. **Embed** — encode both datasets into record-level c-vector matrices.
3. **Block** — either the standard record-level HB (Section 4.2) or the
   rule-aware attribute-level blocking (Section 5.4).
4. **Match** — Algorithm 2: de-duplicated candidate pairs, classified with
   a Hamming threshold or the rule AST over per-attribute distances.

:class:`CompactHammingLinker` owns steps 1-4 for dataset-vs-dataset
linkage; :class:`StreamingLinker` exposes an insert/query API for the
near-real-time setting motivating the paper's introduction.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, Union

import numpy as np

from repro.core.config import (
    CalibrationConfig,
    DEFAULT_DELTA,
    DEFAULT_K,
    PL_RECORD_THRESHOLD,
)
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.bitvector import BitVector
from repro.hamming.distance import hamming_packed
from repro.hamming.lsh import HammingLSH
from repro.perf import ParallelConfig, parallel_map
from repro.rules.ast import Rule
from repro.rules.blocking import RuleAwareBlocker


@dataclass
class LinkageResult:
    """Output of one linkage run, with enough detail for every metric."""

    rows_a: np.ndarray
    rows_b: np.ndarray
    n_candidates: int
    comparison_space: int
    timings: dict[str, float] = field(default_factory=dict)
    attribute_distances: dict[str, np.ndarray] = field(default_factory=dict)
    record_distances: np.ndarray | None = None
    #: Hot-path diagnostics alongside the phase timings: interning hit
    #: rate of the embedding stage, candidate pairs generated / unique /
    #: duplicate / verified, chunk count and peak chunk size.
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def matches(self) -> set[tuple[int, int]]:
        """The classified matching pairs as (row in A, row in B) tuples."""
        return set(zip(self.rows_a.tolist(), self.rows_b.tolist()))

    @property
    def n_matches(self) -> int:
        return int(self.rows_a.size)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


class SupportsValueRows(Protocol):
    """Structural type for dataset inputs: anything with ``value_rows()``."""

    def value_rows(self) -> list[tuple[str, ...]]: ...


DatasetLike = Union[SupportsValueRows, Sequence[Sequence[str]]]


def _value_rows(dataset: DatasetLike) -> list[tuple[str, ...]]:
    """Accept a Dataset or a plain sequence of value rows."""
    if hasattr(dataset, "value_rows"):
        return dataset.value_rows()
    return [tuple(row) for row in dataset]


#: Per-worker verification state: the packed words of both matrices are
#: shipped once per worker (executor initializer), not once per chunk.
_VERIFY_STATE: dict[str, np.ndarray] = {}


def _init_verify_worker(words_a: np.ndarray, words_b: np.ndarray) -> None:
    """Executor initializer: pin both packed matrices in the worker."""
    _VERIFY_STATE["a"] = words_a
    _VERIFY_STATE["b"] = words_b


def _verify_chunk(
    task: tuple[np.ndarray, np.ndarray, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Worker: Hamming-verify one candidate chunk against the threshold."""
    rows_a, rows_b, threshold = task
    xor = _VERIFY_STATE["a"][rows_a] ^ _VERIFY_STATE["b"][rows_b]
    dist = np.bitwise_count(xor).sum(axis=1).astype(np.int64)
    keep = dist <= threshold
    return rows_a[keep], rows_b[keep], dist[keep]


class CompactHammingLinker:
    """The cBV-HB blocking/matching method.

    Construct via :meth:`record_level` (standard HB, one record-level
    threshold) or :meth:`rule_aware` (attribute-level blocking adapted to a
    classification rule), then call :meth:`link`.

    Examples
    --------
    >>> from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
    >>> problem = build_linkage_problem(NCVRGenerator(), 200, scheme_pl(), seed=7)
    >>> linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=7)
    >>> result = linker.link(problem.dataset_a, problem.dataset_b)
    >>> result.n_matches > 0
    True
    """

    def __init__(
        self,
        threshold: int | None = None,
        rule: Rule | None = None,
        k: int | Mapping[str, int] = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        attribute_names: Sequence[str] | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        max_chunk_pairs: int | None = None,
    ):
        if (threshold is None) == (rule is None):
            raise ValueError("specify exactly one of threshold (record-level) or rule")
        if rule is not None and not isinstance(k, Mapping):
            raise ValueError("rule-aware blocking needs a per-attribute K mapping")
        if threshold is not None and isinstance(k, Mapping):
            raise ValueError("record-level blocking takes a single integer K")
        self.threshold = threshold
        self.rule = rule
        self.k = k
        self.delta = delta
        self.n_tables = n_tables
        self.calibration = calibration or CalibrationConfig()
        self.scheme = scheme
        self.attribute_names = list(attribute_names) if attribute_names else None
        self.seed = seed
        self.parallel = parallel or ParallelConfig()
        self.max_chunk_pairs = max_chunk_pairs
        self.encoder: RecordEncoder | None = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def record_level(
        cls,
        threshold: int = PL_RECORD_THRESHOLD,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        max_chunk_pairs: int | None = None,
    ) -> "CompactHammingLinker":
        """Standard HB over the whole record-level c-vector (Section 4.2)."""
        return cls(
            threshold=threshold,
            k=k,
            delta=delta,
            n_tables=n_tables,
            calibration=calibration,
            scheme=scheme,
            seed=seed,
            parallel=parallel,
            max_chunk_pairs=max_chunk_pairs,
        )

    @classmethod
    def rule_aware(
        cls,
        rule: Rule,
        k: Mapping[str, int],
        delta: float = DEFAULT_DELTA,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        attribute_names: Sequence[str] | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
    ) -> "CompactHammingLinker":
        """Attribute-level blocking adapted to ``rule`` (Section 5.4).

        ``rule`` refers to attributes by the encoder's names (``f1..fn``
        by default, or ``attribute_names``).  ``parallel`` shards the
        embedding stage; the rule-aware candidate stage itself runs
        single-process.
        """
        return cls(
            rule=rule,
            k=dict(k),
            delta=delta,
            calibration=calibration,
            scheme=scheme,
            attribute_names=attribute_names,
            seed=seed,
            parallel=parallel,
        )

    # -- pipeline -----------------------------------------------------------------

    def calibrate(self, *datasets: DatasetLike) -> RecordEncoder:
        """Step 1: size and draw the attribute encoders from data samples.

        Samples up to ``calibration.sample_size`` records from each dataset
        (Charlie samples "randomly and uniformly" in the paper) and fits
        one c-vector encoder per attribute.
        """
        rows: list[tuple[str, ...]] = []
        # Fall back to the linker seed so one seed fully determines the
        # pipeline (sampling included), as the architecture doc promises.
        sample_seed = (
            self.calibration.seed if self.calibration.seed is not None else self.seed
        )
        rng = np.random.default_rng(sample_seed)
        per_dataset = max(1, self.calibration.sample_size // max(1, len(datasets)))
        for dataset in datasets:
            all_rows = _value_rows(dataset)
            if len(all_rows) <= per_dataset:
                rows.extend(all_rows)
            else:
                picks = rng.choice(len(all_rows), size=per_dataset, replace=False)
                rows.extend(all_rows[int(i)] for i in picks)
        scheme = self.scheme
        if scheme is None and datasets and hasattr(datasets[0], "schema"):
            scheme = datasets[0].schema[0].scheme
        self.encoder = RecordEncoder.calibrated(
            rows,
            names=self.attribute_names,
            scheme=scheme,
            rho=self.calibration.rho,
            r=self.calibration.r,
            seed=self.seed,
        )
        return self.encoder

    def _build_blocker(self, encoder: RecordEncoder) -> "RuleAwareBlocker | HammingLSH":
        if self.rule is not None:
            assert isinstance(self.k, Mapping)
            return RuleAwareBlocker(
                self.rule, encoder, k=self.k, delta=self.delta, seed=self.seed
            )
        assert isinstance(self.k, int)
        return HammingLSH(
            n_bits=encoder.total_bits,
            k=self.k,
            threshold=self.threshold,
            delta=self.delta,
            n_tables=self.n_tables,
            seed=self.seed,
            max_chunk_pairs=self.max_chunk_pairs,
        )

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """Run the full calibrate/embed/block/match pipeline.

        The record-level path streams memory-bounded candidate chunks
        (``max_chunk_pairs``) and verifies them — fanned out over worker
        processes when ``parallel.n_jobs > 1``.  Chunk partitioning and
        result order are deterministic, so the output is identical for
        every ``n_jobs`` / ``max_chunk_pairs`` setting.
        """
        rows_a = _value_rows(dataset_a)
        rows_b = _value_rows(dataset_b)
        counters: dict[str, float] = {}

        t0 = time.perf_counter()
        if self.encoder is None:
            self.calibrate(dataset_a, dataset_b)
        encoder = self.encoder
        assert encoder is not None
        t_calibrate = time.perf_counter() - t0

        t0 = time.perf_counter()
        stats_a: dict[str, float] = {}
        stats_b: dict[str, float] = {}
        matrix_a = encoder.encode_dataset(rows_a, parallel=self.parallel, stats=stats_a)
        matrix_b = encoder.encode_dataset(rows_b, parallel=self.parallel, stats=stats_b)
        values = stats_a.get("intern_values", 0.0) + stats_b.get("intern_values", 0.0)
        unique = stats_a.get("intern_unique", 0.0) + stats_b.get("intern_unique", 0.0)
        counters["intern_values"] = values
        counters["intern_unique"] = unique
        counters["intern_hit_rate"] = 1.0 - unique / values if values else 0.0
        t_embed = time.perf_counter() - t0

        t0 = time.perf_counter()
        blocker = self._build_blocker(encoder)
        blocker.index(matrix_a)
        t_index = time.perf_counter() - t0

        t0 = time.perf_counter()
        if isinstance(blocker, RuleAwareBlocker):
            cand_a, cand_b = blocker.candidate_pairs(matrix_b)
            n_candidates = int(cand_a.size)
            distances = (
                encoder.attribute_distances(matrix_a, cand_a, matrix_b, cand_b)
                if cand_a.size
                else {}
            )
            accepted = (
                np.asarray(self.rule.evaluate(distances))
                if cand_a.size
                else np.empty(0, dtype=bool)
            )
            out_a, out_b = cand_a[accepted], cand_b[accepted]
            attr_distances = {name: d[accepted] for name, d in distances.items()}
            record_distances = None
        else:
            out_a, out_b, record_distances, n_candidates = self._match_record_level(
                blocker, matrix_a, matrix_b, counters
            )
            attr_distances = {}
        t_match = time.perf_counter() - t0

        return LinkageResult(
            rows_a=out_a,
            rows_b=out_b,
            n_candidates=n_candidates,
            comparison_space=len(rows_a) * len(rows_b),
            timings={
                "calibrate": t_calibrate,
                "embed": t_embed,
                "index": t_index,
                "match": t_match,
            },
            attribute_distances=attr_distances,
            record_distances=record_distances,
            counters=counters,
        )

    def _match_record_level(
        self,
        blocker: HammingLSH,
        matrix_a: "BitMatrix",
        matrix_b: "BitMatrix",
        counters: dict[str, float],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Chunked, optionally parallel verification of the candidate stream.

        Returns ``(rows_a, rows_b, distances, n_candidates)`` sorted by
        encoded pair id (the historical :meth:`HammingLSH.match` order).
        """
        threshold = self.threshold or 0
        chunks = list(blocker.candidate_chunks(matrix_b, counters=counters))
        n_candidates = sum(int(chunk_a.size) for chunk_a, _ in chunks)
        counters["pairs_verified"] = float(n_candidates)
        empty = np.empty(0, dtype=np.int64)
        if not chunks:
            return empty, empty, empty, 0
        tasks = [(chunk_a, chunk_b, threshold) for chunk_a, chunk_b in chunks]
        parts = parallel_map(
            _verify_chunk,
            tasks,
            self.parallel,
            initializer=_init_verify_worker,
            initargs=(matrix_a.words, matrix_b.words),
        )
        out_a = np.concatenate([p[0] for p in parts])
        out_b = np.concatenate([p[1] for p in parts])
        dist = np.concatenate([p[2] for p in parts])
        order = np.argsort(out_a * matrix_b.n_rows + out_b, kind="stable")
        return out_a[order], out_b[order], dist[order], n_candidates

    def link_multiple(self, datasets: Sequence) -> dict[tuple[int, int], LinkageResult]:
        """Link every dataset pair ``(i, j), i < j`` with one shared encoder.

        Section 5.3 notes the method "is capable of handling an arbitrary
        number of data sets (two or more)"; the shared calibration keeps
        all embeddings in one comparable space.
        """
        if len(datasets) < 2:
            raise ValueError("need at least two datasets")
        if self.encoder is None:
            self.calibrate(*datasets)
        results: dict[tuple[int, int], LinkageResult] = {}
        for i in range(len(datasets)):
            for j in range(i + 1, len(datasets)):
                results[(i, j)] = self.link(datasets[i], datasets[j])
        return results


class StreamingLinker:
    """Incremental insert/query over the HB index (real-time setting, Section 1).

    Records of the reference dataset are inserted one at a time; each query
    record is blocked and matched immediately — the health-surveillance
    scenario where streams are integrated "in real-time".
    """

    def __init__(
        self,
        encoder: RecordEncoder,
        threshold: int,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        seed: int | None = None,
    ):
        self.encoder = encoder
        self.threshold = threshold
        self._lsh = HammingLSH(
            n_bits=encoder.total_bits, k=k, threshold=threshold, delta=delta, seed=seed
        )
        self._n_words = (encoder.total_bits + 63) // 64
        self._words = np.empty((0, self._n_words), dtype=np.uint64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def vector(self, record_id: int) -> BitVector:
        """The stored embedding of an inserted record."""
        if not 0 <= record_id < self._count:
            raise IndexError(f"record id {record_id} out of range for {self._count} records")
        return BitVector.from_packed(self._words[record_id], self.encoder.total_bits)

    def insert(self, values: Sequence[str]) -> int:
        """Insert one record; returns its internal id.

        The packed words land in a growable (amortised-doubling) array so
        queries can batch candidate distances through one popcount kernel.
        """
        vector = self.encoder.encode(values)
        record_id = self._count
        if record_id == len(self._words):
            capacity = max(16, 2 * len(self._words))
            grown = np.empty((capacity, self._n_words), dtype=np.uint64)
            grown[: self._count] = self._words[: self._count]
            self._words = grown
        self._words[record_id] = vector.to_packed()
        self._count += 1
        self._lsh.insert(vector, record_id)
        return record_id

    def query(self, values: Sequence[str]) -> list[tuple[int, int]]:
        """Matching (id, distance) pairs for one incoming record.

        Candidate ids from all blocking groups are verified in one batched
        ``bitwise_count`` sweep over the packed store instead of a per-id
        Python-integer Hamming loop.
        """
        vector = self.encoder.encode(values)
        ids = self._lsh.query(vector)
        if not ids:
            return []
        rows = np.asarray(ids, dtype=np.int64)
        distances = hamming_packed(self._words[rows], vector.to_packed())
        keep = distances <= self.threshold
        return [
            (int(rid), int(dist)) for rid, dist in zip(rows[keep], distances[keep])
        ]

    def insert_dataset(self, dataset: DatasetLike) -> None:
        """Bulk insert of a dataset (convenience for warm-up)."""
        for values in _value_rows(dataset):
            self.insert(values)
