"""cBV-HB: the paper's end-to-end record linkage pipeline (Section 5).

The pipeline is Charlie's job from Section 3:

1. **Calibrate** — sample strings per attribute, measure ``b^(f_i)``, size
   the c-vectors via Theorem 1 and draw the attribute hash functions.
2. **Embed** — encode both datasets into record-level c-vector matrices.
3. **Block** — either the standard record-level HB (Section 4.2) or the
   rule-aware attribute-level blocking (Section 5.4).
4. **Match** — Algorithm 2: de-duplicated candidate pairs, classified with
   a Hamming threshold or the rule AST over per-attribute distances.

:class:`CompactHammingLinker` owns steps 1-4 for dataset-vs-dataset
linkage; :class:`StreamingLinker` exposes an insert/query API for the
near-real-time setting motivating the paper's introduction.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, Union

import numpy as np

from repro.core.config import (
    CalibrationConfig,
    DEFAULT_DELTA,
    DEFAULT_K,
    PL_RECORD_THRESHOLD,
)
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.hamming.bitvector import BitVector
from repro.hamming.lsh import HammingLSH
from repro.rules.ast import Rule
from repro.rules.blocking import RuleAwareBlocker


@dataclass
class LinkageResult:
    """Output of one linkage run, with enough detail for every metric."""

    rows_a: np.ndarray
    rows_b: np.ndarray
    n_candidates: int
    comparison_space: int
    timings: dict[str, float] = field(default_factory=dict)
    attribute_distances: dict[str, np.ndarray] = field(default_factory=dict)
    record_distances: np.ndarray | None = None

    @property
    def matches(self) -> set[tuple[int, int]]:
        """The classified matching pairs as (row in A, row in B) tuples."""
        return set(zip(self.rows_a.tolist(), self.rows_b.tolist()))

    @property
    def n_matches(self) -> int:
        return int(self.rows_a.size)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


class SupportsValueRows(Protocol):
    """Structural type for dataset inputs: anything with ``value_rows()``."""

    def value_rows(self) -> list[tuple[str, ...]]: ...


DatasetLike = Union[SupportsValueRows, Sequence[Sequence[str]]]


def _value_rows(dataset: DatasetLike) -> list[tuple[str, ...]]:
    """Accept a Dataset or a plain sequence of value rows."""
    if hasattr(dataset, "value_rows"):
        return dataset.value_rows()
    return [tuple(row) for row in dataset]


class CompactHammingLinker:
    """The cBV-HB blocking/matching method.

    Construct via :meth:`record_level` (standard HB, one record-level
    threshold) or :meth:`rule_aware` (attribute-level blocking adapted to a
    classification rule), then call :meth:`link`.

    Examples
    --------
    >>> from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
    >>> problem = build_linkage_problem(NCVRGenerator(), 200, scheme_pl(), seed=7)
    >>> linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=7)
    >>> result = linker.link(problem.dataset_a, problem.dataset_b)
    >>> result.n_matches > 0
    True
    """

    def __init__(
        self,
        threshold: int | None = None,
        rule: Rule | None = None,
        k: int | Mapping[str, int] = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        attribute_names: Sequence[str] | None = None,
        seed: int | None = None,
    ):
        if (threshold is None) == (rule is None):
            raise ValueError("specify exactly one of threshold (record-level) or rule")
        if rule is not None and not isinstance(k, Mapping):
            raise ValueError("rule-aware blocking needs a per-attribute K mapping")
        if threshold is not None and isinstance(k, Mapping):
            raise ValueError("record-level blocking takes a single integer K")
        self.threshold = threshold
        self.rule = rule
        self.k = k
        self.delta = delta
        self.n_tables = n_tables
        self.calibration = calibration or CalibrationConfig()
        self.scheme = scheme
        self.attribute_names = list(attribute_names) if attribute_names else None
        self.seed = seed
        self.encoder: RecordEncoder | None = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def record_level(
        cls,
        threshold: int = PL_RECORD_THRESHOLD,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
    ) -> "CompactHammingLinker":
        """Standard HB over the whole record-level c-vector (Section 4.2)."""
        return cls(
            threshold=threshold,
            k=k,
            delta=delta,
            n_tables=n_tables,
            calibration=calibration,
            scheme=scheme,
            seed=seed,
        )

    @classmethod
    def rule_aware(
        cls,
        rule: Rule,
        k: Mapping[str, int],
        delta: float = DEFAULT_DELTA,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        attribute_names: Sequence[str] | None = None,
        seed: int | None = None,
    ) -> "CompactHammingLinker":
        """Attribute-level blocking adapted to ``rule`` (Section 5.4).

        ``rule`` refers to attributes by the encoder's names (``f1..fn``
        by default, or ``attribute_names``).
        """
        return cls(
            rule=rule,
            k=dict(k),
            delta=delta,
            calibration=calibration,
            scheme=scheme,
            attribute_names=attribute_names,
            seed=seed,
        )

    # -- pipeline -----------------------------------------------------------------

    def calibrate(self, *datasets: DatasetLike) -> RecordEncoder:
        """Step 1: size and draw the attribute encoders from data samples.

        Samples up to ``calibration.sample_size`` records from each dataset
        (Charlie samples "randomly and uniformly" in the paper) and fits
        one c-vector encoder per attribute.
        """
        rows: list[tuple[str, ...]] = []
        rng = np.random.default_rng(self.calibration.seed)
        per_dataset = max(1, self.calibration.sample_size // max(1, len(datasets)))
        for dataset in datasets:
            all_rows = _value_rows(dataset)
            if len(all_rows) <= per_dataset:
                rows.extend(all_rows)
            else:
                picks = rng.choice(len(all_rows), size=per_dataset, replace=False)
                rows.extend(all_rows[int(i)] for i in picks)
        scheme = self.scheme
        if scheme is None and datasets and hasattr(datasets[0], "schema"):
            scheme = datasets[0].schema[0].scheme
        self.encoder = RecordEncoder.calibrated(
            rows,
            names=self.attribute_names,
            scheme=scheme,
            rho=self.calibration.rho,
            r=self.calibration.r,
            seed=self.seed,
        )
        return self.encoder

    def _build_blocker(self, encoder: RecordEncoder) -> "RuleAwareBlocker | HammingLSH":
        if self.rule is not None:
            assert isinstance(self.k, Mapping)
            return RuleAwareBlocker(
                self.rule, encoder, k=self.k, delta=self.delta, seed=self.seed
            )
        assert isinstance(self.k, int)
        return HammingLSH(
            n_bits=encoder.total_bits,
            k=self.k,
            threshold=self.threshold,
            delta=self.delta,
            n_tables=self.n_tables,
            seed=self.seed,
        )

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """Run the full calibrate/embed/block/match pipeline."""
        rows_a = _value_rows(dataset_a)
        rows_b = _value_rows(dataset_b)

        t0 = time.perf_counter()
        if self.encoder is None:
            self.calibrate(dataset_a, dataset_b)
        encoder = self.encoder
        assert encoder is not None
        t_calibrate = time.perf_counter() - t0

        t0 = time.perf_counter()
        matrix_a = encoder.encode_dataset(rows_a)
        matrix_b = encoder.encode_dataset(rows_b)
        t_embed = time.perf_counter() - t0

        t0 = time.perf_counter()
        blocker = self._build_blocker(encoder)
        blocker.index(matrix_a)
        t_index = time.perf_counter() - t0

        t0 = time.perf_counter()
        if isinstance(blocker, RuleAwareBlocker):
            cand_a, cand_b = blocker.candidate_pairs(matrix_b)
            distances = (
                encoder.attribute_distances(matrix_a, cand_a, matrix_b, cand_b)
                if cand_a.size
                else {}
            )
            accepted = (
                np.asarray(self.rule.evaluate(distances))
                if cand_a.size
                else np.empty(0, dtype=bool)
            )
            out_a, out_b = cand_a[accepted], cand_b[accepted]
            attr_distances = {name: d[accepted] for name, d in distances.items()}
            record_distances = None
        else:
            cand_a, cand_b = blocker.candidate_pairs(matrix_b)
            if cand_a.size:
                dist = matrix_a.hamming_rows(cand_a, matrix_b, cand_b)
                keep = dist <= (self.threshold or 0)
                out_a, out_b, record_distances = cand_a[keep], cand_b[keep], dist[keep]
            else:
                out_a, out_b = cand_a, cand_b
                record_distances = np.empty(0, dtype=np.int64)
            attr_distances = {}
        t_match = time.perf_counter() - t0

        return LinkageResult(
            rows_a=out_a,
            rows_b=out_b,
            n_candidates=int(cand_a.size),
            comparison_space=len(rows_a) * len(rows_b),
            timings={
                "calibrate": t_calibrate,
                "embed": t_embed,
                "index": t_index,
                "match": t_match,
            },
            attribute_distances=attr_distances,
            record_distances=record_distances,
        )

    def link_multiple(self, datasets: Sequence) -> dict[tuple[int, int], LinkageResult]:
        """Link every dataset pair ``(i, j), i < j`` with one shared encoder.

        Section 5.3 notes the method "is capable of handling an arbitrary
        number of data sets (two or more)"; the shared calibration keeps
        all embeddings in one comparable space.
        """
        if len(datasets) < 2:
            raise ValueError("need at least two datasets")
        if self.encoder is None:
            self.calibrate(*datasets)
        results: dict[tuple[int, int], LinkageResult] = {}
        for i in range(len(datasets)):
            for j in range(i + 1, len(datasets)):
                results[(i, j)] = self.link(datasets[i], datasets[j])
        return results


class StreamingLinker:
    """Incremental insert/query over the HB index (real-time setting, Section 1).

    Records of the reference dataset are inserted one at a time; each query
    record is blocked and matched immediately — the health-surveillance
    scenario where streams are integrated "in real-time".
    """

    def __init__(
        self,
        encoder: RecordEncoder,
        threshold: int,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        seed: int | None = None,
    ):
        self.encoder = encoder
        self.threshold = threshold
        self._lsh = HammingLSH(
            n_bits=encoder.total_bits, k=k, threshold=threshold, delta=delta, seed=seed
        )
        self._vectors: list[BitVector] = []

    def __len__(self) -> int:
        return len(self._vectors)

    def insert(self, values: Sequence[str]) -> int:
        """Insert one record; returns its internal id."""
        vector = self.encoder.encode(values)
        record_id = len(self._vectors)
        self._vectors.append(vector)
        self._lsh.insert(vector, record_id)
        return record_id

    def query(self, values: Sequence[str]) -> list[tuple[int, int]]:
        """Matching (id, distance) pairs for one incoming record."""
        vector = self.encoder.encode(values)
        out: list[tuple[int, int]] = []
        for rid in self._lsh.query(vector):
            distance = self._vectors[rid].hamming(vector)
            if distance <= self.threshold:
                out.append((rid, distance))
        return out

    def insert_dataset(self, dataset: DatasetLike) -> None:
        """Bulk insert of a dataset (convenience for warm-up)."""
        for values in _value_rows(dataset):
            self.insert(values)
