"""cBV-HB: the paper's end-to-end record linkage pipeline (Section 5).

The pipeline is Charlie's job from Section 3:

1. **Calibrate** — sample strings per attribute, measure ``b^(f_i)``, size
   the c-vectors via Theorem 1 and draw the attribute hash functions.
2. **Embed** — encode both datasets into record-level c-vector matrices.
3. **Block** — either the standard record-level HB (Section 4.2) or the
   rule-aware attribute-level blocking (Section 5.4).
4. **Match** — Algorithm 2: de-duplicated candidate pairs, classified with
   a Hamming threshold or the rule AST over per-attribute distances.

Both linkers here are compositions of :mod:`repro.pipeline` stages run by
:class:`repro.pipeline.runner.LinkagePipeline` — the same engine every
baseline uses.  :class:`CompactHammingLinker` owns steps 1-4 for
dataset-vs-dataset linkage; :class:`StreamingLinker` exposes an
insert/query API for the near-real-time setting motivating the paper's
introduction (plus a batch :meth:`StreamingLinker.link` on the shared
runner).

``LinkageResult`` and the dataset protocol types are re-exported here for
back-compat; they live in :mod:`repro.pipeline.result` and
:mod:`repro.protocol` now.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.core.config import (
    CalibrationConfig,
    DEFAULT_DELTA,
    DEFAULT_K,
    PL_RECORD_THRESHOLD,
)
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.bitvector import BitVector
from repro.hamming.distance import hamming_packed
from repro.hamming.lsh import HammingLSH
from repro.hamming.query import batch_query, group_matches, top_k_smallest
from repro.hamming.sketch import VerifyConfig
from repro.perf import ParallelConfig
from repro.pipeline.context import PipelineContext
from repro.pipeline.result import LinkageResult as LinkageResult
from repro.pipeline.runner import LinkagePipeline
from repro.pipeline.stage import BlockStage, CandidateStage, Stage
from repro.pipeline.stages import (
    _VERIFY_STATE as _VERIFY_STATE,
    _init_verify_worker as _init_verify_worker,
    _verify_chunk as _verify_chunk,
    BlockerIndexStage,
    ChunkedCandidateStage,
    CVectorEmbedStage,
    EncoderCalibrateStage,
    MaterializedCandidateStage,
    RuleClassifyStage,
    ThresholdVerifyStage,
)
from repro.protocol import (
    DatasetLike as DatasetLike,
    SupportsValueRows as SupportsValueRows,
    value_rows as _value_rows,
)
from repro.rules.ast import Rule
from repro.rules.blocking import RuleAwareBlocker


class CompactHammingLinker:
    """The cBV-HB blocking/matching method.

    Construct via :meth:`record_level` (standard HB, one record-level
    threshold) or :meth:`rule_aware` (attribute-level blocking adapted to a
    classification rule), then call :meth:`link`.

    Examples
    --------
    >>> from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
    >>> problem = build_linkage_problem(NCVRGenerator(), 200, scheme_pl(), seed=7)
    >>> linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=7)
    >>> result = linker.link(problem.dataset_a, problem.dataset_b)
    >>> result.n_matches > 0
    True
    """

    def __init__(
        self,
        threshold: int | None = None,
        rule: Rule | None = None,
        k: int | Mapping[str, int] = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        attribute_names: Sequence[str] | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        max_chunk_pairs: int | None = None,
        verify: VerifyConfig | None = None,
    ):
        if (threshold is None) == (rule is None):
            raise ValueError("specify exactly one of threshold (record-level) or rule")
        if rule is not None and not isinstance(k, Mapping):
            raise ValueError("rule-aware blocking needs a per-attribute K mapping")
        if threshold is not None and isinstance(k, Mapping):
            raise ValueError("record-level blocking takes a single integer K")
        self.threshold = threshold
        self.rule = rule
        self.k = k
        self.delta = delta
        self.n_tables = n_tables
        self.calibration = calibration or CalibrationConfig()
        self.scheme = scheme
        self.attribute_names = list(attribute_names) if attribute_names else None
        self.seed = seed
        self.parallel = parallel or ParallelConfig()
        self.max_chunk_pairs = max_chunk_pairs
        self.verify = verify
        self.encoder: RecordEncoder | None = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def record_level(
        cls,
        threshold: int = PL_RECORD_THRESHOLD,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        max_chunk_pairs: int | None = None,
        verify: VerifyConfig | None = None,
    ) -> "CompactHammingLinker":
        """Standard HB over the whole record-level c-vector (Section 4.2)."""
        return cls(
            threshold=threshold,
            k=k,
            delta=delta,
            n_tables=n_tables,
            calibration=calibration,
            scheme=scheme,
            seed=seed,
            parallel=parallel,
            max_chunk_pairs=max_chunk_pairs,
            verify=verify,
        )

    @classmethod
    def rule_aware(
        cls,
        rule: Rule,
        k: Mapping[str, int],
        delta: float = DEFAULT_DELTA,
        calibration: CalibrationConfig | None = None,
        scheme: QGramScheme | None = None,
        attribute_names: Sequence[str] | None = None,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
    ) -> "CompactHammingLinker":
        """Attribute-level blocking adapted to ``rule`` (Section 5.4).

        ``rule`` refers to attributes by the encoder's names (``f1..fn``
        by default, or ``attribute_names``).  ``parallel`` shards the
        embedding stage; the rule-aware candidate stage itself runs
        single-process.
        """
        return cls(
            rule=rule,
            k=dict(k),
            delta=delta,
            calibration=calibration,
            scheme=scheme,
            attribute_names=attribute_names,
            seed=seed,
            parallel=parallel,
        )

    # -- pipeline -----------------------------------------------------------------

    def calibrate(self, *datasets: DatasetLike) -> RecordEncoder:
        """Step 1: size and draw the attribute encoders from data samples.

        Samples up to ``calibration.sample_size`` records from each dataset
        (Charlie samples "randomly and uniformly" in the paper) and fits
        one c-vector encoder per attribute.
        """
        rows: list[tuple[str, ...]] = []
        # Fall back to the linker seed so one seed fully determines the
        # pipeline (sampling included), as the architecture doc promises.
        sample_seed = (
            self.calibration.seed if self.calibration.seed is not None else self.seed
        )
        rng = np.random.default_rng(sample_seed)
        per_dataset = max(1, self.calibration.sample_size // max(1, len(datasets)))
        for dataset in datasets:
            all_rows = _value_rows(dataset)
            if len(all_rows) <= per_dataset:
                rows.extend(all_rows)
            else:
                picks = rng.choice(len(all_rows), size=per_dataset, replace=False)
                rows.extend(all_rows[int(i)] for i in picks)
        scheme = self.scheme
        if scheme is None and datasets and hasattr(datasets[0], "schema"):
            scheme = datasets[0].schema[0].scheme
        self.encoder = RecordEncoder.calibrated(
            rows,
            names=self.attribute_names,
            scheme=scheme,
            rho=self.calibration.rho,
            r=self.calibration.r,
            seed=self.seed,
        )
        return self.encoder

    def _build_blocker(self, encoder: RecordEncoder) -> "RuleAwareBlocker | HammingLSH":
        if self.rule is not None:
            assert isinstance(self.k, Mapping)
            return RuleAwareBlocker(
                self.rule, encoder, k=self.k, delta=self.delta, seed=self.seed
            )
        assert isinstance(self.k, int)
        return HammingLSH(
            n_bits=encoder.total_bits,
            k=self.k,
            threshold=self.threshold,
            delta=self.delta,
            n_tables=self.n_tables,
            seed=self.seed,
            max_chunk_pairs=self.max_chunk_pairs,
        )

    def _make_blocker(self, ctx: PipelineContext) -> "RuleAwareBlocker | HammingLSH":
        """Block-stage factory: build the blocker from the run's encoder."""
        return self._build_blocker(ctx.encoder)

    def _stages(self) -> list[Stage]:
        """The cBV-HB stage composition (record-level or rule-aware)."""
        stages: list[Stage] = [
            EncoderCalibrateStage(self),
            CVectorEmbedStage(),
            BlockerIndexStage(self._make_blocker),
        ]
        if self.rule is not None:
            stages.append(MaterializedCandidateStage())
            stages.append(RuleClassifyStage(self.rule))
        else:
            stages.append(ChunkedCandidateStage())
            stages.append(
                ThresholdVerifyStage(
                    self.threshold or 0, sort_pairs=True, verify=self.verify
                )
            )
        return stages

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """Run the full calibrate/embed/block/match pipeline.

        The record-level path streams memory-bounded candidate chunks
        (``max_chunk_pairs``) and verifies them — fanned out over worker
        processes when ``parallel.n_jobs > 1``.  Chunk partitioning and
        result order are deterministic, so the output is identical for
        every ``n_jobs`` / ``max_chunk_pairs`` setting.
        """
        pipeline = LinkagePipeline(self._stages(), parallel=self.parallel)
        return pipeline.run(dataset_a, dataset_b)

    def link_multiple(self, datasets: Sequence) -> dict[tuple[int, int], LinkageResult]:
        """Link every dataset pair ``(i, j), i < j`` with one shared encoder.

        Section 5.3 notes the method "is capable of handling an arbitrary
        number of data sets (two or more)"; the shared calibration keeps
        all embeddings in one comparable space.
        """
        if len(datasets) < 2:
            raise ValueError("need at least two datasets")
        if self.encoder is None:
            self.calibrate(*datasets)
        results: dict[tuple[int, int], LinkageResult] = {}
        for i in range(len(datasets)):
            for j in range(i + 1, len(datasets)):
                results[(i, j)] = self.link(datasets[i], datasets[j])
        return results


class _StreamingIndexStage(BlockStage):
    """Insert dataset A's records one at a time (incremental semantics)."""

    def __init__(self, linker: "StreamingLinker"):
        self.linker = linker

    def run(self, ctx: PipelineContext) -> None:
        for values in ctx.rows_a:
            self.linker.insert(values)
        ctx.blocker = self.linker._lsh
        ctx.encoder = self.linker.encoder
        ctx.embedded_a = self.linker._words[: len(self.linker)]


class _StreamingQueryStage(CandidateStage):
    """Query each B record against the streaming index, one at a time."""

    def __init__(self, linker: "StreamingLinker"):
        self.linker = linker

    def run(self, ctx: PipelineContext) -> None:
        linker = self.linker
        queries = np.empty((len(ctx.rows_b), linker._n_words), dtype=np.uint64)
        parts_a: list[np.ndarray] = []
        parts_b: list[np.ndarray] = []
        total = 0
        for j, values in enumerate(ctx.rows_b):
            vector = linker.encoder.encode(values)
            queries[j] = vector.to_packed()
            ids = linker._lsh.query(vector)
            if ids:
                total += len(ids)
                parts_a.append(np.asarray(ids, dtype=np.int64))
                parts_b.append(np.full(len(ids), j, dtype=np.int64))
        empty = np.empty(0, dtype=np.int64)
        ctx.embedded_b = queries
        ctx.cand_a = np.concatenate(parts_a) if parts_a else empty
        ctx.cand_b = np.concatenate(parts_b) if parts_b else empty
        ctx.n_candidates = total


class StreamingLinker:
    """Incremental insert/query over the HB index (real-time setting, Section 1).

    Records of the reference dataset are inserted one at a time; each query
    record is blocked and matched immediately — the health-surveillance
    scenario where streams are integrated "in real-time".  :meth:`link`
    runs the same insert-then-query flow as one batch on the shared
    :class:`~repro.pipeline.runner.LinkagePipeline`.
    """

    def __init__(
        self,
        encoder: RecordEncoder,
        threshold: int,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        seed: int | None = None,
        parallel: ParallelConfig | None = None,
        verify: VerifyConfig | None = None,
    ):
        self.encoder = encoder
        self.threshold = threshold
        self.parallel = parallel or ParallelConfig()
        self.verify = verify
        self._lsh = HammingLSH(
            n_bits=encoder.total_bits, k=k, threshold=threshold, delta=delta, seed=seed
        )
        self._n_words = (encoder.total_bits + 63) // 64
        self._words = np.empty((0, self._n_words), dtype=np.uint64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def vector(self, record_id: int) -> BitVector:
        """The stored embedding of an inserted record."""
        if not 0 <= record_id < self._count:
            raise IndexError(f"record id {record_id} out of range for {self._count} records")
        return BitVector.from_packed(self._words[record_id], self.encoder.total_bits)

    def insert(self, values: Sequence[str]) -> int:
        """Insert one record; returns its internal id.

        The packed words land in a growable (amortised-doubling) array so
        queries can batch candidate distances through one popcount kernel.
        """
        vector = self.encoder.encode(values)
        record_id = self._count
        if record_id == len(self._words):
            capacity = max(16, 2 * len(self._words))
            grown = np.empty((capacity, self._n_words), dtype=np.uint64)
            grown[: self._count] = self._words[: self._count]
            self._words = grown
        self._words[record_id] = vector.to_packed()
        self._count += 1
        self._lsh.insert(vector, record_id)
        return record_id

    def query(
        self, values: Sequence[str], top_k: int | None = None
    ) -> list[tuple[int, int]]:
        """Matching (id, distance) pairs for one incoming record.

        Candidate ids from all blocking groups are verified in one batched
        ``bitwise_count`` sweep over the packed store instead of a per-id
        Python-integer Hamming loop.  ``top_k`` keeps only the ``top_k``
        closest matches under the threshold, selected by a partial sort
        with ties broken deterministically by the smaller record id (and
        ordered by ``(distance, id)``).
        """
        vector = self.encoder.encode(values)
        ids = self._lsh.query(vector)
        if not ids:
            return []
        rows = np.asarray(ids, dtype=np.int64)
        distances = hamming_packed(self._words[rows], vector.to_packed())
        keep = distances <= self.threshold
        rows, distances = rows[keep], distances[keep]
        if top_k is not None:
            chosen = top_k_smallest(distances, rows, top_k)
            rows, distances = rows[chosen], distances[chosen]
        return [(int(rid), int(dist)) for rid, dist in zip(rows, distances)]

    def query_batch(
        self, rows: Sequence[Sequence[str]], top_k: int | None = None
    ) -> list[list[tuple[int, int]]]:
        """Matches for a whole block of incoming records at once.

        Runs the shared batch kernel (:func:`repro.hamming.query.batch_query`):
        the block is embedded in one interned pass, blocked with the
        sort-merge join and verified in one packed Hamming sweep.  The
        per-query lists equal :meth:`query` called record by record —
        ordered by record id, or by ``(distance, id)`` with ``top_k``.
        """
        if not rows:
            return []
        matrix_b = self.encoder.encode_dataset(rows)
        queries, ids, distances = batch_query(
            self._lsh,
            self._words[: self._count],
            matrix_b,
            threshold=self.threshold,
            top_k=top_k,
            verify=self.verify,
        )
        return group_matches(queries, ids, distances, len(rows))

    # -- persistence -----------------------------------------------------------

    def save_snapshot(self, path: str | Path) -> Path:
        """Persist the index as a snapshot bundle (see docs/serving.md).

        The packed embedding store and every blocking group's bucket
        arrays are written via
        :func:`repro.core.persist.save_index_snapshot`; streaming
        inserts are compacted into the sorted bulk representation at
        save time, so loading is pure ``mmap``.
        """
        from repro.core.persist import save_index_snapshot

        matrix = BitMatrix(self._words[: self._count], self.encoder.total_bits)
        return save_index_snapshot(
            path, self.encoder, matrix, self._lsh, threshold=self.threshold
        )

    @classmethod
    def load_snapshot(
        cls,
        path: str | Path,
        parallel: ParallelConfig | None = None,
        mmap_mode: str | None = "r",
        verify: VerifyConfig | None = None,
    ) -> "StreamingLinker":
        """Rebuild a streaming linker from a snapshot bundle, zero-copy.

        The packed store and bucket arrays stay memory-mapped (with the
        default ``mmap_mode``); further :meth:`insert` calls copy-on-grow
        into process memory, leaving the bundle untouched.  A sharded
        bundle (``repro.core.shards``) loads through the merged
        global-order view — byte-identical to the single-bundle index
        over the same records, write-ahead overlay included.
        """
        from repro.core.persist import load_index_snapshot
        from repro.core.shards import ShardedIndex, is_sharded_bundle

        if is_sharded_bundle(path):
            with ShardedIndex.open(path, mmap_mode=mmap_mode) as sharded:
                snapshot = sharded.merged()
        else:
            snapshot = load_index_snapshot(path, mmap_mode=mmap_mode)
        if snapshot.threshold is None:
            raise ValueError(
                f"snapshot at {path} records no matching threshold; "
                "StreamingLinker needs one"
            )
        linker = cls.__new__(cls)
        linker.encoder = snapshot.encoder
        linker.threshold = snapshot.threshold
        linker.parallel = parallel or ParallelConfig()
        linker.verify = verify
        linker._lsh = snapshot.lsh
        linker._n_words = (snapshot.encoder.total_bits + 63) // 64
        linker._words = snapshot.matrix.words
        linker._count = snapshot.n_rows
        return linker

    def insert_dataset(self, dataset: DatasetLike) -> None:
        """Bulk insert of a dataset (convenience for warm-up)."""
        for values in _value_rows(dataset):
            self.insert(values)

    def link(self, dataset_a: DatasetLike, dataset_b: DatasetLike) -> LinkageResult:
        """Batch insert-then-query on the shared pipeline runner.

        Inserts every A record into the streaming store (the index keeps
        them afterwards — call on a fresh linker for standalone runs; the
        result's A-row indices are the store's internal record ids), then
        queries each B record and Hamming-verifies the candidates.
        Timings: ``"index"`` (inserts) and ``"match"`` (queries + verify).
        """
        pipeline = LinkagePipeline(
            [
                _StreamingIndexStage(self),
                _StreamingQueryStage(self),
                ThresholdVerifyStage(self.threshold, verify=self.verify),
            ],
            parallel=self.parallel,
        )
        return pipeline.run(dataset_a, dataset_b)
