"""Sharded index bundles with durable online ingest (WAL + compaction).

One snapshot bundle (:mod:`repro.core.persist`) equals one index; this
module scales that format out: a **sharded bundle** is a directory whose
root manifest describes ``N`` shards, each shard a complete single-index
bundle (mmap-able ``.npy`` payloads, loadable on its own with
:func:`~repro.core.persist.load_index_snapshot`) plus a ``row_ids.npy``
sidecar mapping the shard's local rows back to global record ids.
Records are hashed to shards by id (:func:`shard_of_id`, a fixed
splitmix64 mix), so the assignment is stable across processes and
versions.

Layout::

    bundle/
      manifest.json            # root: kind="sharded", version, shard dirs
      encoder.json             # the shared calibrated encoder
      shards/s00000-v000001/   # shard 0 at compaction version 1:
        manifest.json ... *.npy  a full single-index bundle
        row_ids.npy              local row -> global record id
      wal/s00000.wal           # shard 0's append-only ingest log

**Durable ingest.**  :meth:`ShardedIndex.append_batch` frames each
record (canonical JSON ``{"id", "values"}``) into the owning shard's
write-ahead segment (:mod:`repro.wal`), fsyncs, and only then applies
the insert in memory — a record is acknowledged only once it is
durable.  :meth:`ShardedIndex.open` replays the segments (stopping at a
torn tail, which it truncates), so a process killed mid-ingest recovers
to exactly the acknowledged state.

**Compaction.**  :meth:`ShardedIndex.compact` folds the replayed /
ingested overlay of every shard into new shard bundle directories at
``version + 1``, publishes them with an atomic root-manifest swap
(temp file + ``os.replace``), then deletes the old directories and WAL
segments.  A crash at any point leaves a root manifest that points at
one complete generation; orphaned directories from an interrupted
compaction are swept on the next one.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import DEFAULT_DELTA, DEFAULT_K
from repro.core.encoder import RecordEncoder
from repro.core.persist import (
    ENCODER_NAME,
    MANIFEST_NAME,
    IndexSnapshot,
    SnapshotError,
    _dict_fingerprint,
    _fsync_dir,
    encoder_fingerprint,
    encoder_from_dict,
    encoder_to_dict,
    fsync_file,
    load_index_snapshot,
    save_index_snapshot,
    write_dir_atomic,
)
from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.bitvector import BitVector
from repro.hamming.lsh import BlockingGroup, HammingLSH
from repro.wal import SegmentWriter, replay_segment, truncate_segment

#: Version of the sharded root-manifest layout.
SHARDED_FORMAT_VERSION = 1

#: ``kind`` discriminator in the root manifest.
SHARDED_KIND = "sharded"

#: Per-shard sidecar mapping local rows to global record ids.
ROW_IDS_NAME = "row_ids.npy"

_MASK64 = (1 << 64) - 1
_MIX_ADD = 0x9E3779B97F4A7C15
_MIX_MUL1 = 0xBF58476D1CE4E5B9
_MIX_MUL2 = 0x94D049BB133111EB


def shard_of_id(record_id: int, n_shards: int) -> int:
    """The shard owning ``record_id`` (splitmix64 mix, mod ``n_shards``).

    The mix constants are fixed, so the record-to-shard assignment is a
    format property: stable across processes, compactions and builds.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if record_id < 0:
        raise ValueError(f"record_id must be >= 0, got {record_id}")
    if n_shards == 1:
        return 0
    z = (record_id + _MIX_ADD) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_MUL1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_MUL2) & _MASK64
    z ^= z >> 31
    return int(z % n_shards)


def shards_of_ids(record_ids: np.ndarray, n_shards: int) -> np.ndarray:
    """Vectorised :func:`shard_of_id` over an id array (int64 out)."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    ids = np.asarray(record_ids, dtype=np.int64)
    if n_shards == 1:
        return np.zeros(ids.shape, dtype=np.int64)
    z = ids.astype(np.uint64) + np.uint64(_MIX_ADD)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_MUL1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_MUL2)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(n_shards)).astype(np.int64)


def shard_dirname(shard: int, version: int) -> str:
    """Relative directory of one shard at one compaction version."""
    return f"shards/s{shard:05d}-v{version:06d}"


def wal_name(shard: int) -> str:
    """Relative path of one shard's write-ahead segment."""
    return f"wal/s{shard:05d}.wal"


def is_sharded_bundle(path: str | Path) -> bool:
    """True when ``path`` holds a sharded root manifest (kind discriminator)."""
    manifest_file = Path(path) / MANIFEST_NAME
    if not manifest_file.is_file():
        return False
    try:
        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return False
    return isinstance(manifest, dict) and manifest.get("kind") == SHARDED_KIND


def load_shard(
    path: str | Path, mmap_mode: str | None = "r"
) -> tuple[IndexSnapshot, np.ndarray]:
    """Load one shard directory: its snapshot plus the row-id mapping.

    A shard is a complete single-index bundle, so the snapshot loads via
    :func:`~repro.core.persist.load_index_snapshot`; the ``row_ids.npy``
    sidecar must be a 1-D int64 array with one entry per indexed row.
    """
    shard_dir = Path(path)
    snapshot = load_index_snapshot(shard_dir, mmap_mode=mmap_mode)
    row_file = shard_dir / ROW_IDS_NAME
    if not row_file.is_file():
        raise SnapshotError(f"shard row-id sidecar missing at {row_file}")
    try:
        row_ids = np.load(row_file, mmap_mode=mmap_mode, allow_pickle=False)
    except (ValueError, OSError) as exc:
        raise SnapshotError(f"shard row-id sidecar unreadable: {exc}") from exc
    if row_ids.ndim != 1 or str(row_ids.dtype) != "int64":
        raise SnapshotError(
            f"shard row-id sidecar is {row_ids.dtype}{row_ids.shape}, "
            "expected 1-D int64"
        )
    if int(row_ids.size) != snapshot.n_rows:
        raise SnapshotError(
            f"shard row-id sidecar has {row_ids.size} entries for "
            f"{snapshot.n_rows} indexed rows — stale shard bundle"
        )
    if row_ids.size > 1 and not bool(np.all(np.diff(row_ids) > 0)):
        # Local row order must follow global-id order: per-shard top-k
        # tie-breaks (smaller local id wins) only agree with the global
        # (distance, id) rule under this invariant, which every build /
        # ingest / compaction path preserves.
        raise SnapshotError(
            "shard row ids are not strictly increasing — corrupt or "
            "hand-edited shard bundle"
        )
    return snapshot, row_ids


@dataclass
class _ShardState:
    """One shard's serving state: persisted base plus in-memory overlay.

    ``words`` / ``row_ids`` start as the shard bundle's (typically
    memory-mapped) arrays and copy-on-grow at the first append; rows
    ``base_rows..count`` are the overlay — ingested or WAL-replayed
    records not yet folded into a shard bundle by compaction.
    """

    lsh: HammingLSH
    words: np.ndarray
    row_ids: np.ndarray
    count: int
    base_rows: int
    dirname: str | None = None

    @property
    def overlay_rows(self) -> int:
        return self.count - self.base_rows


class ShardedIndex:
    """An ``N``-shard HB index with durable online ingest.

    Construct with :meth:`build` (partition and index rows in memory),
    then :meth:`save` to persist, or :meth:`open` to attach a persisted
    sharded bundle (shard payloads memory-mapped, WAL replayed).  The
    scatter-gather serving layer on top is
    :class:`repro.serve.ShardedQueryEngine`.
    """

    def __init__(
        self,
        encoder: RecordEncoder,
        shards: list[_ShardState],
        threshold: int,
        next_id: int,
        path: Path | None = None,
        version: int = 0,
        manifest: dict[str, Any] | None = None,
        mmap_mode: str | None = "r",
    ):
        if not shards:
            raise ValueError("a sharded index needs at least one shard")
        self.encoder = encoder
        self.shards = shards
        self.threshold = threshold
        self.next_id = next_id
        self.path = path
        self.version = version
        self.manifest = manifest or {}
        self._mmap_mode = mmap_mode
        self._writers: dict[int, SegmentWriter] = {}
        #: Recovery / ingest counters (``wal_replayed_records``,
        #: ``wal_torn_bytes``, ``records_appended``).
        self.counters: dict[str, float] = {}

    # -- introspection -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_rows(self) -> int:
        """Total indexed records across shards (including the overlay)."""
        return sum(state.count for state in self.shards)

    @property
    def overlay_rows(self) -> int:
        """Ingested / replayed records not yet compacted into shard bundles."""
        return sum(state.overlay_rows for state in self.shards)

    @property
    def n_bits(self) -> int:
        return self.encoder.total_bits

    def shard_rows(self) -> list[int]:
        """Per-shard record counts (diagnostics / stats)."""
        return [state.count for state in self.shards]

    # -- constructors ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        rows: list[tuple[str, ...]],
        encoder: RecordEncoder,
        n_shards: int,
        threshold: int,
        k: int = DEFAULT_K,
        delta: float = DEFAULT_DELTA,
        n_tables: int | None = None,
        seed: int | None = None,
        max_chunk_pairs: int | None = None,
    ) -> "ShardedIndex":
        """Partition ``rows`` across ``n_shards`` and index every shard.

        Global record ids are the row indices; each shard gets its own
        :class:`~repro.hamming.lsh.HammingLSH` built from the **same**
        ``(k, threshold, delta, seed)``, so all shards sample identical
        bit positions — a record's candidacy for a query depends only on
        its own blocking keys, which is what makes sharded results
        byte-identical to a single index over the same rows.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        matrix = encoder.encode_dataset(rows)
        ids = np.arange(len(rows), dtype=np.int64)
        assignment = shards_of_ids(ids, n_shards)
        shards: list[_ShardState] = []
        for shard in range(n_shards):
            row_ids = ids[assignment == shard]
            shard_matrix = BitMatrix(
                matrix.words[row_ids], encoder.total_bits
            )
            lsh = HammingLSH(
                n_bits=encoder.total_bits,
                k=k,
                threshold=threshold,
                delta=delta,
                n_tables=n_tables,
                seed=seed,
                max_chunk_pairs=max_chunk_pairs,
            )
            lsh.index(shard_matrix)
            shards.append(
                _ShardState(
                    lsh=lsh,
                    words=shard_matrix.words,
                    row_ids=row_ids,
                    count=int(row_ids.size),
                    base_rows=int(row_ids.size),
                )
            )
        return cls(
            encoder=encoder,
            shards=shards,
            threshold=threshold,
            next_id=len(rows),
        )

    @classmethod
    def open(cls, path: str | Path, mmap_mode: str | None = "r") -> "ShardedIndex":
        """Attach a persisted sharded bundle and replay its WAL segments.

        Every shard's payloads stay memory-mapped (default
        ``mmap_mode``); write-ahead records land in the in-memory
        overlay exactly as they were acknowledged, a torn segment tail
        is truncated to the durable prefix, and any structural problem
        raises :class:`~repro.core.persist.SnapshotError`.
        """
        root = Path(path)
        manifest = _read_root_manifest(root)
        encoder = _read_root_encoder(root, manifest)
        threshold = int(manifest["threshold"])
        specs = manifest["shards"]
        shards: list[_ShardState] = []
        reference: tuple[tuple[int, ...], ...] | None = None
        for shard, spec in enumerate(specs):
            snapshot, row_ids = load_shard(root / spec["dir"], mmap_mode=mmap_mode)
            if snapshot.n_rows != int(spec["n_rows"]):
                raise SnapshotError(
                    f"shard {shard} holds {snapshot.n_rows} rows but the root "
                    f"manifest promises {spec['n_rows']} — stale shard manifest"
                )
            if encoder_fingerprint(snapshot.encoder) != manifest["encoder_sha256"]:
                raise SnapshotError(
                    f"shard {shard} was built with a different encoder than "
                    "the sharded root records"
                )
            positions = tuple(g.composite.positions for g in snapshot.lsh.groups)
            if reference is None:
                reference = positions
            elif positions != reference:
                raise SnapshotError(
                    f"shard {shard} samples different blocking positions than "
                    "shard 0 — shards of one bundle must share one LSH"
                )
            shards.append(
                _ShardState(
                    lsh=snapshot.lsh,
                    words=snapshot.matrix.words,
                    row_ids=row_ids,
                    count=snapshot.n_rows,
                    base_rows=snapshot.n_rows,
                    dirname=str(spec["dir"]),
                )
            )
        index = cls(
            encoder=encoder,
            shards=shards,
            threshold=threshold,
            next_id=int(manifest["next_id"]),
            path=root,
            version=int(manifest["version"]),
            manifest=manifest,
            mmap_mode=mmap_mode,
        )
        index._replay_wal()
        return index

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist the index as a sharded bundle (atomic whole-directory).

        Every shard — including any in-memory overlay, which is folded
        by the shard save — is written as a complete single-index bundle
        under a temp root, the root manifest last; the temp root is then
        renamed into place.  The index re-attaches to the persisted
        bundle (payloads memory-mapped, overlay empty).
        """
        version = max(1, self.version + 1)

        def _write(tmp: Path) -> None:
            specs = []
            for shard, state in enumerate(self.shards):
                specs.append(self._write_shard(tmp, shard, state, version))
            (tmp / "wal").mkdir(exist_ok=True)
            (tmp / ENCODER_NAME).write_text(
                json.dumps(encoder_to_dict(self.encoder), indent=2),
                encoding="utf-8",
            )
            fsync_file(tmp / ENCODER_NAME)
            manifest = self._root_manifest(version, specs)
            (tmp / MANIFEST_NAME).write_text(
                json.dumps(manifest, indent=2), encoding="utf-8"
            )
            fsync_file(tmp / MANIFEST_NAME)

        out = write_dir_atomic(path, _write)
        self._attach(out)
        return out

    def compact(self) -> int:
        """Fold the WAL overlay into new shard bundles at ``version + 1``.

        Writes every shard's current state (persisted base + overlay) as
        a fresh bundle directory, atomically swaps the root manifest to
        the new generation (temp file + ``os.replace``), then removes
        the superseded shard directories and WAL segments.  A crash
        before the swap leaves the old generation authoritative; a crash
        after it leaves only orphaned old directories, swept by the next
        compaction.  Returns the new version.
        """
        if self.path is None:
            raise ValueError(
                "compact() needs a persisted sharded bundle; call save() first"
            )
        root = self.path
        version = self.version + 1
        specs = [
            self._write_shard(root, shard, state, version)
            for shard, state in enumerate(self.shards)
        ]
        manifest = self._root_manifest(version, specs)
        _swap_root_manifest(root, manifest)
        self.close()
        for state in self.shards:
            if state.dirname is not None:
                shutil.rmtree(root / state.dirname, ignore_errors=True)
        for shard in range(self.n_shards):
            (root / wal_name(shard)).unlink(missing_ok=True)
        _sweep_orphans(root, {str(spec["dir"]) for spec in specs})
        self.version = version
        self.manifest = manifest
        self._reload_shards(specs)
        return version

    def close(self) -> None:
        """Close any open write-ahead segment writers (idempotent)."""
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- ingest ------------------------------------------------------------------

    def append(self, values: tuple[str, ...]) -> int:
        """Durably ingest one record; returns its global id."""
        return self.append_batch([values])[0]

    def append_batch(self, rows: list[tuple[str, ...]]) -> list[int]:
        """Durably ingest a batch; global ids are assigned sequentially.

        For a persisted index every record is CRC-framed into its owning
        shard's write-ahead segment and the touched segments are fsync'd
        **before** the in-memory inserts happen — by the time this
        returns (the acknowledgement), a crash at any earlier point
        replays to a prefix of these records and a crash after it
        replays all of them.  An in-memory index (never saved) skips the
        WAL and simply inserts.
        """
        if not rows:
            return []
        vectors = [self.encoder.encode(tuple(row)) for row in rows]
        gids = list(range(self.next_id, self.next_id + len(rows)))
        if self.path is not None:
            touched: set[int] = set()
            for gid, row in zip(gids, rows):
                shard = shard_of_id(gid, self.n_shards)
                payload = _wal_payload(gid, row)
                self._writer(shard).append(payload, sync=False)
                touched.add(shard)
            for shard in sorted(touched):
                self._writers[shard].sync()
        for gid, vector in zip(gids, vectors):
            self._append_local(shard_of_id(gid, self.n_shards), gid, vector)
        self.next_id += len(rows)
        self.counters["records_appended"] = (
            self.counters.get("records_appended", 0.0) + len(rows)
        )
        return gids

    # -- merged view -------------------------------------------------------------

    def merged(self) -> IndexSnapshot:
        """One logical :class:`IndexSnapshot` over all shards, in global order.

        Reassembles the packed words into global-id row order and merges
        every blocking group's sorted arrays (stable two-key ordering:
        bucket key, then global id) — byte-identical to the index a
        single-shard build over the same rows would produce.  Used by
        the pipeline's ``LoadSnapshotStage`` and
        ``StreamingLinker.load_snapshot`` so offline linkage runs
        unchanged against sharded bundles.
        """
        total = self.n_rows
        if total != self.next_id:
            raise SnapshotError(
                f"sharded bundle holds {total} rows but ids run to "
                f"{self.next_id} — global ids must be dense"
            )
        n_words = (self.n_bits + 63) // 64
        words = np.empty((total, n_words), dtype=np.uint64)
        for state in self.shards:
            words[state.row_ids[: state.count]] = state.words[: state.count]
        reference = self.shards[0].lsh
        merged = HammingLSH.from_state(
            n_bits=self.n_bits,
            k=reference.k,
            positions=[g.composite.positions for g in reference.groups],
            threshold=self.threshold,
            delta=reference.delta,
            max_chunk_pairs=reference.max_chunk_pairs,
        )
        groups: list[BlockingGroup] = []
        for table, template in enumerate(merged.groups):
            key_parts: list[np.ndarray] = []
            gid_parts: list[np.ndarray] = []
            for state in self.shards:
                keys, local_ids, __ = state.lsh.groups[table].export_arrays()
                key_parts.append(keys)
                gid_parts.append(state.row_ids[local_ids])
            keys = np.concatenate(key_parts)
            gids = np.concatenate(gid_parts)
            by_gid = np.argsort(gids, kind="stable")
            keys, gids = keys[by_gid], gids[by_gid]
            by_key = np.argsort(keys, kind="stable")
            keys, gids = keys[by_key], gids[by_key]
            if keys.size:
                bounds = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
            else:
                bounds = np.empty(0, dtype=np.int64)
            groups.append(
                BlockingGroup.from_arrays(template.composite, keys, gids, bounds)
            )
        merged.groups = groups
        return IndexSnapshot(
            encoder=self.encoder,
            matrix=BitMatrix(words, self.n_bits),
            lsh=merged,
            threshold=self.threshold,
            path=self.path,
            manifest=self.manifest,
        )

    # -- internals ---------------------------------------------------------------

    def _writer(self, shard: int) -> SegmentWriter:
        writer = self._writers.get(shard)
        if writer is None:
            assert self.path is not None  # guarded by append_batch
            writer = SegmentWriter(self.path / wal_name(shard))
            self._writers[shard] = writer
        return writer

    def _append_local(self, shard: int, gid: int, vector: BitVector) -> None:
        """Insert one encoded record into a shard's in-memory overlay."""
        state = self.shards[shard]
        if state.count == len(state.words):
            capacity = max(16, 2 * len(state.words))
            n_words = (self.n_bits + 63) // 64
            grown = np.empty((capacity, n_words), dtype=np.uint64)
            grown[: state.count] = state.words[: state.count]
            state.words = grown
            grown_ids = np.empty(capacity, dtype=np.int64)
            grown_ids[: state.count] = state.row_ids[: state.count]
            state.row_ids = grown_ids
        state.words[state.count] = vector.to_packed()
        state.row_ids[state.count] = gid
        state.lsh.insert(vector, state.count)
        state.count += 1

    def _replay_wal(self) -> None:
        """Fold every shard's durable WAL records into the overlay."""
        assert self.path is not None
        replayed = 0
        torn = 0
        highest = self.next_id
        for shard in range(self.n_shards):
            segment = self.path / wal_name(shard)
            result = replay_segment(segment)
            if not result.clean:
                truncate_segment(segment, result.durable_bytes)
                torn += result.torn_bytes
            for payload in result.records:
                gid, values = _parse_wal_payload(payload)
                if shard_of_id(gid, self.n_shards) != shard:
                    raise SnapshotError(
                        f"WAL segment for shard {shard} carries record "
                        f"{gid}, which hashes to shard "
                        f"{shard_of_id(gid, self.n_shards)}"
                    )
                self._append_local(shard, gid, self.encoder.encode(values))
                highest = max(highest, gid + 1)
                replayed += 1
        self.next_id = highest
        self.counters["wal_replayed_records"] = float(replayed)
        self.counters["wal_torn_bytes"] = float(torn)

    def _write_shard(
        self, root: Path, shard: int, state: _ShardState, version: int
    ) -> dict[str, Any]:
        """Write one shard (base + overlay) as a bundle dir; return its spec."""
        dirname = shard_dirname(shard, version)
        matrix = BitMatrix(np.asarray(state.words[: state.count]), self.n_bits)
        save_index_snapshot(
            root / dirname, self.encoder, matrix, state.lsh, threshold=self.threshold
        )
        row_ids = np.asarray(state.row_ids[: state.count], dtype=np.int64)
        np.save(root / dirname / ROW_IDS_NAME, row_ids, allow_pickle=False)
        fsync_file(root / dirname / ROW_IDS_NAME)
        return {"dir": dirname, "n_rows": int(state.count)}

    def _root_manifest(self, version: int, specs: list[dict[str, Any]]) -> dict[str, Any]:
        return {
            "format_version": SHARDED_FORMAT_VERSION,
            "kind": SHARDED_KIND,
            "n_shards": self.n_shards,
            "version": version,
            "next_id": self.next_id,
            "threshold": self.threshold,
            "n_bits": self.n_bits,
            "encoder_sha256": encoder_fingerprint(self.encoder),
            "shards": specs,
        }

    def _reload_shards(self, specs: list[dict[str, Any]]) -> None:
        """Re-attach every shard from disk (fresh mmap, empty overlay)."""
        assert self.path is not None
        fresh: list[_ShardState] = []
        for spec in specs:
            snapshot, row_ids = load_shard(
                self.path / spec["dir"], mmap_mode=self._mmap_mode
            )
            fresh.append(
                _ShardState(
                    lsh=snapshot.lsh,
                    words=snapshot.matrix.words,
                    row_ids=row_ids,
                    count=snapshot.n_rows,
                    base_rows=snapshot.n_rows,
                    dirname=str(spec["dir"]),
                )
            )
        self.shards = fresh

    def _attach(self, root: Path) -> None:
        """Point this index at a freshly written bundle root."""
        self.close()
        manifest = _read_root_manifest(root)
        self.path = root
        self.version = int(manifest["version"])
        self.manifest = manifest
        self._reload_shards(list(manifest["shards"]))


# -- root-manifest helpers ---------------------------------------------------------


def _read_root_manifest(root: Path) -> dict[str, Any]:
    manifest_file = root / MANIFEST_NAME
    if not manifest_file.is_file():
        raise SnapshotError(f"no sharded bundle manifest at {manifest_file}")
    try:
        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"sharded manifest is not valid JSON: {exc}") from exc
    if manifest.get("kind") != SHARDED_KIND:
        raise SnapshotError(
            f"bundle at {root} is not a sharded index (kind="
            f"{manifest.get('kind')!r}); load it with load_index_snapshot"
        )
    version = manifest.get("format_version")
    if version != SHARDED_FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported sharded format version {version!r} "
            f"(this build reads version {SHARDED_FORMAT_VERSION})"
        )
    specs = manifest.get("shards")
    n_shards = manifest.get("n_shards")
    if not isinstance(specs, list) or not specs or len(specs) != n_shards:
        raise SnapshotError(
            f"sharded manifest names {0 if not isinstance(specs, list) else len(specs)} "
            f"shard dirs for n_shards={n_shards!r}"
        )
    for key in ("version", "next_id", "threshold", "n_bits", "encoder_sha256"):
        if key not in manifest:
            raise SnapshotError(f"sharded manifest is missing field {key!r}")
    return manifest


def _read_root_encoder(root: Path, manifest: dict[str, Any]) -> RecordEncoder:
    encoder_file = root / ENCODER_NAME
    if not encoder_file.is_file():
        raise SnapshotError(f"sharded encoder sidecar missing at {encoder_file}")
    try:
        encoder_data = json.loads(encoder_file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"sharded encoder sidecar is not valid JSON: {exc}"
        ) from exc
    if _dict_fingerprint(encoder_data) != manifest.get("encoder_sha256"):
        raise SnapshotError(
            "encoder fingerprint mismatch: the sidecar does not match the "
            "encoder this sharded index was built with"
        )
    try:
        encoder = encoder_from_dict(encoder_data)
    except ValueError as exc:
        raise SnapshotError(f"sharded encoder unreadable: {exc}") from exc
    if encoder.total_bits != int(manifest["n_bits"]):
        raise SnapshotError(
            f"encoder width {encoder.total_bits} does not match sharded "
            f"bundle width {manifest['n_bits']}"
        )
    return encoder


def _swap_root_manifest(root: Path, manifest: dict[str, Any]) -> None:
    """Atomically replace the root manifest (temp file + ``os.replace``)."""
    tmp = root / f"{MANIFEST_NAME}.tmp-{os.getpid()}"
    tmp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    fsync_file(tmp)
    os.replace(tmp, root / MANIFEST_NAME)
    # Without a directory fsync the rename itself may not survive a
    # crash, leaving the old generation authoritative after an ack.
    _fsync_dir(root)


def _sweep_orphans(root: Path, live_dirs: set[str]) -> None:
    """Remove shard dirs no generation references (interrupted compactions)."""
    shards_dir = root / "shards"
    if not shards_dir.is_dir():
        return
    for child in shards_dir.iterdir():
        if child.is_dir() and f"shards/{child.name}" not in live_dirs:
            shutil.rmtree(child, ignore_errors=True)


def _wal_payload(gid: int, values: tuple[str, ...]) -> bytes:
    """Canonical JSON framing payload for one ingested record."""
    return json.dumps(
        {"id": gid, "values": list(values)},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def _parse_wal_payload(payload: bytes) -> tuple[int, tuple[str, ...]]:
    try:
        data = json.loads(payload.decode("utf-8"))
        return int(data["id"]), tuple(str(v) for v in data["values"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"unreadable WAL record: {exc}") from exc
