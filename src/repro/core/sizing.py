"""c-vector sizing theory: Lemma 1 and Theorem 1 (Section 5.2).

Hashing the ``b`` q-grams of a string into a c-vector of ``m`` positions is
a balls-into-bins process; collisions between *differing* q-grams of a pair
shrink Hamming distances in the compact space and can misclassify
non-matching pairs.  The paper bounds the expected number of collisions
(Lemma 1) and derives the smallest ``m`` that keeps it within a tolerated
budget ``rho`` with confidence ``1 - r`` (Theorem 1):

    m_opt = ceil((b - rho) / (1 - e^{-r}))

With ``rho = 1`` and ``r = 1/3`` this reproduces the paper's Table 3
exactly (m_opt = 15/15/68/22 for NCVR, 14/19/226/8 for DBLP).

Reproduction note: the theorem's substitution of the fixed ratio ``r`` for
``b/m`` inside ``e^{-b/m}`` makes the collision bound loose for larger
``b`` — the delivered ``m`` actually keeps the *fill ratio* near ``r``,
giving expected collisions around ``b^2 / (2m) ~ b*r/2`` rather than
strictly within ``rho`` (the paper's own b=20 -> m=68 case has
``E[c] ~ 2.6``).  We implement the published formula verbatim; see
``tests/test_sizing.py`` for the measured behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Paper defaults (Section 5.2 and Figure 7): tolerate one expected
#: collision, with confidence 2/3.
DEFAULT_RHO = 1.0
DEFAULT_CONFIDENCE_R = 1.0 / 3.0


def expected_set_positions(b: float, m: int) -> float:
    """``E[v]``: expected number of 1-positions after hashing ``b`` q-grams.

    Equation (6): ``E[v] = m * (1 - (1 - 1/m)^b)``.

    >>> round(expected_set_positions(5.0, 15), 3)
    4.376
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if b < 0:
        raise ValueError(f"b must be >= 0, got {b}")
    return m * (1.0 - (1.0 - 1.0 / m) ** b)


def expected_collisions(b: float, m: int) -> float:
    """Lemma 1: expected collisions ``E[c] = b - E[v]``.

    The result is clamped at zero: for fractional ``b < 1`` the continuous
    extension of Equation (6) can slightly exceed ``b``, but a collision
    count is never negative.

    >>> expected_collisions(5.0, 15) < 1.0
    True
    """
    return max(0.0, b - expected_set_positions(b, m))


def optimal_cvector_size(
    b: float, rho: float = DEFAULT_RHO, r: float = DEFAULT_CONFIDENCE_R
) -> int:
    """Theorem 1: the optimal c-vector size ``m_opt`` for an attribute.

    Parameters
    ----------
    b:
        Average number of q-grams of the attribute's values (``b^(f_i)``).
    rho:
        Maximum tolerated expected number of collisions.
    r:
        The ratio bound ``b/m`` substituted in the proof; the confidence
        that collisions stay within budget is ``1 - r``.  Must be in (0, 1).

    Examples (Table 3 of the paper)
    -------------------------------
    >>> [optimal_cvector_size(b) for b in (5.1, 5.0, 20.0, 7.2)]
    [15, 15, 68, 22]
    >>> [optimal_cvector_size(b) for b in (4.8, 6.2, 64.8, 3.0)]
    [14, 19, 226, 8]
    """
    if not 0.0 < r < 1.0:
        raise ValueError(f"confidence ratio r must be in (0, 1), got {r}")
    if rho < 0:
        raise ValueError(f"rho must be >= 0, got {rho}")
    if b <= 0:
        raise ValueError(f"b must be > 0, got {b}")
    if b <= rho:
        # Fewer q-grams than the collision budget: any positive size works;
        # use the smallest size consistent with the r-ratio constraint.
        return max(1, math.ceil(b / r))
    return math.ceil((b - rho) / (1.0 - math.exp(-r)))


@dataclass(frozen=True)
class SizingReport:
    """The sizing decision for one attribute, with its predicted quality."""

    b: float
    rho: float
    r: float
    m_opt: int
    expected_collisions: float
    expected_ones: float

    @property
    def confidence(self) -> float:
        """``1 - r``: confidence that collisions stay within ``rho``."""
        return 1.0 - self.r

    @property
    def fill_ratio(self) -> float:
        """Expected fraction of positions set to 1 (sparsity diagnostic)."""
        return self.expected_ones / self.m_opt


def size_attribute(
    b: float, rho: float = DEFAULT_RHO, r: float = DEFAULT_CONFIDENCE_R
) -> SizingReport:
    """Apply Theorem 1 to one attribute and report the predicted statistics."""
    m_opt = optimal_cvector_size(b, rho, r)
    return SizingReport(
        b=b,
        rho=rho,
        r=r,
        m_opt=m_opt,
        expected_collisions=expected_collisions(b, m_opt),
        expected_ones=expected_set_positions(b, m_opt),
    )


def record_size(bs: list[float], rho: float = DEFAULT_RHO, r: float = DEFAULT_CONFIDENCE_R) -> int:
    """``m̄_opt``: total record-level c-vector size for per-attribute ``b`` values.

    >>> record_size([5.1, 5.0, 20.0, 7.2])
    120
    >>> record_size([4.8, 6.2, 64.8, 3.0])
    267
    """
    return sum(optimal_cvector_size(b, rho, r) for b in bs)
