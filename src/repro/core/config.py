"""Shared experiment constants from the paper's evaluation (Section 6).

Collected in one place so library defaults, tests and benchmarks all refer
to the same published parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Equation (2) miss probability used throughout the paper's experiments.
DEFAULT_DELTA = 0.1

#: Record-level K used for cBV-HB under scheme PL ("we set K = 30").
DEFAULT_K = 30

#: Record-level Hamming threshold under PL ("theta_PL = 4"): one edit
#: operation moves at most 4 bits (substitution bound of Section 5.1).
PL_RECORD_THRESHOLD = 4

#: Attribute-level thresholds under PH: one op on f1 and f2 (<= 4 bits
#: each), two ops on f3 (<= 8 bits).
PH_ATTRIBUTE_THRESHOLDS = {"f1": 4, "f2": 4, "f3": 8}

#: Attribute-level K^(f_i) for the NCVR configuration (Table 3).
NCVR_ATTRIBUTE_K = {"f1": 5, "f2": 5, "f3": 10}

#: Attribute-level K^(f_i) for the DBLP configuration (Table 3).
DBLP_ATTRIBUTE_K = {"f1": 5, "f2": 5, "f3": 12}

#: Theorem 1 defaults: tolerate one expected collision with confidence 2/3.
DEFAULT_RHO = 1.0
DEFAULT_R = 1.0 / 3.0


@dataclass(frozen=True)
class CalibrationConfig:
    """How the record encoder is calibrated from data samples."""

    rho: float = DEFAULT_RHO
    r: float = DEFAULT_R
    sample_size: int = 1000
    seed: int | None = None


@dataclass(frozen=True)
class BlockingConfig:
    """Record-level HB parameters (Section 4.2)."""

    k: int = DEFAULT_K
    threshold: int = PL_RECORD_THRESHOLD
    delta: float = DEFAULT_DELTA
    n_tables: int | None = None
    seed: int | None = None


@dataclass(frozen=True)
class RuleBlockingConfig:
    """Attribute-level, rule-aware blocking parameters (Section 5.4)."""

    k_per_attribute: dict[str, int] = field(default_factory=dict)
    delta: float = DEFAULT_DELTA
    seed: int | None = None
