"""Compact q-gram vectors — c-vectors (Section 5.2).

A c-vector re-embeds a string from the full q-gram space ``H`` (width
``|S|^q``) into a compact space ``H-hat`` of ``m_opt`` positions by hashing
every index in ``U_s`` with a randomly chosen pairwise-independent hash

    g(x) = ((a*x + b) mod P) mod m,      P = 2^31 - 1,  a, b in (0, P)

(one ``g`` per attribute, shared by all strings of that attribute so
distances remain comparable).  ``m_opt`` comes from Theorem 1 — see
:mod:`repro.core.sizing`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.qgram import QGramScheme, batch_qgram_indices
from repro.core.sizing import DEFAULT_CONFIDENCE_R, DEFAULT_RHO, optimal_cvector_size
from repro.hamming.bitmatrix import BitMatrix, scatter_bits
from repro.hamming.bitvector import BitVector

#: The large prime of the paper's hash family: 2^31 - 1 (a Mersenne prime).
HASH_PRIME = 2**31 - 1

#: Per-encoder LRU capacity for memoised compact index sets (streaming path).
COMPACT_CACHE_SIZE = 4096


@dataclass(frozen=True)
class InternedColumn:
    """Vectorised expansion of one attribute column's q-gram index sets.

    Every *unique* value of the column is tokenised exactly once; the
    per-record structure is recovered with two gather arrays instead of a
    per-record Python loop:

    - ``flat_indices`` concatenates the q-gram indices of the unique
      values (occurrence order, repeats kept — the bit scatter is
      idempotent), in first-occurrence order of the values.
    - ``gather[i]`` maps emitted bit ``i`` to its position in
      ``flat_indices`` (so hashes are applied to unique indices only and
      then gathered).
    - ``rows[i]`` is the record that bit ``i`` belongs to.
    """

    rows: np.ndarray
    gather: np.ndarray
    flat_indices: np.ndarray
    n_values: int
    n_unique: int

    @property
    def hit_rate(self) -> float:
        """Fraction of values served from the interning table."""
        if self.n_values == 0:
            return 0.0
        return 1.0 - self.n_unique / self.n_values


def intern_column(values: Sequence[str], scheme: QGramScheme) -> InternedColumn:
    """Intern an attribute column: tokenise unique values once, then scatter.

    The q-grams of each distinct value are computed a single time (one
    vectorised :func:`repro.core.qgram.batch_qgram_indices` pass over the
    unique values); the returned gather arrays expand the unique-value
    results back to one entry per (record, emitted bit).
    """
    n = len(values)
    unique_ids: dict[str, int] = {}
    inverse = np.empty(n, dtype=np.int64)
    for i, value in enumerate(values):
        uid = unique_ids.setdefault(value, len(unique_ids))
        inverse[i] = uid
    flat, counts = batch_qgram_indices(
        list(unique_ids), scheme.q, scheme.alphabet, scheme.padded, scheme.pad_char
    )
    starts = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)))[:-1]
    rec_counts = counts[inverse]
    total = int(rec_counts.sum())
    rows = np.repeat(np.arange(n, dtype=np.int64), rec_counts)
    rec_offsets = np.cumsum(rec_counts) - rec_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(rec_offsets, rec_counts)
    gather = np.repeat(starts[inverse], rec_counts) + within
    return InternedColumn(
        rows=rows,
        gather=gather,
        flat_indices=flat,
        n_values=n,
        n_unique=len(unique_ids),
    )


@dataclass(frozen=True)
class UniversalHash:
    """A pairwise-independent hash ``g(x) = ((a*x + b) mod P) mod m``."""

    a: int
    b: int
    m: int
    p: int = HASH_PRIME

    def __post_init__(self) -> None:
        if not 0 < self.a < self.p:
            raise ValueError(f"a must be in (0, P), got {self.a}")
        if not 0 < self.b < self.p:
            raise ValueError(f"b must be in (0, P), got {self.b}")
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")

    def __call__(self, x: int) -> int:
        return ((self.a * x + self.b) % self.p) % self.m

    def apply(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over an integer array."""
        xs = np.asarray(xs, dtype=np.int64)
        return ((self.a * xs + self.b) % self.p) % self.m

    @classmethod
    def random(cls, m: int, rng: np.random.Generator, p: int = HASH_PRIME) -> "UniversalHash":
        """Draw ``a, b`` uniformly from ``(0, P)``."""
        a = int(rng.integers(1, p))
        b = int(rng.integers(1, p))
        return cls(a=a, b=b, m=m, p=p)


class CVectorEncoder:
    """Attribute-level encoder from strings to c-vectors in ``{0,1}^m``.

    Parameters
    ----------
    m:
        Width of the compact space for this attribute (``m_opt^(f_i)``).
    scheme:
        The q-gram extraction scheme (q, alphabet, padding).
    hash_fn:
        The attribute's universal hash ``g``; drawn randomly when omitted.
    seed:
        Seed for drawing ``g`` when ``hash_fn`` is omitted.
    """

    def __init__(
        self,
        m: int,
        scheme: QGramScheme | None = None,
        hash_fn: UniversalHash | None = None,
        seed: int | None = None,
    ):
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self.m = m
        self.scheme = scheme or QGramScheme()
        if hash_fn is None:
            hash_fn = UniversalHash.random(m, np.random.default_rng(seed))
        elif hash_fn.m != m:
            raise ValueError(f"hash modulus {hash_fn.m} differs from m={m}")
        self.hash_fn = hash_fn
        self._compact_cache: OrderedDict[str, frozenset[int]] = OrderedDict()

    # -- per-string API -------------------------------------------------------

    def compact_indices(self, value: str) -> frozenset[int]:
        """The set of compact positions ``{g(x) : x in U_s}`` for ``value``.

        Memoised per encoder (bounded LRU) so the streaming insert/query
        path pays the hash evaluation once per distinct value.
        """
        cached = self._compact_cache.get(value)
        if cached is not None:
            self._compact_cache.move_to_end(value)
            return cached
        u_s = self.scheme.index_set(value)
        out = frozenset(self.hash_fn(x) for x in u_s)
        self._compact_cache[value] = out
        if len(self._compact_cache) > COMPACT_CACHE_SIZE:
            self._compact_cache.popitem(last=False)
        return out

    def encode(self, value: str) -> BitVector:
        """The c-vector of ``value`` (Figure 4 of the paper)."""
        return BitVector.from_indices(self.m, self.compact_indices(value))

    def collisions(self, value: str) -> int:
        """Observed collision count for ``value``: ``|U_s| - |g(U_s)|``."""
        u_s = self.scheme.index_set(value)
        return len(u_s) - len({self.hash_fn(x) for x in u_s})

    # -- dataset API --------------------------------------------------------------

    def encode_all(self, values: Sequence[str]) -> BitMatrix:
        """Encode a whole attribute column into one packed :class:`BitMatrix`.

        Interned: each *unique* value is tokenised and hashed once, then the
        per-record bits are recovered by a vectorised gather.
        """
        if not values:
            raise ValueError("values must be non-empty")
        column = intern_column(values, self.scheme)
        if column.flat_indices.size == 0:
            return BitMatrix.zeros(len(values), self.m)
        hashed = self.hash_fn.apply(column.flat_indices)
        return scatter_bits(len(values), self.m, column.rows, hashed[column.gather])

    # -- calibration ---------------------------------------------------------------

    @classmethod
    def calibrated(
        cls,
        sample: Iterable[str],
        scheme: QGramScheme | None = None,
        rho: float = DEFAULT_RHO,
        r: float = DEFAULT_CONFIDENCE_R,
        seed: int | None = None,
    ) -> "CVectorEncoder":
        """Size the compact space from a data sample via Theorem 1.

        ``b^(f_i)`` is measured as the average q-gram count over the sample
        (the paper's Charlie samples strings "randomly and uniformly" to
        compute it), then ``m_opt`` follows from Theorem 1.
        """
        scheme = scheme or QGramScheme()
        counts = [scheme.count(value) for value in sample]
        if not counts:
            raise ValueError("calibration sample must be non-empty")
        b = sum(counts) / len(counts)
        if b <= 0:
            raise ValueError("calibration sample produced no q-grams")
        m_opt = optimal_cvector_size(b, rho, r)
        encoder = cls(m_opt, scheme=scheme, seed=seed)
        encoder.b = b  # type: ignore[attr-defined]  # diagnostic: measured b^(f_i)
        return encoder

    def __repr__(self) -> str:
        return f"CVectorEncoder(m={self.m}, q={self.scheme.q}, padded={self.scheme.padded})"
