"""Serialising calibrated encoders and whole index snapshots.

A record encoder is defined by small integers — per-attribute widths and
the universal-hash coefficients ``(a, b)`` — plus the q-gram scheme.  In
the three-party workflow every custodian must embed with *bit-identical*
encoders, and a production deployment wants to calibrate once and reuse
forever; both need the encoder to round-trip through a file.

The encoder format is plain JSON, versioned, with nothing executable in
it.  On top of it sits the **index snapshot bundle** (see
``docs/serving.md``): a directory holding the encoder JSON sidecar plus
``.npy`` payloads for the packed ``BitMatrix`` words and every blocking
group's sorted bucket-key / id / run-boundary arrays.  Snapshots
round-trip bit-identically and load zero-copy via
``numpy.load(..., mmap_mode="r")`` — no re-hashing, no re-sorting — so a
reference dataset can be indexed once and served forever
(:mod:`repro.serve`).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.cvector import CVectorEncoder, UniversalHash
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.lsh import BlockingGroup, HammingLSH
from repro.text.alphabet import Alphabet

FORMAT_VERSION = 1

#: Version of the on-disk index snapshot bundle (see docs/serving.md).
SNAPSHOT_FORMAT_VERSION = 1

#: File names inside a snapshot bundle directory.
MANIFEST_NAME = "manifest.json"
ENCODER_NAME = "encoder.json"
_PAYLOADS = ("words.npy", "keys.npy", "ids.npy", "bounds.npy")


class SnapshotError(ValueError):
    """A snapshot bundle is unreadable, corrupt, or from another build.

    Raised on a format-version mismatch, a truncated / reshaped payload,
    a manifest that does not describe its arrays, or an encoder sidecar
    whose fingerprint differs from the one recorded at save time —
    anything where proceeding would silently produce garbage candidates.
    """


def scheme_to_dict(scheme: QGramScheme) -> dict[str, Any]:
    return {
        "q": scheme.q,
        "alphabet": scheme.alphabet.chars,
        "padded": scheme.padded,
        "pad_char": scheme.pad_char,
    }


def scheme_from_dict(data: dict[str, Any]) -> QGramScheme:
    return QGramScheme(
        q=int(data["q"]),
        alphabet=Alphabet(data["alphabet"]),
        padded=bool(data["padded"]),
        pad_char=data["pad_char"],
    )


def encoder_to_dict(encoder: RecordEncoder) -> dict[str, Any]:
    """A JSON-safe description of a calibrated record encoder."""
    return {
        "format_version": FORMAT_VERSION,
        "attributes": [
            {
                "name": layout.name,
                "m": attribute.m,
                "hash_a": attribute.hash_fn.a,
                "hash_b": attribute.hash_fn.b,
                "hash_p": attribute.hash_fn.p,
                "scheme": scheme_to_dict(attribute.scheme),
            }
            for layout, attribute in zip(encoder.layouts, encoder.encoders)
        ],
    }


def encoder_from_dict(data: dict[str, Any]) -> RecordEncoder:
    """Rebuild a record encoder from :func:`encoder_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported encoder format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    attributes = data.get("attributes") or []
    if not attributes:
        raise ValueError("encoder description has no attributes")
    encoders = []
    names = []
    for attr in attributes:
        names.append(attr["name"])
        encoders.append(
            CVectorEncoder(
                int(attr["m"]),
                scheme=scheme_from_dict(attr["scheme"]),
                hash_fn=UniversalHash(
                    a=int(attr["hash_a"]),
                    b=int(attr["hash_b"]),
                    m=int(attr["m"]),
                    p=int(attr["hash_p"]),
                ),
            )
        )
    return RecordEncoder(encoders, names=names)


def save_encoder(encoder: RecordEncoder, path: str | Path) -> None:
    """Write the encoder as JSON.

    >>> import tempfile, os
    >>> enc = RecordEncoder([CVectorEncoder(15, seed=1)], names=['f1'])
    >>> with tempfile.TemporaryDirectory() as d:
    ...     save_encoder(enc, os.path.join(d, 'enc.json'))
    ...     loaded = load_encoder(os.path.join(d, 'enc.json'))
    >>> loaded.encode(('JONES',)) == enc.encode(('JONES',))
    True
    """
    path = Path(path)
    path.write_text(json.dumps(encoder_to_dict(encoder), indent=2), encoding="utf-8")


def load_encoder(path: str | Path) -> RecordEncoder:
    """Read an encoder previously written by :func:`save_encoder`."""
    return encoder_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# -- index snapshot bundles ------------------------------------------------------


def _canonical_json(data: dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def encoder_fingerprint(encoder: RecordEncoder) -> str:
    """SHA-256 over the canonical JSON of :func:`encoder_to_dict`.

    Recorded in the snapshot manifest and re-checked on load, so an
    edited or swapped encoder sidecar cannot be paired with an index it
    did not build.
    """
    return _dict_fingerprint(encoder_to_dict(encoder))


def _dict_fingerprint(data: dict[str, Any]) -> str:
    return hashlib.sha256(_canonical_json(data).encode("utf-8")).hexdigest()


def _fsync_dir(path: Path) -> None:
    """fsync a directory so renames inside it survive a crash (best effort)."""
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:  # platform without directory fds (e.g. Windows)
        return
    fd = os.open(path, os.O_RDONLY | flag)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_file(path: Path) -> None:
    """Flush one already-written file's contents to stable storage."""
    with open(path, "rb") as handle:
        os.fsync(handle.fileno())


def write_dir_atomic(path: str | Path, write: Any) -> Path:
    """Build a directory under a temp name, then publish it atomically.

    ``write(tmp_dir)`` populates a fresh temp directory next to the
    final ``path``; on success the temp directory is renamed into place,
    so a process killed at any point leaves either the old state or the
    new one — never a half-written directory that only fails at load
    time.  An existing ``path`` is retired (renamed aside, then removed)
    rather than overwritten in place.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=out.parent, prefix=f".{out.name}.tmp-"))
    try:
        write(tmp)
        _fsync_dir(tmp)
        if out.exists():
            retired = Path(
                tempfile.mkdtemp(dir=out.parent, prefix=f".{out.name}.old-")
            )
            os.rmdir(retired)
            os.rename(out, retired)
            os.rename(tmp, out)
            shutil.rmtree(retired, ignore_errors=True)
        else:
            os.rename(tmp, out)
        _fsync_dir(out.parent)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return out


def _keys_to_storage(keys: np.ndarray) -> np.ndarray:
    """Blocking keys in their storable form (void byte rows -> uint8 matrix)."""
    if keys.dtype == np.uint64:
        return keys
    return np.ascontiguousarray(keys).view(np.uint8).reshape(keys.size, keys.itemsize)


def _keys_from_storage(stored: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_keys_to_storage` (zero-copy view)."""
    if stored.ndim == 1:
        return stored
    void_dtype = np.dtype([("", np.uint8)] * stored.shape[1])
    return stored.view(void_dtype).ravel()


@dataclass
class IndexSnapshot:
    """A loaded (typically memory-mapped) persistent HB index.

    ``matrix`` wraps the snapshot's packed words — read-only when loaded
    with a mmap mode — and ``lsh`` is the fully indexed blocking
    structure, its bucket arrays viewing the same mapped payloads.  A
    ``path`` of ``None`` marks an in-memory index that was never
    persisted (built directly by :meth:`repro.serve.QueryEngine.build`).
    """

    encoder: RecordEncoder
    matrix: BitMatrix
    lsh: HammingLSH
    threshold: int | None
    path: Path | None = None
    manifest: dict[str, Any] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return self.matrix.n_rows


def save_index_snapshot(
    path: str | Path,
    encoder: RecordEncoder,
    matrix: BitMatrix,
    lsh: HammingLSH,
    threshold: int | None = None,
) -> Path:
    """Write a versioned index snapshot bundle into directory ``path``.

    ``matrix`` must be the matrix ``lsh`` was indexed with (dataset A's
    record-level embedding under ``encoder``).  Each blocking group's
    sorted key / id / boundary arrays are exported (any streaming
    overlay is compacted *now*, so loading never sorts) and concatenated
    into one payload per kind, with per-table offsets in the manifest.

    The bundle is written under a temporary sibling name and renamed
    into place once complete (payloads fsync'd first), so a killed save
    never leaves a half-written bundle behind: ``path`` holds either the
    previous bundle or the new one.

    Returns the bundle directory.
    """
    if matrix.n_bits != lsh.n_bits:
        raise ValueError(f"width mismatch: matrix {matrix.n_bits} vs LSH {lsh.n_bits}")
    if encoder.total_bits != lsh.n_bits:
        raise ValueError(
            f"width mismatch: encoder {encoder.total_bits} vs LSH {lsh.n_bits}"
        )

    key_parts: list[np.ndarray] = []
    id_parts: list[np.ndarray] = []
    bound_parts: list[np.ndarray] = []
    table_offsets = [0]
    bound_offsets = [0]
    positions: list[list[int]] = []
    for group in lsh.groups:
        keys, ids, bounds = group.export_arrays()
        key_parts.append(_keys_to_storage(keys))
        id_parts.append(ids)
        bound_parts.append(bounds.astype(np.int64, copy=False))
        table_offsets.append(table_offsets[-1] + int(ids.size))
        bound_offsets.append(bound_offsets[-1] + int(bounds.size))
        positions.append([int(p) for p in group.composite.positions])

    words = matrix.words
    all_keys = np.concatenate(key_parts)
    all_ids = np.concatenate(id_parts)
    all_bounds = np.concatenate(bound_parts)
    payloads = {
        "words.npy": words,
        "keys.npy": all_keys,
        "ids.npy": all_ids,
        "bounds.npy": all_bounds,
    }
    manifest: dict[str, Any] = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "n_rows": matrix.n_rows,
        "n_bits": lsh.n_bits,
        "k": lsh.k,
        "n_tables": lsh.n_tables,
        "threshold": lsh.threshold if threshold is None else threshold,
        "delta": lsh.delta,
        "max_chunk_pairs": lsh.max_chunk_pairs,
        "key_repr": "uint64" if all_keys.dtype == np.uint64 else "packed-bytes",
        "positions": positions,
        "table_offsets": table_offsets,
        "bound_offsets": bound_offsets,
        "encoder_sha256": encoder_fingerprint(encoder),
        "payloads": {
            name: {
                "shape": list(array.shape),
                "dtype": str(array.dtype),
                "nbytes": int(array.nbytes),
            }
            for name, array in payloads.items()
        },
    }
    def _write(tmp: Path) -> None:
        for name, array in payloads.items():
            np.save(tmp / name, array, allow_pickle=False)
            fsync_file(tmp / name)
        (tmp / ENCODER_NAME).write_text(
            json.dumps(encoder_to_dict(encoder), indent=2), encoding="utf-8"
        )
        fsync_file(tmp / ENCODER_NAME)
        (tmp / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        fsync_file(tmp / MANIFEST_NAME)

    return write_dir_atomic(path, _write)


def _load_payload(
    bundle: Path, name: str, spec: dict[str, Any], mmap_mode: str | None
) -> np.ndarray:
    file = bundle / name
    if not file.is_file():
        raise SnapshotError(f"snapshot payload {name} missing from {bundle}")
    try:
        array = np.load(file, mmap_mode=mmap_mode, allow_pickle=False)
    except (ValueError, OSError) as exc:
        raise SnapshotError(f"snapshot payload {name} unreadable: {exc}") from exc
    if list(array.shape) != list(spec.get("shape", [])) or str(array.dtype) != spec.get(
        "dtype"
    ):
        raise SnapshotError(
            f"snapshot payload {name} is {array.dtype}{array.shape}, manifest "
            f"promises {spec.get('dtype')}{tuple(spec.get('shape', []))} — "
            "truncated or tampered bundle"
        )
    return np.asarray(array) if mmap_mode is None else array


def _offsets(manifest: dict[str, Any], field: str, n_tables: int, size: int) -> list[int]:
    offsets = [int(o) for o in manifest.get(field) or []]
    if (
        len(offsets) != n_tables + 1
        or offsets[0] != 0
        or offsets[-1] != size
        or any(lo > hi for lo, hi in zip(offsets, offsets[1:]))
    ):
        raise SnapshotError(f"snapshot manifest field {field!r} is inconsistent")
    return offsets


def load_index_snapshot(path: str | Path, mmap_mode: str | None = "r") -> IndexSnapshot:
    """Load a snapshot bundle written by :func:`save_index_snapshot`.

    With the default ``mmap_mode="r"`` every payload is memory-mapped
    read-only: the packed matrix words and each table's key / id /
    boundary arrays are views into the page cache — nothing is hashed,
    sorted or copied.  ``mmap_mode=None`` reads the payloads into
    process memory instead (for workloads that will fault every page
    anyway).

    Raises :class:`SnapshotError` on any version, integrity or
    consistency problem.
    """
    bundle = Path(path)
    manifest_file = bundle / MANIFEST_NAME
    if not manifest_file.is_file():
        raise SnapshotError(f"no snapshot manifest at {manifest_file}")
    try:
        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot manifest is not valid JSON: {exc}") from exc
    if manifest.get("kind") == "sharded":
        raise SnapshotError(
            f"bundle at {bundle} is a sharded index root; open it with "
            "repro.core.shards.ShardedIndex (or "
            "repro.serve.ShardedQueryEngine) instead of the single-shard "
            "loader"
        )
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version {version!r} "
            f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    payload_specs = manifest.get("payloads") or {}
    if set(payload_specs) != set(_PAYLOADS):
        raise SnapshotError(
            f"snapshot manifest names payloads {sorted(payload_specs)}, "
            f"expected {sorted(_PAYLOADS)}"
        )

    encoder_file = bundle / ENCODER_NAME
    if not encoder_file.is_file():
        raise SnapshotError(f"snapshot encoder sidecar missing at {encoder_file}")
    try:
        encoder_data = json.loads(encoder_file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot encoder sidecar is not valid JSON: {exc}") from exc
    fingerprint = _dict_fingerprint(encoder_data)
    if fingerprint != manifest.get("encoder_sha256"):
        raise SnapshotError(
            "encoder fingerprint mismatch: the sidecar does not match the "
            "encoder this index was built with"
        )
    try:
        encoder = encoder_from_dict(encoder_data)
    except ValueError as exc:
        raise SnapshotError(f"snapshot encoder unreadable: {exc}") from exc

    arrays = {
        name: _load_payload(bundle, name, payload_specs[name], mmap_mode)
        for name in _PAYLOADS
    }
    n_bits = int(manifest.get("n_bits", 0))
    n_rows = int(manifest.get("n_rows", -1))
    k = int(manifest.get("k", 0))
    n_tables = int(manifest.get("n_tables", 0))
    if encoder.total_bits != n_bits:
        raise SnapshotError(
            f"encoder width {encoder.total_bits} does not match snapshot "
            f"width {n_bits}"
        )
    words = arrays["words.npy"]
    if words.ndim != 2 or words.shape[0] != n_rows or words.shape[1] != (n_bits + 63) // 64:
        raise SnapshotError(
            f"snapshot words have shape {words.shape}, inconsistent with "
            f"{n_rows} rows of {n_bits} bits"
        )
    raw_threshold = manifest.get("threshold")
    raw_budget = manifest.get("max_chunk_pairs")
    positions = manifest.get("positions") or []
    if len(positions) != n_tables:
        raise SnapshotError(
            f"snapshot manifest lists {len(positions)} position tuples for "
            f"{n_tables} tables"
        )
    try:
        lsh = HammingLSH.from_state(
            n_bits=n_bits,
            k=k,
            positions=positions,
            threshold=None if raw_threshold is None else int(raw_threshold),
            delta=float(manifest.get("delta", 0.1)),
            max_chunk_pairs=None if raw_budget is None else int(raw_budget),
        )
    except ValueError as exc:
        raise SnapshotError(f"snapshot index parameters invalid: {exc}") from exc

    keys = _keys_from_storage(arrays["keys.npy"])
    ids = arrays["ids.npy"]
    bounds = arrays["bounds.npy"]
    table_offsets = _offsets(manifest, "table_offsets", n_tables, int(keys.size))
    bound_offsets = _offsets(manifest, "bound_offsets", n_tables, int(bounds.size))
    groups = []
    for table, group in enumerate(lsh.groups):
        lo, hi = table_offsets[table], table_offsets[table + 1]
        b_lo, b_hi = bound_offsets[table], bound_offsets[table + 1]
        groups.append(
            BlockingGroup.from_arrays(
                group.composite, keys[lo:hi], ids[lo:hi], bounds[b_lo:b_hi]
            )
        )
    lsh.groups = groups
    matrix = BitMatrix(words, n_bits)
    return IndexSnapshot(
        encoder=encoder,
        matrix=matrix,
        lsh=lsh,
        threshold=None if raw_threshold is None else int(raw_threshold),
        path=bundle,
        manifest=manifest,
    )
