"""Serialising calibrated encoders (deploy the same embedding everywhere).

A record encoder is defined by small integers — per-attribute widths and
the universal-hash coefficients ``(a, b)`` — plus the q-gram scheme.  In
the three-party workflow every custodian must embed with *bit-identical*
encoders, and a production deployment wants to calibrate once and reuse
forever; both need the encoder to round-trip through a file.

The format is plain JSON, versioned, with nothing executable in it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.cvector import CVectorEncoder, UniversalHash
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.text.alphabet import Alphabet

FORMAT_VERSION = 1


def scheme_to_dict(scheme: QGramScheme) -> dict[str, Any]:
    return {
        "q": scheme.q,
        "alphabet": scheme.alphabet.chars,
        "padded": scheme.padded,
        "pad_char": scheme.pad_char,
    }


def scheme_from_dict(data: dict[str, Any]) -> QGramScheme:
    return QGramScheme(
        q=int(data["q"]),
        alphabet=Alphabet(data["alphabet"]),
        padded=bool(data["padded"]),
        pad_char=data["pad_char"],
    )


def encoder_to_dict(encoder: RecordEncoder) -> dict[str, Any]:
    """A JSON-safe description of a calibrated record encoder."""
    return {
        "format_version": FORMAT_VERSION,
        "attributes": [
            {
                "name": layout.name,
                "m": attribute.m,
                "hash_a": attribute.hash_fn.a,
                "hash_b": attribute.hash_fn.b,
                "hash_p": attribute.hash_fn.p,
                "scheme": scheme_to_dict(attribute.scheme),
            }
            for layout, attribute in zip(encoder.layouts, encoder.encoders)
        ],
    }


def encoder_from_dict(data: dict[str, Any]) -> RecordEncoder:
    """Rebuild a record encoder from :func:`encoder_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported encoder format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    attributes = data.get("attributes") or []
    if not attributes:
        raise ValueError("encoder description has no attributes")
    encoders = []
    names = []
    for attr in attributes:
        names.append(attr["name"])
        encoders.append(
            CVectorEncoder(
                int(attr["m"]),
                scheme=scheme_from_dict(attr["scheme"]),
                hash_fn=UniversalHash(
                    a=int(attr["hash_a"]),
                    b=int(attr["hash_b"]),
                    m=int(attr["m"]),
                    p=int(attr["hash_p"]),
                ),
            )
        )
    return RecordEncoder(encoders, names=names)


def save_encoder(encoder: RecordEncoder, path: str | Path) -> None:
    """Write the encoder as JSON.

    >>> import tempfile, os
    >>> enc = RecordEncoder([CVectorEncoder(15, seed=1)], names=['f1'])
    >>> with tempfile.TemporaryDirectory() as d:
    ...     save_encoder(enc, os.path.join(d, 'enc.json'))
    ...     loaded = load_encoder(os.path.join(d, 'enc.json'))
    >>> loaded.encode(('JONES',)) == enc.encode(('JONES',))
    True
    """
    path = Path(path)
    path.write_text(json.dumps(encoder_to_dict(encoder), indent=2), encoding="utf-8")


def load_encoder(path: str | Path) -> RecordEncoder:
    """Read an encoder previously written by :func:`save_encoder`."""
    return encoder_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
