"""Choosing K empirically (Section 4.2, following Karapiperis & Verykios [16]).

Equation (2) guarantees completeness for *any* K by adjusting L, so K is a
pure efficiency knob: too small and the buckets are overpopulated by
dissimilar pairs, too large and building the extra blocking groups
dominates.  The paper's reference [16] picks K "by sampling record pairs
and by experimenting with several values for K, choosing the value that
minimizes the estimated running time" — implemented here verbatim: run
the blocking/matching pipeline on a sample per candidate K, fit the
per-table and per-candidate costs, and extrapolate to the full dataset
size.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.lsh import HammingLSH
from repro.hamming.theory import hamming_lsh_parameters


@dataclass(frozen=True)
class KCandidate:
    """Measurements for one candidate K on the sample."""

    k: int
    n_tables: int
    sample_seconds: float
    sample_candidates: int
    estimated_seconds: float


@dataclass(frozen=True)
class KSelection:
    """The outcome of the empirical K search."""

    best_k: int
    candidates: tuple[KCandidate, ...]

    def by_k(self, k: int) -> KCandidate:
        for candidate in self.candidates:
            if candidate.k == k:
                return candidate
        raise KeyError(f"K = {k} was not among the evaluated candidates")


def _sample_rows(matrix: BitMatrix, n: int, rng: np.random.Generator) -> BitMatrix:
    if matrix.n_rows <= n:
        return matrix
    picks = np.sort(rng.choice(matrix.n_rows, size=n, replace=False))
    return BitMatrix(matrix.words[picks].copy(), matrix.n_bits)


def measure_k(
    sample_a: BitMatrix,
    sample_b: BitMatrix,
    k: int,
    threshold: int,
    delta: float = 0.1,
    seed: int | None = None,
) -> tuple[float, int, int]:
    """Wall-clock, candidate count and L of one blocking/matching run."""
    start = time.perf_counter()
    lsh = HammingLSH(
        n_bits=sample_a.n_bits, k=k, threshold=threshold, delta=delta, seed=seed
    )
    lsh.index(sample_a)
    rows_a, __ = lsh.candidate_pairs(sample_b)
    if rows_a.size:
        lsh.match(sample_a, sample_b)
    return time.perf_counter() - start, int(rows_a.size), lsh.n_tables


def choose_k(
    matrix_a: BitMatrix,
    matrix_b: BitMatrix,
    threshold: int,
    k_values: Sequence[int] = (10, 15, 20, 25, 30, 35, 40),
    sample_size: int = 500,
    delta: float = 0.1,
    seed: int | None = None,
) -> KSelection:
    """Pick the K that minimises estimated full-dataset running time.

    The estimate scales the sample measurements to the full sizes: table
    construction and probing scale with ``L * n``, candidate verification
    scales with the candidate count, which for LSH buckets grows roughly
    with ``(n_a * n_b) / sample_pairs`` times the sample's candidate count.
    """
    if not k_values:
        raise ValueError("k_values must be non-empty")
    if threshold >= matrix_a.n_bits:
        raise ValueError(
            f"threshold {threshold} must be below the vector width {matrix_a.n_bits}"
        )
    rng = np.random.default_rng(seed)
    sample_a = _sample_rows(matrix_a, sample_size, rng)
    sample_b = _sample_rows(matrix_b, sample_size, rng)
    pair_scale = (matrix_a.n_rows * matrix_b.n_rows) / (
        sample_a.n_rows * sample_b.n_rows
    )

    candidates = []
    for k in k_values:
        elapsed, n_candidates, n_tables = measure_k(
            sample_a, sample_b, k, threshold, delta, seed
        )
        # Split the sample cost into a per-table-row part and a
        # per-candidate part, then rescale each to the full problem.
        __, tables = hamming_lsh_parameters(threshold, matrix_a.n_bits, k, delta)
        total_work = n_tables * (sample_a.n_rows + sample_b.n_rows) + n_candidates
        per_unit = elapsed / max(total_work, 1)
        estimated = per_unit * (
            tables * (matrix_a.n_rows + matrix_b.n_rows) + n_candidates * pair_scale
        )
        candidates.append(
            KCandidate(
                k=k,
                n_tables=tables,
                sample_seconds=elapsed,
                sample_candidates=n_candidates,
                estimated_seconds=estimated,
            )
        )
    best = min(candidates, key=lambda c: c.estimated_seconds)
    return KSelection(best_k=best.k, candidates=tuple(candidates))
