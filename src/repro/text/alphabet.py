"""Alphabets for q-gram index computation.

The paper (Section 4.1) assumes the alphabet ``S`` of q-gram characters is
the set of upper-case letters, giving a q-gram vector of ``|S|^q = 26^q``
positions.  Footnote 4 additionally pads strings with ``'_'`` so that the
first and last character each participate in two bigrams; padded q-grams
need the padding character to be part of the alphabet.

An :class:`Alphabet` is an ordered set of characters with a zero-based
``ord``-style lookup, exactly the ``ord(.)`` function used by Algorithm 1.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field


class AlphabetError(ValueError):
    """Raised when a character is not part of an alphabet."""


@dataclass(frozen=True)
class Alphabet:
    """An ordered character set with a zero-based index per character.

    Parameters
    ----------
    chars:
        The characters of the alphabet, in index order.  Must be unique.

    Examples
    --------
    >>> abc = Alphabet.uppercase()
    >>> abc.index('J'), abc.index('O')
    (9, 14)
    >>> len(abc)
    26
    """

    chars: str
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.chars)) != len(self.chars):
            raise AlphabetError(f"alphabet contains duplicate characters: {self.chars!r}")
        if not self.chars:
            raise AlphabetError("alphabet must not be empty")
        object.__setattr__(self, "_index", {ch: i for i, ch in enumerate(self.chars)})

    def __len__(self) -> int:
        return len(self.chars)

    def __contains__(self, ch: str) -> bool:
        return ch in self._index

    def index(self, ch: str) -> int:
        """Return the zero-based order of ``ch`` in this alphabet.

        This is the ``ord(.)`` function of the paper's Algorithm 1.
        """
        try:
            return self._index[ch]
        except KeyError:
            raise AlphabetError(f"character {ch!r} is not in alphabet {self.chars!r}") from None

    def char(self, index: int) -> str:
        """Return the character at ``index`` (inverse of :meth:`index`)."""
        if not 0 <= index < len(self.chars):
            raise AlphabetError(f"index {index} out of range for alphabet of size {len(self)}")
        return self.chars[index]

    def qgram_space_size(self, q: int) -> int:
        """Size ``|S|^q`` of the q-gram vector over this alphabet."""
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        return len(self) ** q

    @classmethod
    def uppercase(cls) -> "Alphabet":
        """The paper's default alphabet: the 26 upper-case letters."""
        return cls(string.ascii_uppercase)

    @classmethod
    def uppercase_padded(cls, pad: str = "_") -> "Alphabet":
        """Upper-case letters plus a padding character (for padded q-grams)."""
        return cls(string.ascii_uppercase + pad)

    @classmethod
    def alphanumeric(cls) -> "Alphabet":
        """Upper-case letters, digits, space and padding.

        Suitable for address / title attributes whose values contain digits
        and blanks (e.g. ``'12 MAIN ST'``).
        """
        return cls(string.ascii_uppercase + string.digits + " _")


#: Default alphabet used throughout the package (Section 4.1 of the paper).
DEFAULT_ALPHABET = Alphabet.uppercase()

#: Alphabet covering letters, digits, blanks and the padding character.
TEXT_ALPHABET = Alphabet.alphanumeric()

#: The padding character used by footnote 4 of the paper.
PAD_CHAR = "_"
