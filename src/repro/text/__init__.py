"""String substrate: alphabets, normalisation and metrics on the original space E."""

from repro.text.alphabet import (
    Alphabet,
    AlphabetError,
    DEFAULT_ALPHABET,
    PAD_CHAR,
    TEXT_ALPHABET,
)
from repro.text.edit_distance import (
    damerau_levenshtein,
    levenshtein,
    levenshtein_within,
    matches_within,
)
from repro.text.jaro import jaro, jaro_winkler, jaro_winkler_distance
from repro.text.normalize import normalize, pad, strip_accents

__all__ = [
    "Alphabet",
    "AlphabetError",
    "DEFAULT_ALPHABET",
    "PAD_CHAR",
    "TEXT_ALPHABET",
    "damerau_levenshtein",
    "levenshtein",
    "levenshtein_within",
    "matches_within",
    "jaro",
    "jaro_winkler",
    "jaro_winkler_distance",
    "normalize",
    "pad",
    "strip_accents",
]
