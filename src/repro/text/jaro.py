"""Jaro and Jaro-Winkler similarity.

Section 7 of the paper names a distance-preserving embedding for the
Jaro-Winkler metric as future work.  This module supplies the metric itself
so the extension experiments can compare threshold calibration between the
edit-distance-driven Hamming embedding and Jaro-Winkler scoring.
"""

from __future__ import annotations


def jaro(s1: str, s2: str) -> float:
    """Jaro similarity in ``[0, 1]`` (1 = identical).

    >>> jaro('MARTHA', 'MARHTA')  # doctest: +ELLIPSIS
    0.944...
    >>> jaro('ABC', 'ABC')
    1.0
    >>> jaro('ABC', 'XYZ')
    0.0
    """
    if s1 == s2:
        return 1.0
    n, m = len(s1), len(s2)
    if n == 0 or m == 0:
        return 0.0

    window = max(n, m) // 2 - 1
    if window < 0:
        window = 0

    s1_matched = [False] * n
    s2_matched = [False] * m
    matches = 0
    for i, c1 in enumerate(s1):
        lo = max(0, i - window)
        hi = min(m, i + window + 1)
        for j in range(lo, hi):
            if not s2_matched[j] and s2[j] == c1:
                s1_matched[i] = True
                s2_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions among the matched characters, in order.
    transpositions = 0
    j = 0
    for i in range(n):
        if s1_matched[i]:
            while not s2_matched[j]:
                j += 1
            if s1[i] != s2[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    return (
        matches / n + matches / m + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(s1: str, s2: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus.

    >>> jaro_winkler('MARTHA', 'MARHTA')  # doctest: +ELLIPSIS
    0.96...
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    base = jaro(s1, s2)
    prefix = 0
    for c1, c2 in zip(s1, s2):
        if c1 != c2 or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def jaro_winkler_distance(s1: str, s2: str) -> float:
    """``1 - jaro_winkler(s1, s2)``, a distance in ``[0, 1]``."""
    return 1.0 - jaro_winkler(s1, s2)
