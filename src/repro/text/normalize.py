"""String normalisation for the original space E.

Record linkage operates on messy attribute values.  Before a string enters
the q-gram machinery it is normalised: upper-cased, stripped, and restricted
to the characters of the target alphabet.  Characters outside the alphabet
are either dropped or replaced, depending on the chosen policy.
"""

from __future__ import annotations

import unicodedata
from typing import Literal

from repro.text.alphabet import Alphabet, DEFAULT_ALPHABET, PAD_CHAR

UnknownPolicy = Literal["drop", "replace", "error"]


def strip_accents(value: str) -> str:
    """Decompose accented characters and drop their combining marks.

    >>> strip_accents('Müller')
    'Muller'
    """
    decomposed = unicodedata.normalize("NFKD", value)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize(
    value: str,
    alphabet: Alphabet = DEFAULT_ALPHABET,
    unknown: UnknownPolicy = "drop",
    replacement: str = "",
    collapse_spaces: bool = True,
) -> str:
    """Normalise ``value`` into the character set of ``alphabet``.

    The steps are: accent stripping, upper-casing, whitespace collapsing and
    finally filtering against ``alphabet``.

    Parameters
    ----------
    value:
        The raw attribute value.
    alphabet:
        The target alphabet; characters outside it trigger ``unknown``.
    unknown:
        ``'drop'`` removes unknown characters, ``'replace'`` substitutes
        ``replacement`` for each of them, ``'error'`` raises ``ValueError``.
    replacement:
        Replacement text used by the ``'replace'`` policy.
    collapse_spaces:
        Collapse runs of whitespace into single spaces and strip the ends.

    Examples
    --------
    >>> normalize('  jönes, jr. ')
    'JONESJR'
    """
    text = strip_accents(value).upper()
    if collapse_spaces:
        text = " ".join(text.split())
    out: list[str] = []
    for ch in text:
        if ch in alphabet:
            out.append(ch)
        elif unknown == "drop":
            continue
        elif unknown == "replace":
            out.append(replacement)
        else:
            raise ValueError(f"character {ch!r} not in alphabet while normalising {value!r}")
    return "".join(out)


def pad(value: str, q: int, pad_char: str = PAD_CHAR) -> str:
    """Pad ``value`` with ``q - 1`` pad characters on each side.

    Footnote 4 of the paper pads strings (``'_JONES_'`` for bigrams) so that
    the first and last characters each appear in ``q`` q-grams.

    >>> pad('JONES', 2)
    '_JONES_'
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if len(pad_char) != 1:
        raise ValueError("pad_char must be a single character")
    wings = pad_char * (q - 1)
    return f"{wings}{value}{wings}" if value else value
