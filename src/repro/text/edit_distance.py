"""Edit distance metrics on the original space E.

The paper uses the Levenshtein distance [20] — the minimum number of
substitute / insert / delete operations transforming one string into the
other — as the metric ``d_E`` that defines similar record pairs
(Definition 1).  Ground-truth classification in the evaluation harness and
the StringMap baseline both rely on this module.

Two implementations are provided:

* :func:`levenshtein` — the classic two-row dynamic program, O(|s1|·|s2|).
* :func:`levenshtein_within` — a banded variant that only fills a diagonal
  band of width ``2·limit + 1`` and exits early once the distance provably
  exceeds ``limit``; O(limit · min(|s1|, |s2|)).  This is what a matching
  rule ``u_E <= threshold`` actually needs.
"""

from __future__ import annotations


def levenshtein(s1: str, s2: str) -> int:
    """Levenshtein distance between ``s1`` and ``s2``.

    >>> levenshtein('JONES', 'JONAS')
    1
    >>> levenshtein('JONES', 'JONS')
    1
    >>> levenshtein('', 'ABC')
    3
    """
    if s1 == s2:
        return 0
    # Keep the shorter string as the row for the smaller working array.
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    if not s2:
        return len(s1)

    previous = list(range(len(s2) + 1))
    for i, c1 in enumerate(s1, start=1):
        current = [i]
        for j, c2 in enumerate(s2, start=1):
            cost = 0 if c1 == c2 else 1
            current.append(
                min(
                    previous[j] + 1,  # delete from s1
                    current[j - 1] + 1,  # insert into s1
                    previous[j - 1] + cost,  # substitute
                )
            )
        previous = current
    return previous[-1]


def levenshtein_within(s1: str, s2: str, limit: int) -> int | None:
    """Levenshtein distance if it is ``<= limit``, else ``None``.

    Uses a banded dynamic program: cells further than ``limit`` from the
    main diagonal can never contribute to a distance within the limit, so
    only a band of width ``2·limit + 1`` is evaluated, with an early exit
    when every cell of a row exceeds the limit.

    >>> levenshtein_within('JONES', 'JONAS', 1)
    1
    >>> levenshtein_within('JONES', 'SMITH', 2) is None
    True
    """
    if limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")
    if s1 == s2:
        return 0
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    n, m = len(s1), len(s2)
    if n - m > limit:
        return None
    if m == 0:
        return n if n <= limit else None

    big = limit + 1
    previous = [j if j <= limit else big for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - limit)
        hi = min(m, i + limit)
        current = [i if i <= limit else big] + [big] * m
        c1 = s1[i - 1]
        row_min = current[0] if lo == 1 else big
        for j in range(lo, hi + 1):
            cost = 0 if c1 == s2[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            current[j] = best if best <= limit else big
            if current[j] < row_min:
                row_min = current[j]
        if row_min > limit:
            return None
        previous = current
    return previous[m] if previous[m] <= limit else None


def matches_within(s1: str, s2: str, limit: int) -> bool:
    """``True`` iff ``levenshtein(s1, s2) <= limit`` (banded, early exit)."""
    return levenshtein_within(s1, s2, limit) is not None


def damerau_levenshtein(s1: str, s2: str) -> int:
    """Damerau-Levenshtein distance (adds adjacent transpositions).

    The paper only uses the basic Levenshtein operations, but transposition
    errors are common in real names; this variant supports the extension
    experiments on non-standard perturbations.

    >>> damerau_levenshtein('JONES', 'JONSE')
    1
    """
    if s1 == s2:
        return 0
    n, m = len(s1), len(s2)
    if n == 0:
        return m
    if m == 0:
        return n

    prev2: list[int] | None = None
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        current = [i] + [0] * m
        for j in range(1, m + 1):
            cost = 0 if s1[i - 1] == s2[j - 1] else 1
            best = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            if (
                prev2 is not None
                and i > 1
                and j > 1
                and s1[i - 1] == s2[j - 2]
                and s1[i - 2] == s2[j - 1]
            ):
                best = min(best, prev2[j - 2] + 1)
            current[j] = best
        prev2, previous = previous, current
    return previous[m]
