"""Linkage problem construction: datasets A and B with ground truth.

Following the paper's prototype (Section 6): dataset A holds ``n``
generated records; each record of A is chosen with probability
``match_probability`` (0.5 in the paper) to be perturbed under the active
scheme and placed in B; B is then filled with fresh, unrelated records
until it also holds ``n`` records.  The set of truly matching pairs ``M``
and the per-pair perturbation logs are retained for evaluation
(Figures 9-12 need PC/PQ/RR; Figure 11 needs the per-operation log).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.data.perturb import AppliedOperation, Operation, PerturbationScheme
from repro.data.schema import Dataset, Record


class DatasetGenerator(Protocol):
    """Structural type for dataset generators (NCVRGenerator, DBLPGenerator)."""

    def generate(
        self, n: int, seed: int | None = None, id_prefix: str = "N"
    ) -> Dataset: ...


@dataclass
class LinkageProblem:
    """Two datasets plus ground truth.

    ``true_matches`` holds (row index in A, row index in B) pairs;
    ``operation_log`` maps each true pair to the perturbation operations
    that produced the B record.
    """

    dataset_a: Dataset
    dataset_b: Dataset
    true_matches: set[tuple[int, int]]
    operation_log: dict[tuple[int, int], tuple[AppliedOperation, ...]] = field(
        default_factory=dict
    )

    @property
    def n_true_matches(self) -> int:
        return len(self.true_matches)

    @property
    def comparison_space(self) -> int:
        """``|A x B|``, the denominator of the Reduction Ratio."""
        return len(self.dataset_a) * len(self.dataset_b)

    def matches_with_operation(self, operation: Operation) -> set[tuple[int, int]]:
        """True pairs whose perturbation used the given operation at least once.

        Figure 11 reports PC separately per operation type.
        """
        return {
            pair
            for pair, log in self.operation_log.items()
            if any(entry.operation is operation for entry in log)
        }


def build_linkage_problem(
    generator: DatasetGenerator,
    n: int,
    scheme: PerturbationScheme,
    match_probability: float = 0.5,
    seed: int | None = None,
) -> LinkageProblem:
    """Generate a full linkage problem from a dataset generator.

    Parameters
    ----------
    generator:
        An object with ``generate(n, seed, id_prefix)`` returning a
        :class:`~repro.data.schema.Dataset` (NCVRGenerator/DBLPGenerator).
    n:
        Number of records in A (and in B).
    scheme:
        The perturbation scheme (PL or PH).
    match_probability:
        Probability that a record of A gets a perturbed twin in B
        (the paper uses 0.5).
    seed:
        Master seed; A-generation, selection, perturbation and B-filler
        generation all derive from it.
    """
    if not 0.0 < match_probability <= 1.0:
        raise ValueError(f"match_probability must be in (0, 1], got {match_probability}")
    seed_seq = np.random.SeedSequence(seed)
    seed_a, seed_sel, seed_fill = seed_seq.spawn(3)

    dataset_a = generator.generate(n, seed=seed_a, id_prefix="A")
    schema = dataset_a.schema

    rng = np.random.default_rng(seed_sel)
    chosen = np.flatnonzero(rng.random(n) < match_probability)

    records_b: list[Record] = []
    true_matches: set[tuple[int, int]] = set()
    operation_log: dict[tuple[int, int], tuple[AppliedOperation, ...]] = {}
    for row_b, row_a in enumerate(chosen):
        source = dataset_a[int(row_a)]
        perturbed, log = scheme.perturb(source, schema, rng, new_id=f"B{row_b}")
        records_b.append(perturbed)
        pair = (int(row_a), row_b)
        true_matches.add(pair)
        operation_log[pair] = log

    n_fill = n - len(records_b)
    if n_fill > 0:
        filler = generator.generate(n_fill, seed=seed_fill, id_prefix="F")
        for i, record in enumerate(filler):
            records_b.append(Record(f"B{len(chosen) + i}", record.values))

    dataset_b = Dataset(schema, records_b, name=f"{dataset_a.name}-B")
    return LinkageProblem(
        dataset_a=dataset_a,
        dataset_b=dataset_b,
        true_matches=true_matches,
        operation_log=operation_log,
    )
