"""CSV input/output for datasets.

Real linkage jobs start from delimited files.  This module reads a CSV
into a :class:`~repro.data.schema.Dataset` (normalising values into each
attribute's alphabet) and writes datasets and match results back out, so
the library is usable on actual data rather than only on the synthetic
generators.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.core.qgram import QGramScheme
from repro.data.schema import AttributeSpec, Dataset, Record, Schema
from repro.text.alphabet import TEXT_ALPHABET


def read_dataset(
    path: str | Path,
    attributes: Sequence[str] | None = None,
    id_column: str | None = None,
    scheme: QGramScheme | None = None,
    name: str = "",
    delimiter: str = ",",
    normalize_values: bool = True,
) -> Dataset:
    """Read a CSV file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    attributes:
        Which columns become linkage attributes (default: every column
        except ``id_column``), in the given order.
    id_column:
        Column holding record identifiers.  Defaults to ``'id'`` when the
        header contains it (the column :func:`write_dataset` emits);
        row numbers are used when no id column exists.
    scheme:
        q-gram scheme shared by all attributes (default: bigrams over
        letters + digits + blank).
    normalize_values:
        Upper-case, strip accents and drop characters outside the scheme's
        alphabet (recommended — the encoders are strict about alphabets).
    """
    path = Path(path)
    scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ValueError(f"{path} has no header row")
        header = list(reader.fieldnames)
        if id_column is None and "id" in header:
            id_column = "id"
        if attributes is None:
            attributes = [col for col in header if col != id_column]
        missing = [col for col in attributes if col not in header]
        if missing:
            raise ValueError(f"{path} lacks columns {missing}; header is {header}")
        if id_column is not None and id_column not in header:
            raise ValueError(f"{path} lacks id column {id_column!r}")

        specs = tuple(AttributeSpec(col, scheme) for col in attributes)
        schema = Schema(specs)
        records = []
        for row_number, row in enumerate(reader):
            values = []
            for spec in specs:
                raw = row.get(spec.name) or ""
                values.append(spec.clean(raw) if normalize_values else raw)
            record_id = row[id_column] if id_column else f"R{row_number}"
            records.append(Record(record_id, tuple(values)))
    if not records:
        raise ValueError(f"{path} contains no data rows")
    return Dataset(schema, records, name=name or path.stem)


def write_dataset(dataset: Dataset, path: str | Path, delimiter: str = ",") -> None:
    """Write a dataset to CSV with an ``id`` column plus the attributes."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["id", *dataset.schema.names])
        for record in dataset:
            writer.writerow([record.record_id, *record.values])


def write_matches(
    matches: Iterable[tuple[int, int]],
    dataset_a: Dataset,
    dataset_b: Dataset,
    path: str | Path,
    delimiter: str = ",",
) -> int:
    """Write matched pairs as ``(id_a, id_b)`` rows; returns the count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["id_a", "id_b"])
        for row_a, row_b in sorted(matches):
            writer.writerow([dataset_a[row_a].record_id, dataset_b[row_b].record_id])
            count += 1
    return count
