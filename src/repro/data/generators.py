"""Synthetic NCVR-like and DBLP-like dataset generators.

The paper's experiments draw 1M-record datasets from the North Carolina
voter registration file (FirstName / LastName / Address / Town) and the
DBLP bibliography (FirstName / LastName / Title / Year).  Neither corpus is
available offline, so these generators synthesise datasets with the same
*shape*: attribute inventories and average per-attribute bigram counts
``b^(f_i)`` matching Table 3 (5.1 / 5.0 / 20.0 / 7.2 and 4.8 / 6.2 / 64.8
/ 3.0).  The linkage algorithms only ever observe strings and the measured
``b`` statistics, so this preserves every behaviour the evaluation probes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.qgram import QGramScheme
from repro.data.corpora import (
    FIRST_NAMES,
    LAST_NAMES,
    STREET_NAMES,
    STREET_TYPES,
    TITLE_WORDS,
    TOWNS,
    length_tilt,
)
from repro.data.schema import AttributeSpec, Dataset, Record, Schema
from repro.text.alphabet import TEXT_ALPHABET

#: Shared q-gram scheme of all experiment attributes (bigrams, letters +
#: digits + blank alphabet, unpadded — matching the paper's Figure 1 and
#: the Table 3 statistics, where ``b ≈ avg_length - 1``).
EXPERIMENT_SCHEME = QGramScheme(q=2, alphabet=TEXT_ALPHABET, padded=False)

NCVR_SCHEMA = Schema(
    tuple(
        AttributeSpec(name, EXPERIMENT_SCHEME)
        for name in ("FirstName", "LastName", "Address", "Town")
    )
)

DBLP_SCHEMA = Schema(
    tuple(
        AttributeSpec(name, EXPERIMENT_SCHEME)
        for name in ("FirstName", "LastName", "Title", "Year")
    )
)


class _WeightedWords:
    """A word list with sampling weights tilted to a target mean length."""

    def __init__(self, words: tuple[str, ...], target_mean_length: float | None = None) -> None:
        self.words = words
        if target_mean_length is None:
            self.weights = None
        else:
            self.weights = np.asarray(length_tilt(words, target_mean_length))

    def sample(self, rng: np.random.Generator, size: int) -> list[str]:
        indices = rng.choice(len(self.words), size=size, p=self.weights)
        return [self.words[int(i)] for i in indices]

    def one(self, rng: np.random.Generator) -> str:
        return self.words[int(rng.choice(len(self.words), p=self.weights))]


@dataclass(frozen=True)
class GeneratorProfile:
    """Target average string lengths per attribute (length = b + 1)."""

    first_name: float
    last_name: float
    long_field: float  # Address (NCVR) or Title (DBLP)
    short_field: float  # Town (NCVR); DBLP years are fixed 4 chars


#: Length targets derived from Table 3's b values (length ≈ b + 1).
NCVR_PROFILE = GeneratorProfile(first_name=6.1, last_name=6.0, long_field=21.0, short_field=8.2)
DBLP_PROFILE = GeneratorProfile(first_name=5.8, last_name=7.2, long_field=65.8, short_field=4.0)


class NCVRGenerator:
    """Generate voter-registration-like records.

    Attributes: FirstName, LastName, Address (``'123 MAPLE AVE [APT n]'``),
    Town.

    ``household_rate`` controls a key property of real voter files: family
    members who share LastName, Address and Town but differ in FirstName.
    These near-duplicate *non*-matches are what separates attribute-aware
    linkage from record-level Jaccard methods (HARRA matches siblings and
    early-prunes the true pair — the PC loss the paper reports).
    """

    def __init__(
        self, profile: GeneratorProfile = NCVR_PROFILE, household_rate: float = 0.3
    ) -> None:
        if not 0.0 <= household_rate < 1.0:
            raise ValueError(f"household_rate must be in [0, 1), got {household_rate}")
        self.profile = profile
        self.household_rate = household_rate
        self._first = _WeightedWords(FIRST_NAMES, profile.first_name)
        self._last = _WeightedWords(LAST_NAMES, profile.last_name)
        self._street = _WeightedWords(STREET_NAMES, 7.8)
        self._type = _WeightedWords(STREET_TYPES)
        self._town = _WeightedWords(TOWNS, profile.short_field)

    @property
    def schema(self) -> Schema:
        return NCVR_SCHEMA

    def _address(self, rng: np.random.Generator) -> str:
        number = int(rng.integers(1, 10000))
        parts = [str(number), self._street.one(rng), self._type.one(rng)]
        # Unit suffixes lift the average length to the Table 3 target
        # (b ≈ 20 bigrams) the way real voter addresses do.
        if rng.random() < 0.65:
            parts.append(f"APT {int(rng.integers(1, 100))}")
        return " ".join(parts)

    def generate(self, n: int, seed: int | None = None, id_prefix: str = "N") -> Dataset:
        """Generate ``n`` records, reproducibly under ``seed``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        rng = np.random.default_rng(seed)
        firsts = self._first.sample(rng, n)
        lasts = self._last.sample(rng, n)
        towns = self._town.sample(rng, n)
        records: list[Record] = []
        for i in range(n):
            if records and rng.random() < self.household_rate:
                # A family member of an earlier voter: new first name,
                # shared last name / address / town.
                relative = records[int(rng.integers(0, len(records)))]
                values = (firsts[i], *relative.values[1:])
            else:
                values = (firsts[i], lasts[i], self._address(rng), towns[i])
            records.append(Record(f"{id_prefix}{i}", values))
        return Dataset(NCVR_SCHEMA, records, name="ncvr-like")


class DBLPGenerator:
    """Generate bibliography-like records.

    Attributes: FirstName, LastName, Title (a plausible paper title around
    66 characters), Year (4 digits, so exactly 3 bigrams as in Table 3).

    ``coauthor_rate`` produces records sharing Title and Year with an
    earlier record but naming a different author — the bibliographic
    analogue of voter-file households.  A record-level bigram vector
    cannot tell co-authors apart (the title's bigrams dominate), which is
    exactly why the paper reports HARRA's PC "fell below 0.75" on DBLP.
    """

    def __init__(
        self, profile: GeneratorProfile = DBLP_PROFILE, coauthor_rate: float = 0.25
    ) -> None:
        if not 0.0 <= coauthor_rate < 1.0:
            raise ValueError(f"coauthor_rate must be in [0, 1), got {coauthor_rate}")
        self.profile = profile
        self.coauthor_rate = coauthor_rate
        self._first = _WeightedWords(FIRST_NAMES, profile.first_name)
        self._last = _WeightedWords(LAST_NAMES, profile.last_name)
        self._word = _WeightedWords(TITLE_WORDS)

    @property
    def schema(self) -> Schema:
        return DBLP_SCHEMA

    def _title(self, rng: np.random.Generator) -> str:
        # Append words until adding another would overshoot the target
        # length by more than it undershoots; titles then average out near
        # the Table 3 statistic (b ≈ 64.8 bigrams).
        target = self.profile.long_field
        words = [self._word.one(rng)]
        length = len(words[0])
        while True:
            word = self._word.one(rng)
            new_length = length + 1 + len(word)
            if new_length > target and (new_length - target) > (target - length):
                break
            words.append(word)
            length = new_length
            if length >= target:
                break
        return " ".join(words)

    def generate(self, n: int, seed: int | None = None, id_prefix: str = "D") -> Dataset:
        """Generate ``n`` records, reproducibly under ``seed``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        rng = np.random.default_rng(seed)
        firsts = self._first.sample(rng, n)
        lasts = self._last.sample(rng, n)
        records: list[Record] = []
        for i in range(n):
            if records and rng.random() < self.coauthor_rate:
                # A co-author entry: different author, same title and year.
                paper = records[int(rng.integers(0, len(records)))]
                values = (firsts[i], lasts[i], paper.values[2], paper.values[3])
            else:
                values = (
                    firsts[i],
                    lasts[i],
                    self._title(rng),
                    str(int(rng.integers(1970, 2016))),
                )
            records.append(Record(f"{id_prefix}{i}", values))
        return Dataset(DBLP_SCHEMA, records, name="dblp-like")


def average_qgram_counts(dataset: Dataset) -> dict[str, float]:
    """Measured ``b^(f_i)`` per attribute (the Table 3 statistic)."""
    out: dict[str, float] = {}
    for spec in dataset.schema:
        column = dataset.column(spec.name)
        out[spec.name] = sum(spec.scheme.count(v) for v in column) / len(column)
    return out
