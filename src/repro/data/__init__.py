"""Synthetic data: schemas, generators, perturbation and linkage problems."""

from repro.data.generators import (
    DBLP_PROFILE,
    DBLP_SCHEMA,
    DBLPGenerator,
    EXPERIMENT_SCHEME,
    GeneratorProfile,
    NCVR_PROFILE,
    NCVR_SCHEMA,
    NCVRGenerator,
    average_qgram_counts,
)
from repro.data.io import read_dataset, write_dataset, write_matches
from repro.data.pairs import LinkageProblem, build_linkage_problem
from repro.data.quality import (
    CompositeScheme,
    MissingValueScheme,
    WordScrambleScheme,
    missingness_summary,
)
from repro.data.perturb import (
    ALL_OPERATIONS,
    AppliedOperation,
    Operation,
    PerturbationScheme,
    apply_operation,
    scheme_ph,
    scheme_pl,
)
from repro.data.schema import (
    AttributeSpec,
    Dataset,
    Record,
    Schema,
    dataset_from_rows,
)

__all__ = [
    "ALL_OPERATIONS",
    "AppliedOperation",
    "AttributeSpec",
    "CompositeScheme",
    "MissingValueScheme",
    "WordScrambleScheme",
    "missingness_summary",
    "read_dataset",
    "write_dataset",
    "write_matches",
    "DBLPGenerator",
    "DBLP_PROFILE",
    "DBLP_SCHEMA",
    "Dataset",
    "EXPERIMENT_SCHEME",
    "GeneratorProfile",
    "LinkageProblem",
    "NCVRGenerator",
    "NCVR_PROFILE",
    "NCVR_SCHEMA",
    "Operation",
    "PerturbationScheme",
    "Record",
    "Schema",
    "apply_operation",
    "average_qgram_counts",
    "build_linkage_problem",
    "dataset_from_rows",
    "scheme_ph",
    "scheme_pl",
]
