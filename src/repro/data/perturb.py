"""Perturbation engine (Section 6, experimental settings).

The paper's prototype extracts records and creates data sets A and B,
"where one can specify the perturbation frequency, number of perturbation
operations, and number of perturbed records".  Two schemes are used:

* **PL** (light): one perturbation applied to one randomly chosen attribute;
* **PH** (heavy): one perturbation to each of the first two attributes and
  two perturbations to the third attribute.

A perturbation is one Levenshtein edit operation — substitute, insert or
delete a character — applied at a random position, staying inside the
attribute's alphabet.  Every applied operation is logged so Figure 11's
per-operation-type accuracy breakdown can be reproduced.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import Record, Schema
from repro.text.alphabet import Alphabet


class Operation(enum.Enum):
    """The basic Levenshtein perturbation operations (Section 5.1)."""

    SUBSTITUTE = "substitute"
    INSERT = "insert"
    DELETE = "delete"


ALL_OPERATIONS = (Operation.SUBSTITUTE, Operation.INSERT, Operation.DELETE)


def _random_letter(alphabet: Alphabet, rng: np.random.Generator, exclude: str = "") -> str:
    """A uniformly chosen non-blank alphabet character, optionally != exclude."""
    candidates = [ch for ch in alphabet.chars if ch not in (" ", "_") and ch != exclude]
    return candidates[int(rng.integers(0, len(candidates)))]


def apply_operation(
    value: str, operation: Operation, alphabet: Alphabet, rng: np.random.Generator
) -> str:
    """Apply one edit operation to ``value`` at a random position.

    Substitutions always change the character (edit distance strictly
    grows); deletes on empty strings degrade to inserts so the operation
    always has an effect.
    """
    if not value and operation is Operation.DELETE:
        operation = Operation.INSERT
    if not value and operation is Operation.SUBSTITUTE:
        operation = Operation.INSERT

    if operation is Operation.SUBSTITUTE:
        pos = int(rng.integers(0, len(value)))
        new_char = _random_letter(alphabet, rng, exclude=value[pos])
        return value[:pos] + new_char + value[pos + 1 :]
    if operation is Operation.INSERT:
        pos = int(rng.integers(0, len(value) + 1))
        return value[:pos] + _random_letter(alphabet, rng) + value[pos:]
    # DELETE
    pos = int(rng.integers(0, len(value)))
    return value[:pos] + value[pos + 1 :]


@dataclass(frozen=True)
class AppliedOperation:
    """Log entry: which operation hit which attribute of a record."""

    attribute: str
    operation: Operation


@dataclass(frozen=True)
class PerturbationScheme:
    """How many operations to apply per attribute.

    ``ops_per_attribute`` maps an attribute *index* to an operation count;
    ``random_single`` instead applies one operation to one uniformly
    chosen attribute (the PL scheme).
    """

    name: str
    ops_per_attribute: Mapping[int, int] = field(default_factory=dict)
    random_single: bool = False
    operations: Sequence[Operation] = ALL_OPERATIONS

    def __post_init__(self) -> None:
        if self.random_single and self.ops_per_attribute:
            raise ValueError("random_single excludes explicit per-attribute op counts")
        if not self.random_single and not self.ops_per_attribute:
            raise ValueError("specify ops_per_attribute or random_single")
        for index, count in self.ops_per_attribute.items():
            if count < 1:
                raise ValueError(f"operation count for attribute {index} must be >= 1")

    def total_operations(self, n_attributes: int) -> int:
        if self.random_single:
            return 1
        return sum(self.ops_per_attribute.values())

    def perturb(
        self, record: Record, schema: Schema, rng: np.random.Generator, new_id: str
    ) -> tuple[Record, tuple[AppliedOperation, ...]]:
        """Perturbed copy of ``record`` plus the log of applied operations."""
        values = list(record.values)
        log: list[AppliedOperation] = []
        if self.random_single:
            plan = {int(rng.integers(0, schema.n_attributes)): 1}
        else:
            plan = dict(self.ops_per_attribute)
        for index, count in sorted(plan.items()):
            if index >= schema.n_attributes:
                raise ValueError(
                    f"scheme targets attribute index {index}, schema has "
                    f"{schema.n_attributes} attributes"
                )
            spec = schema[index]
            for __ in range(count):
                operation = self.operations[int(rng.integers(0, len(self.operations)))]
                values[index] = apply_operation(
                    values[index], operation, spec.scheme.alphabet, rng
                )
                log.append(AppliedOperation(spec.name, operation))
        return Record(new_id, tuple(values)), tuple(log)


def scheme_pl(operations: Sequence[Operation] = ALL_OPERATIONS) -> PerturbationScheme:
    """The light scheme PL: one operation on one random attribute."""
    return PerturbationScheme(name="PL", random_single=True, operations=operations)


def scheme_ph(operations: Sequence[Operation] = ALL_OPERATIONS) -> PerturbationScheme:
    """The heavy scheme PH: one op on f1 and f2, two ops on f3."""
    return PerturbationScheme(
        name="PH", ops_per_attribute={0: 1, 1: 1, 2: 2}, operations=operations
    )
