"""Data-quality corruptions beyond edit errors (the paper's §7 outlook).

Section 7 names "identifying records with missing or non-standardized
values" as the planned extension of the experimental study.  This module
supplies the corruption machinery for that experiment:

* :class:`MissingValueScheme` — blanks whole attribute values with a given
  probability (a patient form without a town, an address-less voter row);
* :class:`WordScrambleScheme` — reorders the words of multi-word values
  (``'12 MAIN ST'`` vs ``'MAIN ST 12'``), the classic non-standardisation;
* :class:`CompositeScheme` — chains any schemes (e.g. PL typos *plus*
  missing values), so corrupted pairs stay realistic.

All schemes expose the same ``perturb(record, schema, rng, new_id)``
interface as :class:`repro.data.perturb.PerturbationScheme`, so they plug
straight into :func:`repro.data.pairs.build_linkage_problem`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.perturb import AppliedOperation, Operation
from repro.data.schema import Dataset, Record, Schema


@dataclass(frozen=True)
class MissingValueScheme:
    """Blank each attribute independently with probability ``missing_rate``.

    ``protect`` lists attribute indices that are never blanked (at least
    one identifying field usually survives in practice); if the random
    draws would blank everything, the first unprotected attribute is
    restored.
    """

    missing_rate: float
    protect: tuple[int, ...] = ()
    name: str = "missing"

    def __post_init__(self) -> None:
        if not 0.0 <= self.missing_rate <= 1.0:
            raise ValueError(f"missing_rate must be in [0, 1], got {self.missing_rate}")

    def perturb(
        self, record: Record, schema: Schema, rng: np.random.Generator, new_id: str
    ) -> tuple[Record, tuple[AppliedOperation, ...]]:
        values = list(record.values)
        log: list[AppliedOperation] = []
        blanked = []
        for index in range(schema.n_attributes):
            if index in self.protect:
                continue
            if rng.random() < self.missing_rate:
                values[index] = ""
                blanked.append(index)
                log.append(AppliedOperation(schema[index].name, Operation.DELETE))
        if blanked and not any(values):
            # Never erase the whole record: restore one field.
            values[blanked[0]] = record.values[blanked[0]]
            log.pop(0)
        return Record(new_id, tuple(values)), tuple(log)


@dataclass(frozen=True)
class WordScrambleScheme:
    """Rotate the word order of multi-word attributes (non-standardisation).

    A rotation (rather than a full shuffle) models the dominant real-world
    pattern — a moved house number or a 'LastName FirstName' swap — and
    guarantees the value actually changes.
    """

    scramble_rate: float
    name: str = "scramble"

    def __post_init__(self) -> None:
        if not 0.0 <= self.scramble_rate <= 1.0:
            raise ValueError(
                f"scramble_rate must be in [0, 1], got {self.scramble_rate}"
            )

    def perturb(
        self, record: Record, schema: Schema, rng: np.random.Generator, new_id: str
    ) -> tuple[Record, tuple[AppliedOperation, ...]]:
        values = list(record.values)
        log: list[AppliedOperation] = []
        for index, value in enumerate(values):
            words = value.split(" ")
            if len(words) < 2 or rng.random() >= self.scramble_rate:
                continue
            shift = int(rng.integers(1, len(words)))
            values[index] = " ".join(words[shift:] + words[:shift])
            log.append(AppliedOperation(schema[index].name, Operation.SUBSTITUTE))
        return Record(new_id, tuple(values)), tuple(log)


@dataclass(frozen=True)
class CompositeScheme:
    """Apply several corruption schemes in sequence to the same record."""

    schemes: tuple
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("composite needs at least one scheme")
        if not self.name:
            object.__setattr__(
                self, "name", "+".join(s.name for s in self.schemes)
            )

    def perturb(
        self, record: Record, schema: Schema, rng: np.random.Generator, new_id: str
    ) -> tuple[Record, tuple[AppliedOperation, ...]]:
        log: list[AppliedOperation] = []
        current = record
        for scheme in self.schemes:
            current, applied = scheme.perturb(current, schema, rng, new_id)
            log.extend(applied)
        return Record(new_id, current.values), tuple(log)


def missingness_summary(
    dataset: Dataset, attribute_names: Sequence[str] | None = None
) -> dict[str, float]:
    """Fraction of blank values per attribute (diagnostics for experiments)."""
    names = attribute_names or dataset.schema.names
    out = {}
    for name in names:
        column = dataset.column(name)
        out[name] = sum(1 for v in column if not v) / len(column)
    return out
