"""Embedded corpora for the synthetic data generators.

The paper evaluates on the NCVR voter file and the DBLP bibliography, which
are not redistributable here; :mod:`repro.data.generators` builds synthetic
look-alikes from these word lists instead.  Lists are deliberately plain
upper-case ASCII so they embed losslessly into every alphabet used by the
encoders.
"""

from __future__ import annotations

import math

FIRST_NAMES: tuple[str, ...] = (
    "JAMES", "MARY", "ROBERT", "PATRICIA", "JOHN", "JENNIFER", "MICHAEL",
    "LINDA", "DAVID", "ELIZABETH", "WILLIAM", "BARBARA", "RICHARD", "SUSAN",
    "JOSEPH", "JESSICA", "THOMAS", "SARAH", "CHARLES", "KAREN", "CHRISTOPHER",
    "LISA", "DANIEL", "NANCY", "MATTHEW", "BETTY", "ANTHONY", "MARGARET",
    "MARK", "SANDRA", "DONALD", "ASHLEY", "STEVEN", "KIMBERLY", "PAUL",
    "EMILY", "ANDREW", "DONNA", "JOSHUA", "MICHELLE", "KENNETH", "DOROTHY",
    "KEVIN", "CAROL", "BRIAN", "AMANDA", "GEORGE", "MELISSA", "EDWARD",
    "DEBORAH", "RONALD", "STEPHANIE", "TIMOTHY", "REBECCA", "JASON", "SHARON",
    "JEFFREY", "LAURA", "RYAN", "CYNTHIA", "JACOB", "KATHLEEN", "GARY",
    "AMY", "NICHOLAS", "ANGELA", "ERIC", "SHIRLEY", "JONATHAN", "ANNA",
    "STEPHEN", "BRENDA", "LARRY", "PAMELA", "JUSTIN", "EMMA", "SCOTT",
    "NICOLE", "BRANDON", "HELEN", "BENJAMIN", "SAMANTHA", "SAMUEL",
    "KATHERINE", "GREGORY", "CHRISTINE", "FRANK", "DEBRA", "ALEXANDER",
    "RACHEL", "RAYMOND", "CATHERINE", "PATRICK", "CAROLYN", "JACK", "JANET",
    "DENNIS", "RUTH", "JERRY", "MARIA", "TYLER", "HEATHER", "AARON", "DIANE",
    "JOSE", "VIRGINIA", "ADAM", "JULIE", "HENRY", "JOYCE", "NATHAN",
    "VICTORIA", "DOUGLAS", "OLIVIA", "ZACHARY", "KELLY", "PETER", "CHRISTINA",
    "KYLE", "LAUREN", "WALTER", "JOAN", "ETHAN", "EVELYN", "JEREMY", "JUDITH",
    "HAROLD", "MEGAN", "KEITH", "CHERYL", "CHRISTIAN", "ANDREA", "ROGER",
    "HANNAH", "NOAH", "MARTHA", "GERALD", "JACQUELINE", "CARL", "FRANCES",
    "TERRY", "GLORIA", "SEAN", "ANN", "AUSTIN", "TERESA", "ARTHUR", "KATHRYN",
    "LAWRENCE", "SARA", "JESSE", "JANICE", "DYLAN", "JEAN", "BRYAN", "ALICE",
    "JOE", "MADISON", "JORDAN", "DORIS", "BILLY", "ABIGAIL", "BRUCE", "JULIA",
    "ALBERT", "JUDY", "WILLIE", "GRACE", "GABRIEL", "DENISE", "LOGAN",
    "AMBER", "ALAN", "MARILYN", "JUAN", "BEVERLY", "WAYNE", "DANIELLE",
    "ROY", "THERESA", "RALPH", "SOPHIA", "RANDY", "MARIE", "EUGENE", "DIANA",
    "VINCENT", "BRITTANY", "RUSSELL", "NATALIE", "ELIJAH", "ISABELLA",
    "LOUIS", "CHARLOTTE", "BOBBY", "ROSE", "PHILIP", "ALEXIS", "JOHNNY",
    "KAYLA", "SHANNEN", "JONES", "HARVEY", "WESLEY", "DEREK", "CLARA",
    "MARVIN", "LUCY", "OSCAR", "STELLA", "FELIX", "NORA", "HUGO", "IRIS",
)

LAST_NAMES: tuple[str, ...] = (
    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER",
    "DAVIS", "RODRIGUEZ", "MARTINEZ", "HERNANDEZ", "LOPEZ", "GONZALEZ",
    "WILSON", "ANDERSON", "THOMAS", "TAYLOR", "MOORE", "JACKSON", "MARTIN",
    "LEE", "PEREZ", "THOMPSON", "WHITE", "HARRIS", "SANCHEZ", "CLARK",
    "RAMIREZ", "LEWIS", "ROBINSON", "WALKER", "YOUNG", "ALLEN", "KING",
    "WRIGHT", "SCOTT", "TORRES", "NGUYEN", "HILL", "FLORES", "GREEN",
    "ADAMS", "NELSON", "BAKER", "HALL", "RIVERA", "CAMPBELL", "MITCHELL",
    "CARTER", "ROBERTS", "GOMEZ", "PHILLIPS", "EVANS", "TURNER", "DIAZ",
    "PARKER", "CRUZ", "EDWARDS", "COLLINS", "REYES", "STEWART", "MORRIS",
    "MORALES", "MURPHY", "COOK", "ROGERS", "GUTIERREZ", "ORTIZ", "MORGAN",
    "COOPER", "PETERSON", "BAILEY", "REED", "KELLY", "HOWARD", "RAMOS",
    "KIM", "COX", "WARD", "RICHARDSON", "WATSON", "BROOKS", "CHAVEZ",
    "WOOD", "JAMES", "BENNETT", "GRAY", "MENDOZA", "RUIZ", "HUGHES",
    "PRICE", "ALVAREZ", "CASTILLO", "SANDERS", "PATEL", "MYERS", "LONG",
    "ROSS", "FOSTER", "JIMENEZ", "POWELL", "JENKINS", "PERRY", "RUSSELL",
    "SULLIVAN", "BELL", "COLEMAN", "BUTLER", "HENDERSON", "BARNES",
    "GONZALES", "FISHER", "VASQUEZ", "SIMMONS", "ROMERO", "JORDAN",
    "PATTERSON", "ALEXANDER", "HAMILTON", "GRAHAM", "REYNOLDS", "GRIFFIN",
    "WALLACE", "MORENO", "WEST", "COLE", "HAYES", "BRYANT", "HERRERA",
    "GIBSON", "ELLIS", "TRAN", "MEDINA", "AGUILAR", "STEVENS", "MURRAY",
    "FORD", "CASTRO", "MARSHALL", "OWENS", "HARRISON", "FERNANDEZ",
    "MCDONALD", "WOODS", "WASHINGTON", "KENNEDY", "WELLS", "VARGAS",
    "HENRY", "CHEN", "FREEMAN", "WEBB", "TUCKER", "GUZMAN", "BURNS",
    "CRAWFORD", "OLSON", "SIMPSON", "PORTER", "HUNTER", "GORDON", "MENDEZ",
    "SILVA", "SHAW", "SNYDER", "MASON", "DIXON", "MUNOZ", "HUNT", "HICKS",
    "HOLMES", "PALMER", "WAGNER", "BLACK", "ROBERTSON", "BOYD", "ROSE",
    "STONE", "SALAZAR", "FOX", "WARREN", "MILLS", "MEYER", "RICE",
    "SCHMIDT", "GARZA", "DANIELS", "FERGUSON", "NICHOLS", "STEPHENS",
    "SOTO", "WEAVER", "RYAN", "GARDNER", "PAYNE", "GRANT", "DUNN",
    "KELLEY", "SPENCER", "HAWKINS", "ARNOLD", "PIERCE", "VAZQUEZ",
    "HANSEN", "PETERS", "SANTOS", "HART", "BRADLEY", "KNIGHT", "ELLIOTT",
    "CUNNINGHAM", "DUNCAN", "ARMSTRONG", "HUDSON", "CARROLL", "LANE",
    "RILEY", "ANDREWS", "ALVARADO", "RAY", "DELGADO", "BERRY", "PERKINS",
    "HOFFMAN", "JOHNSTON", "MATTHEWS", "PENA", "RICHARDS", "CONTRERAS",
    "WILLIS", "CARPENTER", "LAWRENCE", "SANDOVAL", "GUERRERO", "GEORGE",
    "CHAPMAN", "RIOS", "ESTRADA", "ORTEGA", "WATKINS", "GREENE", "NUNEZ",
    "WHEELER", "VALDEZ", "HARPER", "BURKE", "LARSON", "SANTIAGO",
    "MALDONADO", "MORRISON", "FRANKLIN", "CARLSON", "AUSTIN", "DOMINGUEZ",
    "CARR", "LAWSON", "JACOBS", "OBRIEN", "LYNCH", "SINGH", "VEGA",
    "BISHOP", "MONTGOMERY", "OLIVER", "JENSEN", "HARVEY", "WILLIAMSON",
)

STREET_NAMES: tuple[str, ...] = (
    "MAIN", "OAK", "PINE", "MAPLE", "CEDAR", "ELM", "WASHINGTON", "LAKE",
    "HILL", "PARK", "WALNUT", "SPRING", "NORTH", "RIDGE", "CHURCH",
    "WILLOW", "MEADOW", "FOREST", "HIGHLAND", "RIVER", "SUNSET", "JACKSON",
    "FRANKLIN", "MILL", "JEFFERSON", "CHESTNUT", "COLLEGE", "CHERRY",
    "DOGWOOD", "HICKORY", "LINCOLN", "MAGNOLIA", "LOCUST", "POPLAR",
    "SYCAMORE", "VALLEY", "GREEN", "PROSPECT", "CENTER", "UNION",
    "WOODLAND", "SPRUCE", "BIRCH", "LAUREL", "HARRISON", "MADISON",
    "MONROE", "ADAMS", "COUNTRY CLUB", "FAIRWAY", "BROOKSIDE", "CLEARWATER",
    "STONEBRIDGE", "FOXGLOVE", "HUNTINGTON", "KINGSTON", "LEXINGTON",
    "BRIDGEPORT", "WESTCHESTER", "ARLINGTON", "BEACON", "CAROLINA",
    "PIEDMONT", "SALISBURY", "WENDOVER", "GLENWOOD", "LAKESHORE",
    "PEACHTREE", "RIVERBEND", "SADDLEBROOK", "TANGLEWOOD", "WILDWOOD",
)

STREET_TYPES: tuple[str, ...] = (
    "ST", "AVE", "RD", "DR", "LN", "CT", "BLVD", "WAY", "PL", "CIR",
    "TRL", "PKWY", "TER", "LOOP", "RUN",
)

TOWNS: tuple[str, ...] = (
    "CHARLOTTE", "RALEIGH", "GREENSBORO", "DURHAM", "WINSTON SALEM",
    "FAYETTEVILLE", "CARY", "WILMINGTON", "HIGH POINT", "CONCORD",
    "ASHEVILLE", "GASTONIA", "GREENVILLE", "JACKSONVILLE", "CHAPEL HILL",
    "ROCKY MOUNT", "HUNTERSVILLE", "BURLINGTON", "WILSON", "KANNAPOLIS",
    "APEX", "HICKORY", "GOLDSBORO", "INDIAN TRAIL", "MOORESVILLE",
    "WAKE FOREST", "MONROE", "SALISBURY", "NEW BERN", "HOLLY SPRINGS",
    "MATTHEWS", "SANFORD", "GARNER", "CORNELIUS", "THOMASVILLE",
    "ASHEBORO", "STATESVILLE", "MINT HILL", "KERNERSVILLE", "MORRISVILLE",
    "LUMBERTON", "FUQUAY VARINA", "KINSTON", "CARRBORO", "HAVELOCK",
    "SHELBY", "CLEMMONS", "LEXINGTON", "CLAYTON", "BOONE", "ELIZABETH CITY",
    "PINEHURST", "ALBEMARLE", "LENOIR", "MOUNT AIRY", "GRAHAM", "OXFORD",
    "EDEN", "HENDERSON", "TARBORO", "MOREHEAD CITY", "SOUTHERN PINES",
    "WAYNESVILLE", "BREVARD", "SMITHFIELD", "WASHINGTON", "NEWTON",
)

TITLE_WORDS: tuple[str, ...] = (
    "EFFICIENT", "SCALABLE", "DISTRIBUTED", "PARALLEL", "ADAPTIVE",
    "INCREMENTAL", "APPROXIMATE", "OPTIMAL", "ROBUST", "DYNAMIC",
    "QUERY", "PROCESSING", "OPTIMIZATION", "INDEXING", "JOINS",
    "SIMILARITY", "SEARCH", "RECORD", "LINKAGE", "ENTITY", "RESOLUTION",
    "DEDUPLICATION", "BLOCKING", "MATCHING", "HASHING", "CLUSTERING",
    "CLASSIFICATION", "LEARNING", "MINING", "STREAMS", "GRAPHS",
    "NETWORKS", "DATABASES", "SYSTEMS", "ALGORITHMS", "STRUCTURES",
    "MODELS", "FRAMEWORKS", "ARCHITECTURES", "BENCHMARKS", "ANALYTICS",
    "PRIVACY", "SECURITY", "INTEGRATION", "TRANSACTIONS", "CONCURRENCY",
    "RECOVERY", "REPLICATION", "CONSISTENCY", "AVAILABILITY", "PARTITIONING",
    "COMPRESSION", "SAMPLING", "ESTIMATION", "CARDINALITY", "SELECTIVITY",
    "TOPK", "SKYLINE", "SPATIAL", "TEMPORAL", "PROBABILISTIC", "UNCERTAIN",
    "SEMANTIC", "ONTOLOGY", "SCHEMA", "MAPPING", "EXTRACTION", "CLEANING",
    "QUALITY", "PROVENANCE", "WORKFLOWS", "CROWDSOURCING", "KEYWORD",
    "RANKING", "RECOMMENDATION", "PERSONALIZATION", "VISUALIZATION",
    "EXPLORATION", "INTERACTIVE", "DECLARATIVE", "RELATIONAL", "COLUMNAR",
    "TRANSACTIONAL", "ANALYTICAL", "FEDERATED", "HETEROGENEOUS", "MULTIMODAL",
    "ON", "FOR", "WITH", "USING", "OVER", "UNDER", "TOWARDS", "BEYOND",
    "LARGE", "SCALE", "BIG", "DATA", "CLOUD", "MEMORY", "DISK", "FLASH",
    "HARDWARE", "AWARE", "DRIVEN", "BASED", "FREE", "LESS", "CENTRIC",
)


def length_tilt(words: tuple[str, ...], target_mean: float, tolerance: float = 1e-6) -> list[float]:
    """Sampling weights that make the expected word length equal ``target_mean``.

    Uses an exponential tilt ``w_i ∝ exp(t * len_i)`` with ``t`` found by
    bisection.  This lets the generators hit the paper's per-attribute
    average q-gram counts (Table 3) without curating word lists by hand.
    """
    lengths = [len(w) for w in words]
    lo, hi = min(lengths), max(lengths)
    if not lo < target_mean < hi:
        raise ValueError(
            f"target mean {target_mean} outside attainable range ({lo}, {hi})"
        )

    def tilted_mean(t: float) -> float:
        # Subtract max exponent for numerical stability.
        peak = max(t * n for n in lengths)
        weights = [math.exp(t * n - peak) for n in lengths]
        total = sum(weights)
        return sum(w * n for w, n in zip(weights, lengths)) / total

    t_lo, t_hi = -5.0, 5.0
    for __ in range(200):
        mid = (t_lo + t_hi) / 2.0
        if tilted_mean(mid) < target_mean:
            t_lo = mid
        else:
            t_hi = mid
        if t_hi - t_lo < tolerance:
            break
    t = (t_lo + t_hi) / 2.0
    peak = max(t * n for n in lengths)
    weights = [math.exp(t * n - peak) for n in lengths]
    total = sum(weights)
    return [w / total for w in weights]
