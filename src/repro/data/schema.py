"""Records, attributes and datasets.

Two data custodians (Alice and Bob in the paper's Section 3) each own a
database of records sharing ``n_f`` common string attributes plus an ``Id``.
:class:`Dataset` is the in-memory representation handed to Charlie: an
ordered list of :class:`Record` values with a shared :class:`Schema`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.qgram import QGramScheme

if TYPE_CHECKING:  # keep numpy a typing-only dependency of this module
    import numpy as np
from repro.text.alphabet import TEXT_ALPHABET
from repro.text.normalize import normalize


@dataclass(frozen=True)
class AttributeSpec:
    """One linkage attribute: its name and q-gram scheme.

    The scheme's alphabet determines which characters survive
    normalisation; multi-word attributes (addresses, titles) need an
    alphabet containing the blank.
    """

    name: str
    scheme: QGramScheme = field(default_factory=lambda: QGramScheme(alphabet=TEXT_ALPHABET))

    def clean(self, raw: str) -> str:
        """Normalise a raw value into this attribute's alphabet."""
        return normalize(raw, alphabet=self.scheme.alphabet)


@dataclass(frozen=True)
class Schema:
    """The agreed set of common attributes ``f_1 .. f_nf``."""

    attributes: tuple[AttributeSpec, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("schema needs at least one attribute")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"attribute names must be unique: {names}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self.attributes)

    def __getitem__(self, index: int) -> AttributeSpec:
        return self.attributes[index]

    def attribute(self, name: str) -> AttributeSpec:
        for spec in self.attributes:
            if spec.name == name:
                return spec
        raise KeyError(f"unknown attribute {name!r}; have {self.names}")

    @classmethod
    def of(cls, *names: str, scheme: QGramScheme | None = None) -> "Schema":
        """Build a schema of named attributes sharing one q-gram scheme."""
        scheme = scheme or QGramScheme(alphabet=TEXT_ALPHABET)
        return cls(tuple(AttributeSpec(name, scheme) for name in names))


@dataclass(frozen=True)
class Record:
    """A record: an identifier plus one string value per schema attribute."""

    record_id: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.record_id:
            raise ValueError("record_id must be non-empty")

    def value(self, index: int) -> str:
        return self.values[index]

    def replace_value(self, index: int, new_value: str) -> "Record":
        """A copy with one attribute value replaced (perturbation helper)."""
        values = list(self.values)
        values[index] = new_value
        return Record(self.record_id, tuple(values))


class Dataset:
    """An ordered collection of records under a shared schema."""

    def __init__(self, schema: Schema, records: Iterable[Record], name: str = "") -> None:
        self.schema = schema
        self.records: list[Record] = list(records)
        self.name = name
        for record in self.records:
            if len(record.values) != schema.n_attributes:
                raise ValueError(
                    f"record {record.record_id!r} has {len(record.values)} values, "
                    f"schema expects {schema.n_attributes}"
                )
        self._by_id = {record.record_id: i for i, record in enumerate(self.records)}
        if len(self._by_id) != len(self.records):
            raise ValueError("record ids must be unique within a dataset")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    def index_of(self, record_id: str) -> int:
        return self._by_id[record_id]

    def column(self, attribute: str) -> list[str]:
        """All values of a named attribute, in record order."""
        idx = self.schema.names.index(attribute)
        return [record.values[idx] for record in self.records]

    def value_rows(self) -> list[tuple[str, ...]]:
        """Attribute-value tuples in record order (encoder input)."""
        return [record.values for record in self.records]

    def sample(self, n: int, rng: "np.random.Generator") -> list[Record]:
        """Uniform sample without replacement (calibration input)."""
        if n >= len(self.records):
            return list(self.records)
        indices = rng.choice(len(self.records), size=n, replace=False)
        return [self.records[int(i)] for i in indices]

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Dataset({label} n={len(self.records)}, attributes={self.schema.names})"


def dataset_from_rows(
    schema: Schema, rows: Sequence[Sequence[str]], id_prefix: str = "R", name: str = ""
) -> Dataset:
    """Build a dataset from plain value rows, generating sequential ids."""
    records = [
        Record(f"{id_prefix}{i}", tuple(row)) for i, row in enumerate(rows)
    ]
    return Dataset(schema, records, name=name)
