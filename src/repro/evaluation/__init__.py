"""Evaluation harness: quality measures, experiment runner and reporting."""

from repro.evaluation.ascii import bar_chart, line_chart, sparkline
from repro.evaluation.curves import ThresholdCurve, ThresholdPoint, threshold_curve
from repro.evaluation.diagnostics import (
    BlockingDiagnostics,
    diagnose_blocking,
    selectivity_sweep,
)
from repro.evaluation.experiment import (
    ExperimentResult,
    TrialResult,
    per_operation_completeness,
    run_experiment,
    sweep,
)
from repro.evaluation.metrics import (
    LinkageQuality,
    evaluate_linkage,
    pairs_completeness,
    pairs_from_arrays,
    pairs_quality,
    reduction_ratio,
    subset_completeness,
)
from repro.evaluation.reporting import banner, format_series, format_table

__all__ = [
    "BlockingDiagnostics",
    "ExperimentResult",
    "ThresholdCurve",
    "ThresholdPoint",
    "threshold_curve",
    "LinkageQuality",
    "TrialResult",
    "banner",
    "bar_chart",
    "diagnose_blocking",
    "line_chart",
    "selectivity_sweep",
    "sparkline",
    "evaluate_linkage",
    "format_series",
    "format_table",
    "pairs_completeness",
    "pairs_from_arrays",
    "pairs_quality",
    "per_operation_completeness",
    "reduction_ratio",
    "subset_completeness",
    "sweep",
]
