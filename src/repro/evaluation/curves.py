"""Threshold-sweep curves: quality as a function of the matching threshold.

Given one blocking pass (candidates are threshold-independent), sweeping
the matching threshold over the candidates' distances yields the whole
PC / precision / F1 trade-off curve in one cheap pass — useful both for
sanity-checking a derived threshold (``repro.rules.derive``) and for the
classic precision/recall presentation of linkage quality.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ThresholdPoint:
    """Quality at one matching threshold."""

    threshold: float
    n_matches: int
    true_positives: int
    pairs_completeness: float
    precision: float

    @property
    def f1(self) -> float:
        if self.precision + self.pairs_completeness == 0.0:
            return 0.0
        return (
            2.0 * self.precision * self.pairs_completeness
            / (self.precision + self.pairs_completeness)
        )


@dataclass(frozen=True)
class ThresholdCurve:
    """The full sweep, ordered by ascending threshold."""

    points: tuple[ThresholdPoint, ...]

    def __iter__(self) -> Iterator[ThresholdPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def best_f1(self) -> ThresholdPoint:
        """The point maximising F1 (ties broken toward lower thresholds)."""
        return max(self.points, key=lambda p: (p.f1, -p.threshold))

    def at(self, threshold: float) -> ThresholdPoint:
        """The sweep point for the largest swept threshold <= ``threshold``."""
        eligible = [p for p in self.points if p.threshold <= threshold]
        if not eligible:
            return ThresholdPoint(threshold, 0, 0, 0.0, 0.0)
        return eligible[-1]


def threshold_curve(
    rows_a: np.ndarray,
    rows_b: np.ndarray,
    distances: np.ndarray,
    truth: set[tuple[int, int]],
    thresholds: np.ndarray | None = None,
) -> ThresholdCurve:
    """Sweep the matching threshold over one candidate set.

    ``rows_a / rows_b / distances`` are the blocking stage's candidate
    pairs with their (record-level) distances; ``truth`` is the ground
    truth.  ``thresholds`` defaults to every distinct candidate distance.

    The pairs completeness here is measured against all of ``truth`` —
    pairs the blocking stage missed depress PC at every threshold, which
    is the honest end-to-end curve.
    """
    if rows_a.shape != rows_b.shape or rows_a.shape != distances.shape:
        raise ValueError("rows_a, rows_b and distances must be parallel arrays")
    if not truth:
        raise ValueError("truth must be non-empty")
    is_true = np.asarray(
        [(a, b) in truth for a, b in zip(rows_a.tolist(), rows_b.tolist())]
    )
    if thresholds is None:
        thresholds = np.unique(distances) if distances.size else np.asarray([0.0])

    order = np.argsort(distances, kind="stable")
    sorted_distances = distances[order]
    sorted_true = is_true[order] if is_true.size else np.empty(0, dtype=bool)
    cumulative_true = np.cumsum(sorted_true)

    points = []
    n_truth = len(truth)
    for threshold in np.asarray(thresholds, dtype=float):
        n_matches = int(np.searchsorted(sorted_distances, threshold, side="right"))
        true_positives = int(cumulative_true[n_matches - 1]) if n_matches else 0
        points.append(
            ThresholdPoint(
                threshold=float(threshold),
                n_matches=n_matches,
                true_positives=true_positives,
                pairs_completeness=true_positives / n_truth,
                precision=true_positives / n_matches if n_matches else 0.0,
            )
        )
    return ThresholdCurve(points=tuple(points))
