"""Blocking diagnostics: bucket populations and selectivity.

Section 4.2 argues that K "should be sufficiently large because otherwise
the blocking keys will not reflect the variations of the bit sequences
... The direct side-effect of this deficiency will be the generation of a
small number of buckets in each T_l, which will be overpopulated by mostly
dissimilar pairs."  These helpers quantify exactly that: per-K bucket
statistics and the expected number of formulated pairs, so the K trade-off
can be inspected rather than guessed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.lsh import HammingLSH


@dataclass(frozen=True)
class BlockingDiagnostics:
    """Bucket statistics of one HB configuration on one dataset."""

    k: int
    n_tables: int
    n_records: int
    n_buckets: int
    mean_bucket_size: float
    max_bucket_size: int
    gini: float
    expected_pairs_per_table: float

    @property
    def selectivity(self) -> float:
        """Buckets per record per table (1.0 = perfectly selective)."""
        return self.n_buckets / (self.n_tables * self.n_records)


def _gini(sizes: np.ndarray) -> float:
    """Gini coefficient of the bucket-size distribution (0 = uniform)."""
    if sizes.size == 0:
        return 0.0
    sorted_sizes = np.sort(sizes).astype(np.float64)
    n = sorted_sizes.size
    cumulative = np.cumsum(sorted_sizes)
    if cumulative[-1] == 0:
        return 0.0
    return float((n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n)


def diagnose_blocking(
    matrix: BitMatrix,
    k: int,
    threshold: int,
    delta: float = 0.1,
    n_tables: int | None = None,
    seed: int | None = None,
) -> BlockingDiagnostics:
    """Index ``matrix`` and measure the resulting bucket landscape."""
    lsh = HammingLSH(
        n_bits=matrix.n_bits, k=k, threshold=threshold, delta=delta,
        n_tables=n_tables, seed=seed,
    )
    lsh.index(matrix)
    sizes = np.concatenate([group.bucket_sizes() for group in lsh.groups])
    # E[pairs] if the same key distribution holds for a same-sized dataset
    # B: sum over buckets of size^2, averaged per table.
    expected_pairs = float((sizes.astype(np.float64) ** 2).sum() / lsh.n_tables)
    return BlockingDiagnostics(
        k=k,
        n_tables=lsh.n_tables,
        n_records=matrix.n_rows,
        n_buckets=int(sizes.size),
        mean_bucket_size=float(sizes.mean()),
        max_bucket_size=int(sizes.max()),
        gini=_gini(sizes),
        expected_pairs_per_table=expected_pairs,
    )


def selectivity_sweep(
    matrix: BitMatrix,
    k_values: Sequence[int],
    threshold: int,
    delta: float = 0.1,
    seed: int | None = None,
) -> list[BlockingDiagnostics]:
    """Diagnostics across a K sweep (the §4.2 overpopulation narrative)."""
    return [
        diagnose_blocking(matrix, k, threshold, delta=delta, seed=seed)
        for k in k_values
    ]
