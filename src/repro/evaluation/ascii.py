"""Terminal charts: render benchmark series without a plotting stack.

The benchmark harness regenerates the paper's figures as text; these
helpers add a visual layer — horizontal bar charts for method comparisons
and fixed-height line charts for parameter sweeps — so a terminal run of
``pytest benchmarks/`` reads like the original figures.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    max_value: float | None = None,
    precision: int = 3,
) -> str:
    """Horizontal bars, one per labelled value.

    >>> print(bar_chart({'cBV-HB': 0.98, 'HARRA': 0.49}, width=10))
    cBV-HB |██████████ 0.98
    HARRA  |█████      0.49
    """
    if not values:
        raise ValueError("values must be non-empty")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    peak = max_value if max_value is not None else max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        if value < 0:
            raise ValueError(f"bar values must be >= 0, got {value} for {label!r}")
        filled = min(value / peak, 1.0) * width
        whole = int(filled)
        frac = filled - whole
        bar = "█" * whole
        if frac > 0 and whole < width:
            bar += _BLOCKS[int(frac * (len(_BLOCKS) - 1))]
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)} {value:.{precision}g}"
        )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 8,
    title: str = "",
) -> str:
    """A fixed-height dot chart of ``ys`` over evenly spaced ``xs``.

    The y-axis is annotated with the minimum and maximum; each column is
    one x-value.
    """
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} x-values for {len(ys)} y-values")
    if not xs:
        raise ValueError("series must be non-empty")
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    lo, hi = min(ys), max(ys)
    span = hi - lo or 1.0
    rows = [[" "] * len(ys) for __ in range(height)]
    for col, y in enumerate(ys):
        level = int((y - lo) / span * (height - 1))
        rows[height - 1 - level][col] = "●"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        if i == 0:
            label = f"{hi:8.3g} ┤"
        elif i == height - 1:
            label = f"{lo:8.3g} ┤"
        else:
            label = " " * 9 + "│"
        lines.append(label + " ".join(row))
    lines.append(" " * 9 + "└" + "─" * (2 * len(xs) - 1))
    lines.append(" " * 10 + " ".join(f"{x:g}"[0] for x in xs))
    return "\n".join(lines)


def sparkline(ys: Sequence[float]) -> str:
    """A one-line sparkline: ▁▂▃▅▇ for a quick trend read.

    >>> sparkline([1, 2, 3, 2, 1])
    '▁▄█▄▁'
    """
    if not ys:
        raise ValueError("series must be non-empty")
    glyphs = "▁▂▃▄▅▆▇█"
    lo, hi = min(ys), max(ys)
    span = hi - lo or 1.0
    return "".join(glyphs[int((y - lo) / span * (len(glyphs) - 1))] for y in ys)
