"""Plain-text reporting: the tables and series the paper's figures plot.

Benchmarks print the same rows/series a figure shows (method x measure),
so a run of a benchmark file regenerates the corresponding artefact in
textual form.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Sequence
from typing import TextIO


def emit(text: str, stream: TextIO | None = None) -> None:
    """Write one line of user-facing output.

    The single stdout sink for the CLI and library: reprolint's RL006
    bans bare ``print()`` in library code so that embedding callers can
    redirect everything by passing ``stream``.
    """
    target = sys.stdout if stream is None else stream
    target.write(text + "\n")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], precision: int = 4
) -> str:
    """Render an aligned monospace table.

    Floats are rounded to ``precision`` digits; everything else is
    ``str()``-ed.

    >>> print(format_table(['a', 'b'], [[1, 0.5], [22, 0.25]]))
    a   | b
    ----+-----
    1   | 0.5
    22  | 0.25
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "-+-".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float], precision: int = 4) -> str:
    """Render one figure series as ``name: x=y`` pairs, one per line."""
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} x-values for {len(ys)} y-values")
    lines = [f"series {name}:"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x} -> {y:.{precision}g}")
    return "\n".join(lines)


def banner(title: str, char: str = "=") -> str:
    """A section banner for benchmark output."""
    line = char * max(len(title), 8)
    return f"{line}\n{title}\n{line}"
