"""Experiment runner: repeated randomized trials with aggregation.

The paper runs each experiment 50 times and plots averages.  The runner
here executes ``n_trials`` linkage runs with derived seeds, evaluates each
against the problem's ground truth and aggregates means and standard
deviations of every quality measure and timing.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.data.pairs import LinkageProblem
from repro.data.perturb import Operation
from repro.evaluation.metrics import LinkageQuality, evaluate_linkage, subset_completeness


@dataclass(frozen=True)
class TrialResult:
    """One linkage run: its quality, wall-clock time and match set."""

    seed: int
    quality: LinkageQuality
    elapsed: float
    timings: dict[str, float]
    matches: set[tuple[int, int]]
    counters: dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Aggregated trials of one method on one problem."""

    name: str
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def _values(self, measure: str) -> list[float]:
        return [trial.quality.as_dict()[measure] for trial in self.trials]

    def mean(self, measure: str) -> float:
        """Mean of a quality measure ('PC', 'PQ', 'RR', 'F1', ...)."""
        values = self._values(measure)
        return statistics.fmean(values) if values else 0.0

    def stdev(self, measure: str) -> float:
        values = self._values(measure)
        return statistics.stdev(values) if len(values) > 1 else 0.0

    @property
    def mean_pc(self) -> float:
        return self.mean("PC")

    @property
    def mean_pq(self) -> float:
        return self.mean("PQ")

    @property
    def mean_rr(self) -> float:
        return self.mean("RR")

    @property
    def mean_time(self) -> float:
        times = [trial.elapsed for trial in self.trials]
        return statistics.fmean(times) if times else 0.0

    def mean_stage_time(self, stage: str) -> float:
        times = [trial.timings.get(stage, 0.0) for trial in self.trials]
        return statistics.fmean(times) if times else 0.0

    def mean_counter(self, counter: str) -> float:
        """Mean of a pipeline counter ('pairs_generated', 'pairs_verified', ...)."""
        values = [trial.counters.get(counter, 0.0) for trial in self.trials]
        return statistics.fmean(values) if values else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "PC": self.mean_pc,
            "PQ": self.mean_pq,
            "RR": self.mean_rr,
            "F1": self.mean("F1"),
            "time_s": self.mean_time,
            "n_trials": float(self.n_trials),
        }


LinkerFactory = Callable[[int], object]


def run_experiment(
    name: str,
    make_linker: LinkerFactory,
    problem: LinkageProblem,
    n_trials: int = 3,
    base_seed: int = 0,
) -> ExperimentResult:
    """Run ``n_trials`` linkage runs of a freshly built linker per trial.

    ``make_linker(seed)`` must return an object with
    ``link(dataset_a, dataset_b) -> LinkageResult``; each trial gets seed
    ``base_seed + trial_index`` so randomized hash draws differ while the
    whole experiment stays reproducible.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    result = ExperimentResult(name=name)
    for trial in range(n_trials):
        seed = base_seed + trial
        linker = make_linker(seed)
        start = time.perf_counter()
        linkage = linker.link(problem.dataset_a, problem.dataset_b)
        elapsed = time.perf_counter() - start
        quality = evaluate_linkage(
            linkage.matches,
            problem.true_matches,
            linkage.n_candidates,
            problem.comparison_space,
        )
        result.trials.append(
            TrialResult(
                seed=seed,
                quality=quality,
                elapsed=elapsed,
                timings=dict(getattr(linkage, "timings", {})),
                matches=linkage.matches,
                counters=dict(getattr(linkage, "counters", {})),
            )
        )
    return result


def per_operation_completeness(
    result: ExperimentResult, problem: LinkageProblem
) -> dict[str, float]:
    """Mean PC restricted to pairs perturbed by each operation (Figure 11)."""
    out: dict[str, float] = {}
    for operation in Operation:
        subset = problem.matches_with_operation(operation)
        if not subset:
            continue
        values = [subset_completeness(trial.matches, subset) for trial in result.trials]
        out[operation.value] = statistics.fmean(values)
    return out


def sweep(
    label_values: Iterable[tuple[str, object]],
    make_linker: Callable[[object, int], object],
    problem: LinkageProblem,
    n_trials: int = 3,
    base_seed: int = 0,
) -> list[tuple[str, ExperimentResult]]:
    """Parameter sweep: one experiment per (label, value) point.

    ``make_linker(value, seed)`` builds the linker for one sweep point.
    Used by the K-sweep (Figure 8a) and the confidence-r sweep (Figure 7).
    """
    results = []
    for label, value in label_values:
        results.append(
            (
                label,
                run_experiment(
                    name=label,
                    make_linker=lambda seed, v=value: make_linker(v, seed),
                    problem=problem,
                    n_trials=n_trials,
                    base_seed=base_seed,
                ),
            )
        )
    return results
