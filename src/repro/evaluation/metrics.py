"""Blocking/matching quality measures (Section 6, "Quality measures").

With ``M`` the set of truly matching pairs, ``M̂`` the identified matches
and ``CR`` the candidate pairs formulated by blocking:

* Pairs Completeness  ``PC = |M̂ ∩ M| / |M|``          (recall against truth)
* Pairs Quality       ``PQ = |M̂ ∩ M| / |CR|``          (efficiency of blocking)
* Reduction Ratio     ``RR = 1 - |CR| / |A x B|``       (comparison-space cut)

Precision / recall / F1 of the final match set are included as well — they
are standard in the record-linkage literature [2] and useful for the
extension experiments.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LinkageQuality:
    """The full measurement bundle for one linkage run."""

    pairs_completeness: float
    pairs_quality: float
    reduction_ratio: float
    precision: float
    recall: float
    n_true_matches: int
    n_candidates: int
    n_matches: int
    n_true_positives: int

    @property
    def f1(self) -> float:
        # Both terms are non-negative ratios, so <= 0.0 is an exact
        # "both are zero" test without a float equality comparison.
        if self.precision + self.recall <= 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def as_dict(self) -> dict[str, float]:
        return {
            "PC": self.pairs_completeness,
            "PQ": self.pairs_quality,
            "RR": self.reduction_ratio,
            "precision": self.precision,
            "recall": self.recall,
            "F1": self.f1,
            "n_true_matches": float(self.n_true_matches),
            "n_candidates": float(self.n_candidates),
            "n_matches": float(self.n_matches),
        }


def pairs_completeness(found: set[tuple[int, int]], truth: set[tuple[int, int]]) -> float:
    """``|found ∩ truth| / |truth|``; defined as 1.0 for empty truth."""
    if not truth:
        return 1.0
    return len(found & truth) / len(truth)


def pairs_quality(
    found: set[tuple[int, int]], truth: set[tuple[int, int]], n_candidates: int
) -> float:
    """``|found ∩ truth| / |CR|``; defined as 0.0 when no candidates exist."""
    if n_candidates <= 0:
        return 0.0
    return len(found & truth) / n_candidates

def reduction_ratio(n_candidates: int, comparison_space: int) -> float:
    """``1 - |CR| / |A x B|``."""
    if comparison_space <= 0:
        raise ValueError(f"comparison space must be positive, got {comparison_space}")
    return 1.0 - n_candidates / comparison_space


def evaluate_linkage(
    matches: Iterable[tuple[int, int]],
    truth: set[tuple[int, int]],
    n_candidates: int,
    comparison_space: int,
) -> LinkageQuality:
    """Compute PC / PQ / RR / precision / recall for one linkage run.

    ``matches`` are the pairs the method *classified* as matching,
    ``n_candidates`` the number of candidate pairs blocking formulated
    (``|CR|``), and ``comparison_space`` is ``|A| * |B|``.
    """
    found = set(matches)
    true_positives = len(found & truth)
    precision = true_positives / len(found) if found else 0.0
    recall = true_positives / len(truth) if truth else 1.0
    return LinkageQuality(
        pairs_completeness=pairs_completeness(found, truth),
        pairs_quality=pairs_quality(found, truth, n_candidates),
        reduction_ratio=reduction_ratio(n_candidates, comparison_space),
        precision=precision,
        recall=recall,
        n_true_matches=len(truth),
        n_candidates=n_candidates,
        n_matches=len(found),
        n_true_positives=true_positives,
    )


def pairs_from_arrays(rows_a: np.ndarray, rows_b: np.ndarray) -> set[tuple[int, int]]:
    """Convert parallel index arrays into a set of (row_a, row_b) pairs."""
    return set(zip(rows_a.tolist(), rows_b.tolist()))


def subset_completeness(
    found: set[tuple[int, int]], truth_subset: set[tuple[int, int]]
) -> float:
    """PC restricted to a subset of the truth (Figure 11's per-operation PC)."""
    return pairs_completeness(found, truth_subset)
