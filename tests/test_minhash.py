"""Tests for repro.baselines.minhash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.minhash import MinHasher, MinHashLSH, collision_probability

SETS = st.sets(st.integers(0, 675), min_size=1, max_size=25).map(frozenset)


class TestMinHasher:
    def test_signature_shape(self):
        hasher = MinHasher(10, seed=0)
        assert hasher.signature([1, 2, 3]).shape == (10,)

    def test_signature_deterministic(self):
        hasher = MinHasher(5, seed=1)
        assert (hasher.signature([4, 9]) == hasher.signature([9, 4])).all()

    def test_bulk_matches_single(self):
        hasher = MinHasher(8, seed=2)
        sets = [frozenset({1, 5, 9}), frozenset({2}), frozenset(), frozenset({1, 5, 9})]
        bulk = hasher.signatures(sets)
        for i, s in enumerate(sets):
            assert (bulk[i] == hasher.signature(sorted(s))).all()

    def test_empty_set_sentinel(self):
        hasher = MinHasher(4, seed=3)
        assert (hasher.signature([]) == hasher.p).all()

    def test_subset_minimum_dominates(self):
        """min-hash of a union is the elementwise min of the parts."""
        hasher = MinHasher(6, seed=4)
        a, b = frozenset({1, 2}), frozenset({30, 40})
        sig_union = hasher.signature(sorted(a | b))
        expected = np.minimum(hasher.signature(sorted(a)), hasher.signature(sorted(b)))
        assert (sig_union == expected).all()

    def test_invalid_n_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(0)

    def test_prefix_fraction_validation(self):
        with pytest.raises(ValueError):
            MinHasher(4, prefix_fraction=0.0)
        with pytest.raises(ValueError):
            MinHasher(4, prefix_fraction=1.5)

    def test_prefix_one_equals_exact(self):
        exact = MinHasher(16, seed=9)
        truncated = MinHasher(16, seed=9, prefix_fraction=1.0)
        s = sorted({3, 77, 400})
        assert (exact.signature(s) == truncated.signature(s)).all()

    def test_small_prefix_produces_sentinels(self):
        """With a tiny prefix, most slots fail and hold the sentinel p."""
        hasher = MinHasher(200, seed=10, prefix_fraction=0.001)
        signature = hasher.signature(sorted({1, 2, 3}))
        assert (signature == hasher.p).mean() > 0.5

    def test_prefix_signatures_bulk_matches_single(self):
        hasher = MinHasher(8, seed=11, prefix_fraction=0.05)
        sets = [frozenset({1, 5, 9}), frozenset({2, 600})]
        bulk = hasher.signatures(sets)
        for i, s in enumerate(sets):
            assert (bulk[i] == hasher.signature(sorted(s))).all()

    @given(SETS, SETS, st.integers(0, 50))
    @settings(max_examples=25)
    def test_collision_rate_tracks_jaccard(self, s1, s2, seed):
        """Pr[minhash agreement] ~ Jaccard similarity (within CLT slack)."""
        hasher = MinHasher(400, seed=seed)
        agree = float(np.mean(hasher.signature(sorted(s1)) == hasher.signature(sorted(s2))))
        jaccard = len(s1 & s2) / len(s1 | s2)
        assert abs(agree - jaccard) < 0.15


class TestMinHashLSH:
    def test_band_keys_shape(self):
        lsh = MinHashLSH(k=5, n_tables=3, seed=0)
        keys = lsh.band_keys([frozenset({1}), frozenset({2})])
        assert len(keys) == 3
        assert all(k.shape == (2,) for k in keys)

    def test_identical_sets_collide_everywhere(self):
        lsh = MinHashLSH(k=5, n_tables=4, seed=1)
        keys = lsh.band_keys([frozenset({1, 2, 3}), frozenset({1, 2, 3})])
        for band in keys:
            assert band[0] == band[1]

    def test_disjoint_sets_rarely_collide(self):
        lsh = MinHashLSH(k=5, n_tables=4, seed=2)
        keys = lsh.band_keys([frozenset(range(50)), frozenset(range(100, 150))])
        agreements = sum(bool(band[0] == band[1]) for band in keys)
        assert agreements == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MinHashLSH(k=0, n_tables=1)
        with pytest.raises(ValueError):
            MinHashLSH(k=1, n_tables=0)


class TestCollisionProbability:
    def test_extremes(self):
        assert collision_probability(1.0, 5, 10) == pytest.approx(1.0)
        assert collision_probability(0.0, 5, 10) == 0.0

    def test_monotone_in_similarity(self):
        assert collision_probability(0.8, 5, 10) > collision_probability(0.5, 5, 10)

    def test_monotone_in_tables(self):
        assert collision_probability(0.5, 5, 20) > collision_probability(0.5, 5, 10)

    def test_invalid_similarity(self):
        with pytest.raises(ValueError):
            collision_probability(1.5, 5, 10)
