"""Tests for repro.evaluation.curves — threshold sweeps."""

import numpy as np
import pytest

from repro.evaluation.curves import ThresholdPoint, threshold_curve

ROWS_A = np.asarray([0, 1, 2, 3, 4])
ROWS_B = np.asarray([0, 1, 2, 3, 4])
DISTANCES = np.asarray([0, 2, 4, 6, 8])
TRUTH = {(0, 0), (1, 1), (2, 2), (9, 9)}  # (9, 9) was missed by blocking


@pytest.fixture
def curve():
    return threshold_curve(ROWS_A, ROWS_B, DISTANCES, TRUTH)


class TestThresholdCurve:
    def test_one_point_per_distinct_distance(self, curve):
        assert len(curve) == 5
        assert [p.threshold for p in curve] == [0, 2, 4, 6, 8]

    def test_monotone_matches(self, curve):
        matches = [p.n_matches for p in curve]
        assert matches == sorted(matches)
        assert matches[-1] == 5

    def test_pc_accounts_for_blocking_misses(self, curve):
        # All three blocked true pairs are within threshold 4; the fourth
        # true pair never appears, capping PC at 0.75.
        assert curve.at(4).pairs_completeness == pytest.approx(0.75)
        assert curve.at(8).pairs_completeness == pytest.approx(0.75)

    def test_precision_decreases_as_threshold_loosens(self, curve):
        assert curve.at(2).precision == pytest.approx(1.0)
        assert curve.at(8).precision == pytest.approx(3 / 5)

    def test_best_f1(self, curve):
        best = curve.best_f1()
        assert best.threshold == 4  # all true pairs in, no false positives yet
        assert best.precision == pytest.approx(1.0)

    def test_at_below_sweep(self, curve):
        point = curve.at(-1)
        assert point.n_matches == 0
        assert point.precision == 0.0

    def test_explicit_thresholds(self):
        curve = threshold_curve(
            ROWS_A, ROWS_B, DISTANCES, TRUTH, thresholds=np.asarray([3.0, 10.0])
        )
        assert [p.threshold for p in curve] == [3.0, 10.0]
        assert curve.points[0].n_matches == 2
        assert curve.points[1].n_matches == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            threshold_curve(ROWS_A, ROWS_B[:-1], DISTANCES, TRUTH)
        with pytest.raises(ValueError, match="truth"):
            threshold_curve(ROWS_A, ROWS_B, DISTANCES, set())

    def test_f1_of_point(self):
        point = ThresholdPoint(4, 4, 3, pairs_completeness=0.75, precision=0.75)
        assert point.f1 == pytest.approx(0.75)
        zero = ThresholdPoint(0, 0, 0, 0.0, 0.0)
        assert zero.f1 == 0.0


class TestEndToEndCurve:
    def test_curve_from_real_linkage(self, small_pl_problem):
        from repro.core.linker import CompactHammingLinker

        # Loose threshold so the curve has room on both sides of 4.
        linker = CompactHammingLinker.record_level(threshold=12, k=25, seed=3)
        result = linker.link(small_pl_problem.dataset_a, small_pl_problem.dataset_b)
        curve = threshold_curve(
            result.rows_a, result.rows_b, result.record_distances,
            small_pl_problem.true_matches,
        )
        derived = curve.at(4)  # the Section 5.1-derived threshold
        assert derived.pairs_completeness >= 0.9
        # Precision is depressed by household near-duplicates that truly
        # are identical records yet absent from the provenance truth.
        assert derived.precision >= 0.8
        # The derived threshold is within a whisker of the tuned optimum.
        assert derived.f1 >= curve.best_f1().f1 - 0.05