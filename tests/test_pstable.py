"""Tests for repro.baselines.pstable — the Euclidean LSH family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pstable import (
    EuclideanLSH,
    collision_probability,
    euclidean_lsh_parameters,
)


class TestCollisionProbability:
    def test_zero_distance_certain(self):
        assert collision_probability(0.0) == 1.0

    def test_monotone_decreasing(self):
        probs = [collision_probability(c) for c in (0.5, 1, 2, 4, 8, 16)]
        assert probs == sorted(probs, reverse=True)

    def test_range(self):
        for c in (0.1, 1.0, 10.0, 100.0):
            assert 0.0 < collision_probability(c) < 1.0

    def test_wider_buckets_collide_more(self):
        assert collision_probability(2.0, w=8.0) > collision_probability(2.0, w=2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            collision_probability(-1.0)
        with pytest.raises(ValueError):
            collision_probability(1.0, w=0.0)

    def test_monte_carlo_agreement(self):
        """Closed form matches simulation of the hash family."""
        rng = np.random.default_rng(0)
        c, w, trials = 3.0, 4.0, 40_000
        a = rng.standard_normal(trials)
        b = rng.uniform(0, w, trials)
        x, y = 0.0, c
        collide = np.floor((a * x + b) / w) == np.floor((a * y + b) / w)
        assert collide.mean() == pytest.approx(collision_probability(c, w), abs=0.01)

    def test_parameters_bundle(self):
        p, tables = euclidean_lsh_parameters(threshold=4.5, k=5, w=18.0)
        assert 0 < p < 1
        assert tables >= 1


class TestEuclideanLSH:
    @pytest.fixture
    def points(self):
        rng = np.random.default_rng(1)
        return rng.standard_normal((100, 8)) * 10

    def test_identical_points_always_candidates(self, points):
        lsh = EuclideanLSH(dim=8, k=4, n_tables=6, w=4.0, seed=2)
        lsh.index(points)
        rows_a, rows_b = lsh.candidate_pairs(points)
        pairs = set(zip(rows_a.tolist(), rows_b.tolist()))
        for i in range(100):
            assert (i, i) in pairs

    def test_match_filters_distance(self, points):
        lsh = EuclideanLSH(dim=8, k=4, n_tables=6, w=8.0, seed=3)
        lsh.index(points)
        noisy = points + np.random.default_rng(4).standard_normal(points.shape) * 0.1
        rows_a, rows_b, dists = lsh.match(noisy, threshold=2.0)
        assert (dists <= 2.0).all()
        for a, b, d in zip(rows_a, rows_b, dists):
            assert np.linalg.norm(points[a] - noisy[b]) == pytest.approx(d)

    def test_nearby_points_found(self, points):
        lsh = EuclideanLSH(dim=8, k=4, threshold=1.0, delta=0.1, w=8.0, seed=5)
        lsh.index(points)
        noisy = points + np.random.default_rng(6).standard_normal(points.shape) * 0.05
        rows_a, rows_b, __ = lsh.match(noisy, threshold=1.0)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        recall = sum((i, i) in found for i in range(100)) / 100
        assert recall >= 0.9

    def test_candidates_deduplicated(self, points):
        lsh = EuclideanLSH(dim=8, k=2, n_tables=10, w=20.0, seed=7)
        lsh.index(points)
        rows_a, rows_b = lsh.candidate_pairs(points)
        encoded = rows_a * 100 + rows_b
        assert len(np.unique(encoded)) == len(encoded)

    def test_query_before_index_rejected(self, points):
        lsh = EuclideanLSH(dim=8, k=2, n_tables=2, seed=8)
        with pytest.raises(RuntimeError):
            lsh.candidate_pairs(points)

    def test_dimension_validated(self, points):
        lsh = EuclideanLSH(dim=4, k=2, n_tables=2, seed=9)
        with pytest.raises(ValueError):
            lsh.index(points)  # dim 8 points into dim 4 index

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EuclideanLSH(dim=0, k=2, n_tables=2)
        with pytest.raises(ValueError):
            EuclideanLSH(dim=2, k=0, n_tables=2)
        with pytest.raises(ValueError):
            EuclideanLSH(dim=2, k=2)  # neither threshold nor n_tables

    @given(st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_keys_deterministic(self, seed):
        points = np.random.default_rng(seed).standard_normal((5, 3))
        l1 = EuclideanLSH(dim=3, k=2, n_tables=2, seed=42)
        l2 = EuclideanLSH(dim=3, k=2, n_tables=2, seed=42)
        assert np.array_equal(l1._keys(points, 0), l2._keys(points, 0))
