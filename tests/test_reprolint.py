"""Tests for repro.analysis — the reprolint static-analysis pass.

Each RL00x rule gets at least one positive fixture (snippet that must
trigger it) and one negative fixture (snippet that must stay clean),
plus suppression coverage and a self-hosting test asserting the repo's
own ``src/`` tree lints clean with the shipped pyproject configuration.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    LintEngine,
    lint_paths,
    load_config,
    render_json,
    render_text,
)
from repro.analysis.__main__ import main as lint_main
from repro.analysis.config import RuleConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

# A path inside the fictional lint scope: RL003/RL004 path scoping makes
# rule applicability depend on where a module lives, so fixtures lint as
# if they sat in src/repro/hamming/.
SCOPED = "src/repro/hamming/fixture.py"
UNSCOPED = "src/repro/data/fixture.py"


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


@pytest.fixture
def engine():
    return LintEngine(LintConfig())


class TestRL001UnseededRandomness:
    def test_stdlib_global_state_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "import random\nx = random.random()\n")
        assert rule_ids(findings) == ["RL001"]

    def test_numpy_legacy_global_state_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "import numpy as np\nx = np.random.rand(4)\n")
        assert rule_ids(findings) == ["RL001"]

    def test_unseeded_default_rng_triggers(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert rule_ids(findings) == ["RL001"]

    def test_none_seed_counts_as_unseeded(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng(None)\n"
        )
        assert rule_ids(findings) == ["RL001"]

    def test_seeded_default_rng_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng(42)\n"
        )
        assert findings == []

    def test_seed_keyword_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        )
        assert findings == []

    def test_generator_methods_are_clean(self, engine):
        # Draws from an explicit Generator object are exactly the fix.
        findings = engine.lint_source(
            SCOPED,
            "import numpy as np\nrng = np.random.default_rng(1)\nx = rng.random()\n",
        )
        assert findings == []

    def test_tests_are_out_of_scope(self, engine):
        findings = engine.lint_source(
            "tests/test_fixture.py", "import random\nx = random.random()\n"
        )
        assert findings == []


class TestRL002DynamicExecution:
    def test_eval_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "value = eval('1 + 1')\n")
        assert rule_ids(findings) == ["RL002"]

    def test_exec_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "exec('x = 1')\n")
        assert rule_ids(findings) == ["RL002"]

    def test_literal_eval_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import ast\nvalue = ast.literal_eval('[1, 2]')\n"
        )
        assert findings == []


class TestRL003FloatEquality:
    def test_float_literal_equality_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "ok = p == 0.5\n")
        assert rule_ids(findings) == ["RL003"]

    def test_division_equality_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "ok = p != 1 / 3\n")
        assert rule_ids(findings) == ["RL003"]

    def test_float_call_equality_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "ok = float(x) == y\n")
        assert rule_ids(findings) == ["RL003"]

    def test_integer_equality_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "ok = distance == 4\n")
        assert findings == []

    def test_only_runs_in_probability_modules(self, engine):
        findings = engine.lint_source(UNSCOPED, "ok = p == 0.5\n")
        assert findings == []

    def test_tolerance_comparison_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import math\nok = math.isclose(p, 1 / 3)\n"
        )
        assert findings == []


class TestRL004PublicAnnotations:
    def test_unannotated_public_function_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def distance(a, b):\n    return a\n")
        assert rule_ids(findings) == ["RL004"]
        assert "distance" in findings[0].message

    def test_missing_return_annotation_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(a: int):\n    return a\n")
        assert rule_ids(findings) == ["RL004"]
        assert "return" in findings[0].message

    def test_fully_annotated_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "def f(a: int, b: str = 'x') -> int:\n    return a\n")
        assert findings == []

    def test_private_functions_are_skipped(self, engine):
        findings = engine.lint_source(SCOPED, "def _helper(a):\n    return a\n")
        assert findings == []

    def test_nested_functions_are_skipped(self, engine):
        code = "def outer() -> None:\n    def inner(x):\n        return x\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_self_needs_no_annotation(self, engine):
        code = "class C:\n    def method(self, x: int) -> int:\n        return x\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_staticmethod_first_arg_needs_annotation(self, engine):
        code = (
            "class C:\n"
            "    @staticmethod\n"
            "    def make(x) -> int:\n"
            "        return x\n"
        )
        findings = engine.lint_source(SCOPED, code)
        assert rule_ids(findings) == ["RL004"]

    def test_outside_src_repro_is_skipped(self, engine):
        findings = engine.lint_source("scripts/tool.py", "def f(a):\n    return a\n")
        assert findings == []


class TestRL005MutableDefaults:
    def test_list_default_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: list = []) -> None:\n    pass\n")
        assert rule_ids(findings) == ["RL005"]

    def test_dict_call_default_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: dict = dict()) -> None:\n    pass\n")
        assert rule_ids(findings) == ["RL005"]

    def test_kwonly_default_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(*, xs: dict = {}) -> None:\n    pass\n")
        assert rule_ids(findings) == ["RL005"]

    def test_none_default_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: list | None = None) -> None:\n    pass\n")
        assert findings == []

    def test_tuple_default_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: tuple = ()) -> None:\n    pass\n")
        assert findings == []


class TestRL006PrintCalls:
    def test_print_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "print('hello')\n")
        assert rule_ids(findings) == ["RL006"]

    def test_emit_is_clean(self, engine):
        code = "from repro.evaluation.reporting import emit\nemit('hello')\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_configured_exclude_skips_rule(self):
        config = LintConfig(
            rule_configs={"RL006": RuleConfig(exclude=("examples/*",))}
        )
        engine = LintEngine(config)
        findings = engine.lint_source("examples/demo.py", "print('hello')\n")
        assert findings == []


class TestSuppression:
    def test_disable_comment_silences_rule(self, engine):
        findings = engine.lint_source(
            SCOPED, "x = eval('1')  # reprolint: disable=RL002\n"
        )
        assert findings == []

    def test_disable_is_rule_specific(self, engine):
        findings = engine.lint_source(
            SCOPED, "x = eval('1')  # reprolint: disable=RL006\n"
        )
        assert rule_ids(findings) == ["RL002"]

    def test_disable_accepts_multiple_ids(self, engine):
        code = "print(eval('1'))  # reprolint: disable=RL002, RL006\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_marker_inside_string_is_not_a_suppression(self, engine):
        code = 'x = eval("# reprolint: disable=RL002")\n'
        findings = engine.lint_source(SCOPED, code)
        assert rule_ids(findings) == ["RL002"]


class TestConfig:
    def test_select_limits_rules(self):
        engine = LintEngine(LintConfig(select=("RL002",)))
        findings = engine.lint_source(SCOPED, "print(eval('1'))\n")
        assert rule_ids(findings) == ["RL002"]

    def test_ignore_drops_rules(self):
        engine = LintEngine(LintConfig(ignore=("RL006",)))
        findings = engine.lint_source(SCOPED, "print('x')\n")
        assert findings == []

    def test_load_config_reads_pyproject(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert "RL003" in config.rule_configs
        assert any("hamming" in glob for glob in config.rule_configs["RL003"].include)

    def test_syntax_error_reports_rl000(self, engine):
        findings = engine.lint_source(SCOPED, "def broken(:\n")
        assert rule_ids(findings) == ["RL000"]


class TestReporting:
    def test_text_report_lists_findings(self, engine):
        findings = engine.lint_source(SCOPED, "print('x')\n")
        text = render_text(findings)
        assert "RL006" in text and SCOPED in text and "1 finding" in text

    def test_json_report_round_trips(self, engine):
        findings = engine.lint_source(SCOPED, "print('x')\n")
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "RL006"
        assert payload["findings"][0]["line"] == 1

    def test_clean_run_text(self):
        assert "no findings" in render_text([])


class TestCommandLine:
    def test_module_entry_point_clean_tree(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        assert lint_main([str(target)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_status_one_on_findings(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        assert lint_main([str(target)]) == 1
        assert "RL002" in capsys.readouterr().out

    def test_select_and_ignore_flags(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("print(eval('1'))\n")
        assert lint_main([str(target), "--ignore", "RL002,RL006"]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--select", "RL006"]) == 1
        assert "RL006" in capsys.readouterr().out

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        assert lint_main([str(target), "--select", "RL999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "absent.py")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_json_format_flag(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        assert lint_main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "no findings" in capsys.readouterr().out


class TestSelfHosting:
    def test_src_tree_is_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], render_text(findings)

    def test_python_dash_m_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no findings" in result.stdout
