"""Tests for repro.analysis — the reprolint static-analysis pass.

Each RL00x rule gets at least one positive fixture (snippet that must
trigger it) and one negative fixture (snippet that must stay clean),
plus suppression coverage and a self-hosting test asserting the repo's
own ``src/`` tree lints clean with the shipped pyproject configuration.
(The whole-program rules RL101-RL105 are covered in
test_project_lint.py; here they only appear through the CLI surface:
severity, baseline, cache, SARIF.)
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    LintEngine,
    lint_paths,
    load_config,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.__main__ import main as lint_main
from repro.analysis.cache import LintCache, config_fingerprint
from repro.analysis.config import RuleConfig
from repro.analysis.engine import all_rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent

# A path inside the fictional lint scope: RL003/RL004 path scoping makes
# rule applicability depend on where a module lives, so fixtures lint as
# if they sat in src/repro/hamming/.
SCOPED = "src/repro/hamming/fixture.py"
UNSCOPED = "src/repro/data/fixture.py"


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


@pytest.fixture
def engine():
    return LintEngine(LintConfig())


class TestRL001UnseededRandomness:
    def test_stdlib_global_state_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "import random\nx = random.random()\n")
        assert rule_ids(findings) == ["RL001"]

    def test_numpy_legacy_global_state_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "import numpy as np\nx = np.random.rand(4)\n")
        assert rule_ids(findings) == ["RL001"]

    def test_unseeded_default_rng_triggers(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert rule_ids(findings) == ["RL001"]

    def test_none_seed_counts_as_unseeded(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng(None)\n"
        )
        assert rule_ids(findings) == ["RL001"]

    def test_seeded_default_rng_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng(42)\n"
        )
        assert findings == []

    def test_seed_keyword_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        )
        assert findings == []

    def test_generator_methods_are_clean(self, engine):
        # Draws from an explicit Generator object are exactly the fix.
        findings = engine.lint_source(
            SCOPED,
            "import numpy as np\nrng = np.random.default_rng(1)\nx = rng.random()\n",
        )
        assert findings == []

    def test_tests_are_out_of_scope(self, engine):
        findings = engine.lint_source(
            "tests/test_fixture.py", "import random\nx = random.random()\n"
        )
        assert findings == []


class TestRL002DynamicExecution:
    def test_eval_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "value = eval('1 + 1')\n")
        assert rule_ids(findings) == ["RL002"]

    def test_exec_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "exec('x = 1')\n")
        assert rule_ids(findings) == ["RL002"]

    def test_literal_eval_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import ast\nvalue = ast.literal_eval('[1, 2]')\n"
        )
        assert findings == []


class TestRL003FloatEquality:
    def test_float_literal_equality_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "ok = p == 0.5\n")
        assert rule_ids(findings) == ["RL003"]

    def test_division_equality_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "ok = p != 1 / 3\n")
        assert rule_ids(findings) == ["RL003"]

    def test_float_call_equality_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "ok = float(x) == y\n")
        assert rule_ids(findings) == ["RL003"]

    def test_integer_equality_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "ok = distance == 4\n")
        assert findings == []

    def test_only_runs_in_probability_modules(self, engine):
        findings = engine.lint_source(UNSCOPED, "ok = p == 0.5\n")
        assert findings == []

    def test_tolerance_comparison_is_clean(self, engine):
        findings = engine.lint_source(
            SCOPED, "import math\nok = math.isclose(p, 1 / 3)\n"
        )
        assert findings == []


class TestRL004PublicAnnotations:
    def test_unannotated_public_function_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def distance(a, b):\n    return a\n")
        assert rule_ids(findings) == ["RL004"]
        assert "distance" in findings[0].message

    def test_missing_return_annotation_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(a: int):\n    return a\n")
        assert rule_ids(findings) == ["RL004"]
        assert "return" in findings[0].message

    def test_fully_annotated_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "def f(a: int, b: str = 'x') -> int:\n    return a\n")
        assert findings == []

    def test_private_functions_are_skipped(self, engine):
        findings = engine.lint_source(SCOPED, "def _helper(a):\n    return a\n")
        assert findings == []

    def test_nested_functions_are_skipped(self, engine):
        code = "def outer() -> None:\n    def inner(x):\n        return x\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_self_needs_no_annotation(self, engine):
        code = "class C:\n    def method(self, x: int) -> int:\n        return x\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_staticmethod_first_arg_needs_annotation(self, engine):
        code = (
            "class C:\n"
            "    @staticmethod\n"
            "    def make(x) -> int:\n"
            "        return x\n"
        )
        findings = engine.lint_source(SCOPED, code)
        assert rule_ids(findings) == ["RL004"]

    def test_outside_src_repro_is_skipped(self, engine):
        findings = engine.lint_source("scripts/tool.py", "def f(a):\n    return a\n")
        assert findings == []


class TestRL005MutableDefaults:
    def test_list_default_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: list = []) -> None:\n    pass\n")
        assert rule_ids(findings) == ["RL005"]

    def test_dict_call_default_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: dict = dict()) -> None:\n    pass\n")
        assert rule_ids(findings) == ["RL005"]

    def test_kwonly_default_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "def f(*, xs: dict = {}) -> None:\n    pass\n")
        assert rule_ids(findings) == ["RL005"]

    def test_none_default_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: list | None = None) -> None:\n    pass\n")
        assert findings == []

    def test_tuple_default_is_clean(self, engine):
        findings = engine.lint_source(SCOPED, "def f(xs: tuple = ()) -> None:\n    pass\n")
        assert findings == []


class TestRL006PrintCalls:
    def test_print_triggers(self, engine):
        findings = engine.lint_source(SCOPED, "print('hello')\n")
        assert rule_ids(findings) == ["RL006"]

    def test_emit_is_clean(self, engine):
        code = "from repro.evaluation.reporting import emit\nemit('hello')\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_configured_exclude_skips_rule(self):
        config = LintConfig(
            rule_configs={"RL006": RuleConfig(exclude=("examples/*",))}
        )
        engine = LintEngine(config)
        findings = engine.lint_source("examples/demo.py", "print('hello')\n")
        assert findings == []


class TestSuppression:
    def test_disable_comment_silences_rule(self, engine):
        findings = engine.lint_source(
            SCOPED, "x = eval('1')  # reprolint: disable=RL002\n"
        )
        assert findings == []

    def test_disable_is_rule_specific(self, engine):
        findings = engine.lint_source(
            SCOPED, "x = eval('1')  # reprolint: disable=RL006\n"
        )
        assert rule_ids(findings) == ["RL002"]

    def test_disable_accepts_multiple_ids(self, engine):
        code = "print(eval('1'))  # reprolint: disable=RL002, RL006\n"
        findings = engine.lint_source(SCOPED, code)
        assert findings == []

    def test_marker_inside_string_is_not_a_suppression(self, engine):
        code = 'x = eval("# reprolint: disable=RL002")\n'
        findings = engine.lint_source(SCOPED, code)
        assert rule_ids(findings) == ["RL002"]


class TestConfig:
    def test_select_limits_rules(self):
        engine = LintEngine(LintConfig(select=("RL002",)))
        findings = engine.lint_source(SCOPED, "print(eval('1'))\n")
        assert rule_ids(findings) == ["RL002"]

    def test_ignore_drops_rules(self):
        engine = LintEngine(LintConfig(ignore=("RL006",)))
        findings = engine.lint_source(SCOPED, "print('x')\n")
        assert findings == []

    def test_load_config_reads_pyproject(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert "RL003" in config.rule_configs
        assert any("hamming" in glob for glob in config.rule_configs["RL003"].include)

    def test_syntax_error_reports_rl000(self, engine):
        findings = engine.lint_source(SCOPED, "def broken(:\n")
        assert rule_ids(findings) == ["RL000"]


class TestReporting:
    def test_text_report_lists_findings(self, engine):
        findings = engine.lint_source(SCOPED, "print('x')\n")
        text = render_text(findings)
        assert "RL006" in text and SCOPED in text and "1 finding" in text

    def test_json_report_round_trips(self, engine):
        findings = engine.lint_source(SCOPED, "print('x')\n")
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "RL006"
        assert payload["findings"][0]["line"] == 1

    def test_clean_run_text(self):
        assert "no findings" in render_text([])


class TestCommandLine:
    def test_module_entry_point_clean_tree(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        assert lint_main([str(target)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_status_one_on_findings(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        assert lint_main([str(target)]) == 1
        assert "RL002" in capsys.readouterr().out

    def test_select_and_ignore_flags(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("print(eval('1'))\n")
        assert lint_main([str(target), "--ignore", "RL002,RL006"]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--select", "RL006"]) == 1
        assert "RL006" in capsys.readouterr().out

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        assert lint_main([str(target), "--select", "RL999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "absent.py")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_json_format_flag(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        assert lint_main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "no findings" in capsys.readouterr().out


def _fresh_cache(tmp_path, config, name="cache.json"):
    fingerprint = config_fingerprint(config, sorted(all_rule_ids()))
    return LintCache.load(tmp_path / name, fingerprint)


class TestDeterminism:
    """lint_paths output is sorted and deduplicated (satellite 1)."""

    def _tree(self, tmp_path):
        (tmp_path / "b_mod.py").write_text("x = eval('1')\n")
        (tmp_path / "a_mod.py").write_text("print('x')\ny = eval('2')\n")
        return tmp_path

    def test_sorted_by_path_line_col_rule(self, tmp_path):
        tree = self._tree(tmp_path)
        findings = lint_paths([tree], LintConfig())
        keys = [(f.path, f.line, f.col, f.rule_id) for f in findings]
        assert keys == sorted(keys)
        assert [f.rule_id for f in findings] == ["RL006", "RL002", "RL002"]

    def test_argument_order_does_not_matter(self, tmp_path):
        tree = self._tree(tmp_path)
        a, b = tree / "a_mod.py", tree / "b_mod.py"
        assert lint_paths([a, b], LintConfig()) == lint_paths([b, a], LintConfig())

    def test_overlapping_paths_deduplicate(self, tmp_path):
        tree = self._tree(tmp_path)
        once = lint_paths([tree], LintConfig())
        twice = lint_paths([tree, tree / "a_mod.py", tree], LintConfig())
        assert twice == once


class TestWithOverrides:
    """CLI --select/--ignore precedence over pyproject (satellite 4)."""

    BASE = LintConfig(
        select=("RL001", "RL002"),
        ignore=("RL006",),
        exclude=("build/*",),
        rule_configs={"RL003": RuleConfig(include=("hamming/*",))},
    )

    def test_select_overrides_file_select(self):
        assert self.BASE.with_overrides(select=["RL004"]).select == ("RL004",)

    def test_empty_select_keeps_file_select(self):
        assert self.BASE.with_overrides(select=[]).select == ("RL001", "RL002")
        assert self.BASE.with_overrides().select == ("RL001", "RL002")

    def test_ignore_overrides_file_ignore(self):
        assert self.BASE.with_overrides(ignore=["RL002"]).ignore == ("RL002",)

    def test_empty_ignore_keeps_file_ignore(self):
        assert self.BASE.with_overrides(ignore=[]).ignore == ("RL006",)
        assert self.BASE.with_overrides(ignore=None).ignore == ("RL006",)

    def test_scoping_and_exclude_survive_overrides(self):
        derived = self.BASE.with_overrides(select=["RL003"], ignore=["RL001"])
        assert derived.exclude == ("build/*",)
        assert derived.rule_configs["RL003"].include == ("hamming/*",)


class TestRuleGlobScoping:
    """Per-rule include/exclude glob semantics (satellite 4)."""

    def test_include_is_suffix_matched(self):
        config = LintConfig(rule_configs={"RL002": RuleConfig(include=("hamming/*",))})
        engine = LintEngine(config)
        assert rule_ids(engine.lint_source(SCOPED, "x = eval('1')\n")) == ["RL002"]
        assert engine.lint_source(UNSCOPED, "x = eval('1')\n") == []

    def test_configured_include_replaces_rule_default(self):
        # RL003's default include covers hamming/*; narrowing it to
        # core/sizing.py must switch hamming off.
        config = LintConfig(rule_configs={"RL003": RuleConfig(include=("core/sizing.py",))})
        engine = LintEngine(config)
        assert engine.lint_source(SCOPED, "ok = p == 0.5\n") == []
        assert rule_ids(
            engine.lint_source("src/repro/core/sizing.py", "ok = p == 0.5\n")
        ) == ["RL003"]

    def test_exclude_beats_include(self):
        config = LintConfig(
            rule_configs={
                "RL002": RuleConfig(include=("hamming/*",), exclude=("*/fixture.py",))
            }
        )
        engine = LintEngine(config)
        assert engine.lint_source(SCOPED, "x = eval('1')\n") == []

    def test_exact_file_glob(self):
        config = LintConfig(rule_configs={"RL002": RuleConfig(exclude=("hamming/fixture.py",))})
        engine = LintEngine(config)
        assert engine.lint_source(SCOPED, "x = eval('1')\n") == []
        assert rule_ids(
            engine.lint_source("src/repro/hamming/other.py", "x = eval('1')\n")
        ) == ["RL002"]


class TestSeverity:
    def test_default_severity_is_error(self, engine):
        findings = engine.lint_source(SCOPED, "x = eval('1')\n")
        assert [f.severity for f in findings] == ["error"]

    def test_config_downgrades_to_warn(self):
        config = LintConfig(rule_configs={"RL002": RuleConfig(severity="warn")})
        findings = LintEngine(config).lint_source(SCOPED, "x = eval('1')\n")
        assert [f.severity for f in findings] == ["warn"]

    def test_warn_marker_in_text_output(self):
        config = LintConfig(rule_configs={"RL002": RuleConfig(severity="warn")})
        findings = LintEngine(config).lint_source(SCOPED, "x = eval('1')\n")
        assert "[warn]" in render_text(findings)

    def test_warn_only_run_exits_zero(self, tmp_path, capsys, monkeypatch):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.reprolint.rules.RL002]\nseverity = \"warn\"\n"
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(target), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "RL002" in out and "[warn]" in out

    def test_severity_survives_json(self):
        config = LintConfig(rule_configs={"RL002": RuleConfig(severity="warn")})
        findings = LintEngine(config).lint_source(SCOPED, "x = eval('1')\n")
        payload = json.loads(render_json(findings))
        assert payload["findings"][0]["severity"] == "warn"


class TestBaseline:
    def test_baseline_round_trip(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(target), "--no-cache", "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert lint_main(
            [str(target), "--no-cache", "--baseline", str(baseline)]
        ) == 0
        assert "no findings" in capsys.readouterr().out

    def test_new_findings_still_fail(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        baseline = tmp_path / "baseline.json"
        lint_main([str(target), "--no-cache", "--write-baseline", str(baseline)])
        # Baseline keys are (path, rule, message) -- a second eval() in the
        # same file is the same accepted debt, so introduce a new rule hit.
        target.write_text("x = eval('1')\nprint('x')\n")
        capsys.readouterr()
        assert lint_main(
            [str(target), "--no-cache", "--baseline", str(baseline)]
        ) == 1
        out = capsys.readouterr().out
        assert "1 finding" in out

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{\"not\": \"a baseline\"}")
        assert lint_main(
            [str(target), "--no-cache", "--baseline", str(baseline)]
        ) == 2
        assert "baseline" in capsys.readouterr().err


class TestSarifOutput:
    def _findings(self):
        config = LintConfig(rule_configs={"RL006": RuleConfig(severity="warn")})
        return LintEngine(config).lint_source(SCOPED, "print(eval('1'))\n")

    def test_sarif_validates_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(
            (REPO_ROOT / "tests" / "data" / "sarif-2.1.0-subset.json").read_text()
        )
        payload = json.loads(render_sarif(self._findings()))
        jsonschema.validate(payload, schema)

    def test_empty_run_also_validates(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(
            (REPO_ROOT / "tests" / "data" / "sarif-2.1.0-subset.json").read_text()
        )
        jsonschema.validate(json.loads(render_sarif([])), schema)

    def test_result_fields(self):
        payload = json.loads(render_sarif(self._findings()))
        run = payload["runs"][0]
        assert payload["version"] == "2.1.0"
        assert run["tool"]["driver"]["name"] == "reprolint"
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels == {"RL002": "error", "RL006": "warning"}
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == SCOPED
        assert location["region"]["startLine"] == 1
        catalogue = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert catalogue[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_cli_sarif_format(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        assert lint_main([str(target), "--no-cache", "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"][0]["ruleId"] == "RL002"


class TestIncrementalCache:
    def test_warm_run_skips_parsing(self, tmp_path):
        (tmp_path / "one.py").write_text("x = eval('1')\n")
        (tmp_path / "two.py").write_text("X: int = 1\n")
        config = LintConfig()
        cold_stats, warm_stats = {}, {}
        cold = lint_paths(
            [tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=cold_stats
        )
        warm = lint_paths(
            [tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=warm_stats
        )
        assert warm == cold
        assert cold_stats["parsed"] == 2 and cold_stats["cache_hits"] == 0
        assert warm_stats["parsed"] == 0 and warm_stats["cache_hits"] == 2
        assert cold_stats["project_runs"] == 1 and warm_stats["project_runs"] == 0

    def test_edited_file_reparsed_alone(self, tmp_path):
        one, two = tmp_path / "one.py", tmp_path / "two.py"
        one.write_text("x = eval('1')\n")
        two.write_text("X: int = 1\n")
        config = LintConfig()
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config))
        one.write_text("x = eval('2')\n")
        stats = {}
        findings = lint_paths(
            [tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=stats
        )
        assert stats["parsed"] == 1 and stats["cache_hits"] == 1
        assert [f.rule_id for f in findings] == ["RL002"]

    def test_comment_edit_skips_project_phase(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("X: int = 1\n")
        config = LintConfig()
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config))
        # Re-hash the file without changing its module summary: the
        # per-file entry misses, but the whole-program key is unchanged.
        target.write_text("# a comment\nX: int = 1\n")
        stats = {}
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=stats)
        assert stats["parsed"] == 1
        assert stats["project_runs"] == 0

    def test_import_graph_change_reruns_project_phase(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("X: int = 1\n")
        config = LintConfig()
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config))
        target.write_text("import json\nX: int = 1\n")
        stats = {}
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=stats)
        assert stats["project_runs"] == 1

    def test_config_change_invalidates_cache(self, tmp_path):
        (tmp_path / "one.py").write_text("x = eval('1')\n")
        config = LintConfig()
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config))
        narrowed = LintConfig(select=("RL006",))
        stats = {}
        findings = lint_paths(
            [tmp_path], narrowed, cache=_fresh_cache(tmp_path, narrowed), stats=stats
        )
        assert stats["parsed"] == 1 and stats["cache_hits"] == 0
        assert findings == []

    def test_structurally_corrupt_cache_degrades_to_cold(self, tmp_path):
        # Valid JSON with the right version/fingerprint but garbage
        # entries: the loader must fall back to an empty cache.
        (tmp_path / "one.py").write_text("x = eval('1')\n")
        config = LintConfig()
        cache = _fresh_cache(tmp_path, config)
        import json as json_mod

        from repro.analysis.cache import CACHE_VERSION

        (tmp_path / "cache.json").write_text(
            json_mod.dumps(
                {
                    "version": CACHE_VERSION,
                    "fingerprint": cache.fingerprint,
                    "files": {"one.py": {"bogus": True}},
                }
            )
        )
        stats = {}
        findings = lint_paths(
            [tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=stats
        )
        assert stats["parsed"] == 1 and stats["cache_hits"] == 0
        assert [f.rule_id for f in findings] == ["RL002"]

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        (tmp_path / "one.py").write_text("x = eval('1')\n")
        (tmp_path / "cache.json").write_text("{broken json")
        config = LintConfig()
        stats = {}
        findings = lint_paths(
            [tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=stats
        )
        assert stats["parsed"] == 1
        assert [f.rule_id for f in findings] == ["RL002"]

    def test_cli_no_cache_flag(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        cache_path = tmp_path / "cache.json"
        assert lint_main([str(target), "--cache-path", str(cache_path)]) == 1
        assert cache_path.exists()
        capsys.readouterr()
        other = tmp_path / "nocache.json"
        assert lint_main([str(target), "--no-cache", "--cache-path", str(other)]) == 1
        assert not other.exists()

    def test_cli_stats_flag(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        cache_path = tmp_path / "cache.json"
        lint_main([str(target), "--cache-path", str(cache_path), "--stats"])
        capsys.readouterr()
        lint_main([str(target), "--cache-path", str(cache_path), "--stats"])
        err = capsys.readouterr().err
        assert "1 cache hit(s)" in err


class TestCacheMigration:
    """Version bumps and config edits must drop the cache cleanly.

    Three distinct invalidation channels: the cache format version
    (changes the fingerprint *and* the stored ``version`` field), the
    module-summary schema version (the fingerprint captured at import
    time stays valid, so stale summaries must be rejected entry by
    entry), and the ``[tool.reprolint]`` table (flows into the config
    fingerprint via the ``LintConfig`` repr).
    """

    def test_cache_version_bump_forces_cold_run(self, tmp_path, monkeypatch):
        (tmp_path / "one.py").write_text("x = eval('1')\n")
        config = LintConfig()
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config))
        import repro.analysis.cache as cache_mod

        monkeypatch.setattr(
            cache_mod, "CACHE_VERSION", cache_mod.CACHE_VERSION + 1
        )
        stats = {}
        findings = lint_paths(
            [tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=stats
        )
        assert stats["parsed"] == 1 and stats["cache_hits"] == 0
        assert [f.rule_id for f in findings] == ["RL002"]

    def test_summary_version_bump_rejects_stored_summaries(
        self, tmp_path, monkeypatch
    ):
        # Patch only the extractor's version: repro.analysis.cache holds
        # its own imported SUMMARY_VERSION binding, so the cache
        # fingerprint still matches and the file is *accepted* — but
        # every stored ModuleSummary is now stale and from_dict rejects
        # it, forcing a clean re-parse instead of replaying stale facts.
        (tmp_path / "one.py").write_text("x = eval('1')\n")
        config = LintConfig()
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config))
        import repro.analysis.project as project_mod

        monkeypatch.setattr(
            project_mod, "SUMMARY_VERSION", project_mod.SUMMARY_VERSION + 1
        )
        stats = {}
        findings = lint_paths(
            [tmp_path], config, cache=_fresh_cache(tmp_path, config), stats=stats
        )
        assert stats["parsed"] == 1 and stats["cache_hits"] == 0
        assert [f.rule_id for f in findings] == ["RL002"]

    def test_new_rule_id_changes_fingerprint(self, tmp_path):
        (tmp_path / "one.py").write_text("x = eval('1')\n")
        config = LintConfig()
        lint_paths([tmp_path], config, cache=_fresh_cache(tmp_path, config))
        grown = config_fingerprint(config, sorted([*all_rule_ids(), "RL999"]))
        stats = {}
        lint_paths(
            [tmp_path],
            config,
            cache=LintCache.load(tmp_path / "cache.json", grown),
            stats=stats,
        )
        assert stats["parsed"] == 1 and stats["cache_hits"] == 0

    def test_pyproject_edit_forces_cold_run(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = eval('1')\n")
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.reprolint]\n")
        config = load_config(pyproject)
        lint_paths([target], config, cache=_fresh_cache(tmp_path, config))
        pyproject.write_text(
            '[tool.reprolint]\n[tool.reprolint.rules.RL002]\nseverity = "warn"\n'
        )
        edited = load_config(pyproject)
        stats = {}
        findings = lint_paths(
            [target], edited, cache=_fresh_cache(tmp_path, edited), stats=stats
        )
        assert stats["parsed"] == 1 and stats["cache_hits"] == 0
        assert [f.severity for f in findings] == ["warn"]


class TestOutputFlag:
    """``repro lint --output FILE`` writes the report file directly."""

    def test_output_writes_report_file(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = eval('1')\n")
        report = tmp_path / "reprolint.sarif"
        status = lint_main(
            [str(target), "--no-cache", "--format", "sarif",
             "--output", str(report)]
        )
        assert status == 1  # findings still gate the exit code
        assert capsys.readouterr().out == ""  # report went to the file
        payload = json.loads(report.read_text())
        assert payload["runs"][0]["results"][0]["ruleId"] == "RL002"

    def test_output_with_stats_keeps_streams_separate(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        report = tmp_path / "report.json"
        status = lint_main(
            [str(target), "--no-cache", "--format", "json", "--stats",
             "--output", str(report)]
        )
        captured = capsys.readouterr()
        assert status == 0
        assert captured.out == ""
        assert "file phase" in captured.err
        assert json.loads(report.read_text()) == {"count": 0, "findings": []}

    def test_unwritable_output_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        missing_dir = tmp_path / "no" / "such" / "dir" / "out.json"
        status = lint_main(
            [str(target), "--no-cache", "--output", str(missing_dir)]
        )
        assert status == 2
        assert "cannot write" in capsys.readouterr().err


class TestSelfHosting:
    def test_src_tree_is_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], render_text(findings)

    def test_python_dash_m_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no findings" in result.stdout
