"""Tests for repro.baselines.harra."""

import pytest

from repro.baselines.harra import HarraLinker, record_bigram_set
from repro.core.qgram import QGramScheme
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.metrics import evaluate_linkage
from repro.text.alphabet import TEXT_ALPHABET

SCHEME = QGramScheme(alphabet=TEXT_ALPHABET)


class TestRecordBigramSet:
    def test_merges_attributes(self):
        merged = record_bigram_set(("AB", "CD"), SCHEME)
        assert merged == SCHEME.index_set("AB") | SCHEME.index_set("CD")

    def test_cross_attribute_ambiguity(self):
        """Identical bigrams from different attributes collapse — the
        weakness the paper attributes to HARRA's record-level vector."""
        same = record_bigram_set(("ABX", "AB"), SCHEME)
        assert SCHEME.index_set("AB") <= same
        # The record ('AB', 'AB') is indistinguishable from ('AB', '') at
        # the bigram-set level.
        assert record_bigram_set(("AB", "AB"), SCHEME) == record_bigram_set(("AB", ""), SCHEME)


class TestHarraLinker:
    @pytest.fixture(scope="class")
    def problem(self):
        return build_linkage_problem(NCVRGenerator(), 250, scheme_pl(), seed=21)

    def test_finds_most_matches(self, problem):
        linker = HarraLinker(threshold=0.35, k=5, n_tables=30, seed=1)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        quality = evaluate_linkage(
            result.matches, problem.true_matches, result.n_candidates, problem.comparison_space
        )
        assert quality.pairs_completeness >= 0.6
        assert quality.reduction_ratio >= 0.9

    def test_early_pruning_never_beats_exhaustive(self, problem):
        pruned = HarraLinker(threshold=0.35, n_tables=30, early_pruning=True, seed=2)
        full = HarraLinker(threshold=0.35, n_tables=30, early_pruning=False, seed=2)
        res_pruned = pruned.link(problem.dataset_a, problem.dataset_b)
        res_full = full.link(problem.dataset_a, problem.dataset_b)
        found_pruned = len(res_pruned.matches & problem.true_matches)
        found_full = len(res_full.matches & problem.true_matches)
        assert found_pruned <= found_full

    def test_more_tables_more_complete(self, problem):
        few = HarraLinker(threshold=0.35, n_tables=5, seed=3)
        many = HarraLinker(threshold=0.35, n_tables=40, seed=3)
        pc_few = evaluate_linkage(
            few.link(problem.dataset_a, problem.dataset_b).matches,
            problem.true_matches, 1, problem.comparison_space,
        ).pairs_completeness
        pc_many = evaluate_linkage(
            many.link(problem.dataset_a, problem.dataset_b).matches,
            problem.true_matches, 1, problem.comparison_space,
        ).pairs_completeness
        assert pc_many >= pc_few

    def test_matches_satisfy_threshold(self, problem):
        linker = HarraLinker(threshold=0.35, n_tables=20, seed=4)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        from repro.hamming.distance import jaccard_distance_sets

        rows_a = problem.dataset_a.value_rows()
        rows_b = problem.dataset_b.value_rows()
        for a, b in result.matches:
            dist = jaccard_distance_sets(
                record_bigram_set(rows_a[a], linker.scheme),
                record_bigram_set(rows_b[b], linker.scheme),
            )
            assert dist <= 0.35

    def test_timings_reported(self, problem):
        linker = HarraLinker(threshold=0.35, n_tables=10, seed=5)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        assert {"embed", "index", "match"} == set(result.timings)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            HarraLinker(threshold=1.5)
